//! Workspace wiring smoke test: one end-to-end path per front-end, so a
//! broken manifest, dependency edge or re-export fails fast and obviously
//! rather than deep inside a property test.

use schema_merge::prelude::*;
use schema_merge_core::Label;
use schema_merge_er::preserves_strata;
use schema_merge_relational::{to_sql, TypeMap};
use schema_merge_text::print_document;

#[test]
fn weak_merge_through_the_facade_prelude() {
    // The exact path the crate-level doctest advertises.
    let g1 = WeakSchema::builder()
        .arrow("Dog", "owner", "Person")
        .build()
        .unwrap();
    let g2 = WeakSchema::builder()
        .arrow("Dog", "age", "int")
        .build()
        .unwrap();
    let merged = Merger::new().schema(&g1).schema(&g2).execute().unwrap();
    assert_eq!(merged.proper.labels_of(&Class::named("Dog")).len(), 2);
    assert!(merged
        .weak
        .as_ref()
        .unwrap()
        .is_subschema_of(merged.proper.as_weak()));
}

#[test]
fn er_translate_and_merge() {
    let g1 = ErSchema::builder()
        .entity("Dog")
        .entity("Person")
        .attribute("Dog", "age", "int")
        .relationship("Owns", [("owner", "Person"), ("dog", "Dog")])
        .build()
        .unwrap();
    let g2 = ErSchema::builder()
        .entity("Dog")
        .attribute("Dog", "name", "text")
        .build()
        .unwrap();
    let outcome = merge_er([&g1, &g2]).unwrap();
    assert!(preserves_strata(&outcome));

    let attrs = outcome
        .er
        .attributes_of(&schema_merge_core::Name::new("Dog"));
    assert!(attrs.contains_key(&Label::new("age")));
    assert!(attrs.contains_key(&Label::new("name")));

    // Translate + read back round-trips the merged ER schema.
    let (core, strata) = schema_merge_er::to_core(&outcome.er);
    let back = schema_merge_er::from_core(&core, &strata).unwrap();
    assert_eq!(back, outcome.er);
}

#[test]
fn relational_merge_and_ddl_round_trip() {
    let r1 = RelSchema::builder()
        .column("Person", "ssn", "int")
        .column("Person", "name", "text")
        .key("Person", schema_merge_core::KeySet::new(["ssn"]))
        .build()
        .unwrap();
    let r2 = RelSchema::builder()
        .column("Person", "age", "int")
        .build()
        .unwrap();
    let outcome = merge_relational([&r1, &r2]).unwrap();

    // Translate + read back round-trips the merged relational schema.
    // Keys ride in the merge outcome's key assignment, not in the graph
    // (§5), so reattach them the same way `merge_relational` does.
    let (core, strata) = schema_merge_relational::to_core(&outcome.schema);
    let back = schema_merge_relational::from_core(&core, &strata).unwrap();
    let back = back.with_key_assignment(&outcome.keys);
    assert_eq!(back, outcome.schema);

    // And the DDL renderer sees all three columns.
    let sql = to_sql(&outcome.schema, &TypeMap::default());
    assert!(sql.contains("CREATE TABLE"), "{sql}");
    for column in ["ssn", "name", "age"] {
        assert!(sql.contains(&format!("\"{column}\"")), "{sql}");
    }
}

#[test]
fn dsl_parse_print_round_trip() {
    let source =
        "schema Dogs {\n    Guide-dog => Dog;\n    Dog --age--> int;\n    key Dog {age};\n}";
    let docs = parse_document(source).unwrap();
    let printed = print_document(&docs);
    let reparsed = parse_document(&printed).unwrap();
    assert_eq!(docs, reparsed, "print → parse is the identity");
}
