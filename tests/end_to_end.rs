//! End-to-end integration: DSL → merge → completion → keys → DOT, and
//! the full dogs-and-kennels pipeline across the ER and instance crates.

use schema_merge::prelude::*;
use schema_merge_core::{Class, KeyAssignment, Label};
use schema_merge_er::{figure_1_dogs, to_core};
use schema_merge_instance::Instance;
use schema_merge_text::{parse_document, print_schema, to_dot, DotOptions, NamedSchema};

fn c(s: &str) -> Class {
    Class::named(s)
}

fn l(s: &str) -> Label {
    Label::new(s)
}

#[test]
fn dsl_to_merged_dot_pipeline() {
    let docs = parse_document(
        "schema A { C --a--> B1; Guide-dog => Dog; }\n\
         schema B { C --a--> B2; Dog --age--> int; key Dog {age}; }",
    )
    .unwrap();
    assert_eq!(docs.len(), 2);

    let mut merger = Merger::new();
    for doc in &docs {
        merger = merger.with_participation_named(doc.name.clone(), &doc.schema);
        for class in doc.keys.keyed_classes() {
            merger = merger.with_keys(class.clone(), doc.keys.family(class));
        }
    }
    let report = merger.execute().unwrap();
    assert_eq!(report.implicit.num_implicit(), 1);
    let (proper, keys) = (report.proper, report.keys);

    // Raw declarations must be propagated down the isa order (§5):
    // Guide-dog inherits Dog's key in the satisfactory assignment.
    assert!(keys.validate(proper.as_weak()).is_ok());
    assert!(
        !keys.family(&c("Guide-dog")).is_none(),
        "subclasses inherit keys"
    );

    let merged = NamedSchema {
        name: "merged".into(),
        schema: schema_merge_core::AnnotatedSchema::all_required(proper.as_weak().clone()),
        keys,
    };
    // Canonical print round-trips, and DOT mentions the implicit class.
    let printed = print_schema(&merged);
    assert_eq!(schema_merge_text::parse_schema(&printed).unwrap(), merged);
    let dot = to_dot(&merged, &DotOptions::default());
    assert!(dot.contains("{B1,B2}"));
}

#[test]
fn er_to_instance_pipeline() {
    // Translate Fig. 1 to the graph model, complete it, generate a
    // conforming instance, and check conformance plus projection.
    let (schema, _strata) = to_core(&figure_1_dogs());
    let proper = schema_merge_core::complete(&schema).unwrap();
    let instance = schema_merge_instance::generator::conforming_instance(&proper, 3, 7);
    assert_eq!(instance.conforms(&proper), Ok(()));

    // Project onto the sub-schema containing only dogs.
    let dogs_only = WeakSchema::builder()
        .specialize("Police-dog", "Dog")
        .arrow("Dog", "age", "int")
        .build()
        .unwrap();
    assert!(dogs_only.is_subschema_of(proper.as_weak()));
    let projected = instance.project(&dogs_only);
    let dogs_proper = ProperSchema::try_new(dogs_only).unwrap();
    assert_eq!(projected.conforms(&dogs_proper), Ok(()));
}

#[test]
fn merged_schema_keys_constrain_instances() {
    // §5 end: after merging, a key declared by only one schema applies
    // to data from both.
    let g1 = WeakSchema::builder()
        .arrow("Person", "SS#", "int")
        .build()
        .unwrap();
    let g2 = WeakSchema::builder()
        .arrow("Person", "name", "text")
        .arrow("Person", "SS#", "int")
        .build()
        .unwrap();
    let outcome = Merger::new().schema(&g1).schema(&g2).execute().unwrap();

    let mut keys = KeyAssignment::new();
    keys.add_key(c("Person"), schema_merge_core::KeySet::new(["SS#"]));
    assert!(keys.validate(outcome.proper.as_weak()).is_ok());

    // Two people with the same SS# violate the merged constraint.
    let mut b = Instance::builder();
    let ssn = b.object(["int"]);
    let alice = b.object(["Person"]);
    let alias = b.object(["Person"]);
    b.attr(alice, "SS#", ssn);
    b.attr(alias, "SS#", ssn);
    assert!(b.build().satisfies_keys(&keys).is_err());

    // Entity resolution instead merges them.
    let (resolved, report) = schema_merge_instance::union_instances(&[&b.build()], &keys);
    assert_eq!(resolved.extent(&c("Person")).len(), 1);
    assert_eq!(report.key_identifications, 1);
    assert_eq!(resolved.satisfies_keys(&keys), Ok(()));
}

#[test]
fn session_and_batch_agree_through_the_facade() {
    let g1 = WeakSchema::builder().arrow("X", "f", "A").build().unwrap();
    let g2 = WeakSchema::builder().arrow("X", "f", "B").build().unwrap();
    let g3 = WeakSchema::builder()
        .specialize("A", "Top")
        .build()
        .unwrap();

    let mut session = MergeSession::new();
    for g in [&g1, &g2, &g3] {
        session.add_schema(g).unwrap();
    }
    let stepwise = session.merged().unwrap().proper;
    let batch = Merger::new()
        .schemas([&g1, &g2, &g3])
        .execute()
        .unwrap()
        .proper;
    assert_eq!(stepwise, batch);
    assert!(batch.contains_class(&Class::implicit([c("A"), c("B")])));
    assert!(batch.has_arrow(&c("X"), &l("f"), &c("Top")), "W2 closure");
}

#[test]
fn upper_and_lower_merge_bracket_the_inputs() {
    // For annotated schemas: lower ⊑ padded inputs ⊑ upper (on the
    // shared classes), making the two merges the bounds the paper
    // describes.
    let a = schema_merge_core::AnnotatedSchema::builder()
        .arrow("Dog", "name", "string")
        .arrow("Dog", "age", "int")
        .build()
        .unwrap();
    let b = schema_merge_core::AnnotatedSchema::builder()
        .arrow("Dog", "name", "string")
        .arrow("Dog", "breed", "Breed")
        .build()
        .unwrap();
    let lower = lower_merge([&a, &b]);
    let upper = Merger::new()
        .with_participation(&a)
        .with_participation(&b)
        .execute()
        .unwrap()
        .annotated
        .unwrap();

    let classes: Vec<Class> = upper.schema().classes().cloned().collect();
    let a_padded = a.pad_with_classes(classes.clone());
    let b_padded = b.pad_with_classes(classes);
    assert!(lower.is_sub_annotated(&a_padded));
    assert!(lower.is_sub_annotated(&b_padded));
    assert!(a.schema().is_subschema_of(upper.schema()));
    assert!(b.schema().is_subschema_of(upper.schema()));
}
