//! Cross-model integration: ER and relational schemas merged through the
//! shared graph calculus, at workload scale.

use schema_merge_core::{Class, Label, Name};
use schema_merge_er::{merge_er, preserves_strata, ErSchema};
use schema_merge_relational::{merge_relational, RelSchema};
use schema_merge_workload::{random_er_schema, ErParams};

#[test]
fn er_and_relational_views_of_the_same_data() {
    // An ER view of people and a relational view of the same domain can
    // be merged within their own models; both merges agree on the graph
    // structure of the shared `Person` class.
    let er = ErSchema::builder()
        .entity("Person")
        .attribute("Person", "ssn", "int")
        .attribute("Person", "name", "text")
        .build()
        .unwrap();
    let er2 = ErSchema::builder()
        .entity("Person")
        .attribute("Person", "age", "int")
        .build()
        .unwrap();
    let er_merged = merge_er([&er, &er2]).unwrap();

    let rel = RelSchema::builder()
        .column("Person", "ssn", "int")
        .column("Person", "name", "text")
        .build()
        .unwrap();
    let rel2 = RelSchema::builder()
        .column("Person", "age", "int")
        .build()
        .unwrap();
    let rel_merged = merge_relational([&rel, &rel2]).unwrap();

    let person = Class::named("Person");
    let er_labels = er_merged.core.proper.labels_of(&person);
    let rel_labels = rel_merged.core.proper.labels_of(&person);
    assert_eq!(
        er_labels, rel_labels,
        "same arrows from Person in both models"
    );
    for label in ["ssn", "name", "age"] {
        assert!(er_labels.contains(&Label::new(label)));
    }
}

#[test]
fn bulk_er_merges_preserve_strata() {
    // E6 at integration level: five random ER schemas over one
    // vocabulary merge in any order and stay in-model.
    let schemas: Vec<ErSchema> = (0..5)
        .map(|i| {
            random_er_schema(&ErParams {
                seed: 100 + i,
                ..ErParams::default()
            })
        })
        .collect();
    let refs: Vec<&ErSchema> = schemas.iter().collect();

    let forward = merge_er(refs.iter().copied()).unwrap();
    assert!(preserves_strata(&forward));

    let backward = merge_er(refs.iter().rev().copied()).unwrap();
    assert_eq!(
        forward.er, backward.er,
        "order independence in the ER model"
    );

    // The merged schema contains every input as a sub-schema (via the
    // graph translation).
    for schema in &schemas {
        let (core, _) = schema_merge_er::to_core(schema);
        assert!(core.is_subschema_of(forward.core.proper.as_weak()));
    }
}

#[test]
fn incremental_er_integration_equals_batch() {
    // Integrate schemas one at a time (completing in between!) and
    // compare against the one-shot merge: the strip/flatten machinery
    // must make them agree.
    let schemas: Vec<ErSchema> = (0..4)
        .map(|i| {
            random_er_schema(&ErParams {
                entities: 8,
                relationships: 3,
                seed: 500 + i,
                ..ErParams::default()
            })
        })
        .collect();

    // Batch.
    let batch = merge_er(schemas.iter()).unwrap();

    // Incremental: each step's *ER result* feeds the next merge.
    let mut acc = schemas[0].clone();
    for next in &schemas[1..] {
        acc = merge_er([&acc, next]).unwrap().er;
    }
    // Cardinalities are carried by keys, not by the ER read-back, so
    // compare the graph translations.
    let (batch_core, _) = schema_merge_er::to_core(&batch.er);
    let (acc_core, _) = schema_merge_er::to_core(&acc);
    assert_eq!(
        acc_core.strip_implicit(),
        batch_core.strip_implicit(),
        "incremental and batch ER integration agree on named structure"
    );
}

#[test]
fn relational_key_merging_at_scale() {
    // Twenty departmental tables with overlapping keys merge into one
    // valid assignment.
    let mut schemas = Vec::new();
    for i in 0..20 {
        let table = format!("T{:02}", i % 5);
        let schema = RelSchema::builder()
            .column(table.as_str(), format!("col{i}"), "int")
            .column(table.as_str(), "id", "int")
            .key(table.as_str(), schema_merge_core::KeySet::new(["id"]))
            .build()
            .unwrap();
        schemas.push(schema);
    }
    let outcome = merge_relational(schemas.iter()).unwrap();
    assert_eq!(outcome.schema.counts().0, 5, "five distinct tables");
    for (name, relation) in outcome.schema.relations() {
        assert!(
            relation
                .keys
                .is_superkey(&schema_merge_core::KeySet::new(["id"])),
            "{name} keeps the id key"
        );
        assert!(relation.arity() >= 2);
    }
    assert!(outcome.keys.validate(outcome.core.proper.as_weak()).is_ok());
}

#[test]
fn mixed_stratum_names_are_rejected_across_models() {
    // `Dog` is an entity in one ER schema; using it as a domain in
    // another must fail loudly rather than merge nonsense.
    let g1 = ErSchema::builder().entity("Dog").build().unwrap();
    let g2 = ErSchema::builder()
        .entity("Owner")
        .attribute("Owner", "pet", "Dog")
        .build()
        .unwrap();
    let err = merge_er([&g1, &g2]).unwrap_err();
    assert!(err.to_string().contains("Dog"));
    let _ = Name::new("Dog");
}
