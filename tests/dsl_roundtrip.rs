//! Property-based round-trips through the DSL: any schema the library can
//! build, the printer can serialize and the parser can read back
//! identically — the serialization story of the prototype interface.

use proptest::collection::vec;
use proptest::prelude::*;

use schema_merge::prelude::*;
use schema_merge_core::{AnnotatedSchema, Class, KeyAssignment, KeySet};
use schema_merge_text::{
    parse_schema, print_schema, render_ascii, to_dot, DotOptions, NamedSchema,
};

const NAMES: [&str; 7] = [
    "Dog",
    "Guide-dog",
    "Kennel",
    "Person",
    "int",
    "SS#-reg",
    "place",
];
const LABELS: [&str; 5] = ["age", "owner", "home", "id-num", "kind"];

#[derive(Debug, Clone)]
enum Item {
    Spec(usize, usize),
    Arrow(usize, usize, usize, bool),
    Key(usize, Vec<usize>),
}

fn items() -> impl Strategy<Value = Vec<Item>> {
    let item = prop_oneof![
        (0usize..NAMES.len(), 0usize..NAMES.len())
            .prop_map(|(a, b)| Item::Spec(a.min(b), a.max(b))),
        (
            0usize..NAMES.len(),
            0usize..LABELS.len(),
            0usize..NAMES.len(),
            any::<bool>()
        )
            .prop_map(|(s, l, t, opt)| Item::Arrow(s, l, t, opt)),
        (0usize..NAMES.len(), vec(0usize..LABELS.len(), 1..3)).prop_map(|(c, ls)| Item::Key(c, ls)),
    ];
    vec(item, 1..12)
}

fn build_doc(items: &[Item]) -> Option<NamedSchema> {
    let mut builder = AnnotatedSchema::builder();
    let mut keys = KeyAssignment::new();
    for item in items {
        match item {
            Item::Spec(a, b) => {
                if a != b {
                    builder = builder.specialize(NAMES[*a], NAMES[*b]);
                }
            }
            Item::Arrow(s, l, t, optional) => {
                builder = if *optional {
                    builder.optional_arrow(NAMES[*s], LABELS[*l], NAMES[*t])
                } else {
                    builder.arrow(NAMES[*s], LABELS[*l], NAMES[*t])
                };
            }
            Item::Key(class, labels) => {
                keys.add_key(
                    Class::named(NAMES[*class]),
                    KeySet::new(labels.iter().map(|i| LABELS[*i])),
                );
            }
        }
    }
    let schema = builder.build().ok()?;
    // Keys must reference arrows that exist, or the document would not be
    // loadable by tools that validate; restrict to valid ones.
    let mut valid_keys = KeyAssignment::new();
    for class in keys.keyed_classes() {
        let available = schema.schema().labels_of(class);
        for key in keys.family(class).minimal_keys() {
            if key.labels().all(|l| available.contains(l)) {
                valid_keys.add_key(class.clone(), key.clone());
            }
        }
    }
    Some(NamedSchema {
        name: "G".into(),
        schema,
        keys: valid_keys,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_round_trip(items in items()) {
        let Some(doc) = build_doc(&items) else { return Ok(()); };
        let printed = print_schema(&doc);
        let reparsed = parse_schema(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        prop_assert_eq!(reparsed, doc);
    }

    #[test]
    fn renderers_never_panic(items in items()) {
        let Some(doc) = build_doc(&items) else { return Ok(()); };
        let dot = to_dot(&doc, &DotOptions::default());
        prop_assert!(dot.starts_with("digraph"));
        prop_assert!(dot.ends_with("}\n"), "dot must close");
        let ascii = render_ascii(&doc);
        prop_assert!(ascii.contains("== schema G =="));
    }

    #[test]
    fn merged_schemas_round_trip_with_implicit_classes(
        left in items(),
        right in items(),
    ) {
        let (Some(a), Some(b)) = (build_doc(&left), build_doc(&right)) else {
            return Ok(());
        };
        let Ok(joined) = weak_join(a.schema.schema(), b.schema.schema()) else {
            return Ok(()); // incompatible: nothing to print
        };
        let proper = schema_merge_core::complete(&joined).expect("completion");
        let merged = NamedSchema {
            name: "merged".into(),
            schema: AnnotatedSchema::all_required(proper.as_weak().clone()),
            keys: KeyAssignment::new(),
        };
        let printed = print_schema(&merged);
        let reparsed = parse_schema(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        prop_assert_eq!(reparsed, merged);
    }
}
