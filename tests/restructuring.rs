//! Cross-crate integration tests for the §3/§7 pre-merge workflow:
//! renaming, structural normalization, and merging — spanning the core
//! graph model, the ER front-end and the text DSL.

use schema_merge_core::restructure::{flatten_class, reify_arrow, Restructuring};
use schema_merge_core::{
    homonym_candidates, synonym_candidates, weak_join, Class, Label, Merger, Renaming,
};
use schema_merge_er::{
    detect_conflicts, merge_er, normalize_pair, to_core, ErSchema, NormalPolicy,
};
use schema_merge_text::{parse_schema, print_schema, NamedSchema};

fn c(s: &str) -> Class {
    Class::named(s)
}

fn l(s: &str) -> Label {
    Label::new(s)
}

/// The full §3 workflow: suggest a synonym, rename, merge — and the
/// result is the same as if the databases had agreed on names upfront.
#[test]
fn synonym_workflow_matches_agreed_names() {
    let municipal =
        parse_schema("schema municipal { Dog --license--> int; Dog --owner--> Person; }")
            .expect("parses");
    let veterinary =
        parse_schema("schema veterinary { Hound --owner--> Person; Hound --age--> int; }")
            .expect("parses");

    let candidates = synonym_candidates(municipal.schema.schema(), veterinary.schema.schema(), 0.3);
    assert_eq!(candidates[0].left, "Dog".into());
    assert_eq!(candidates[0].right, "Hound".into());

    let (renamed, _) = candidates[0]
        .unifying_renaming()
        .apply(veterinary.schema.schema())
        .expect("applies");
    let merged = Merger::new()
        .schema(municipal.schema.schema())
        .schema(&renamed)
        .execute()
        .expect("merges");

    // The counterfactual where both schemas said Dog all along.
    let agreed =
        parse_schema("schema v2 { Dog --owner--> Person; Dog --age--> int; }").expect("parses");
    let expected = Merger::new()
        .schema(municipal.schema.schema())
        .schema(agreed.schema.schema())
        .execute()
        .expect("merges");
    assert_eq!(merged.proper, expected.proper);
}

/// Homonym separation: without it the merge silently conflates two
/// meanings; with it both survive.
#[test]
fn homonym_separation_preserves_both_meanings() {
    let lab = parse_schema("schema lab { Chip --implanted-in--> Dog; }").expect("parses");
    let cafe = parse_schema("schema cafe { Chip --fried-at--> Temp; }").expect("parses");

    // Conflated: one Chip class with both arrows.
    let conflated = weak_join(lab.schema.schema(), cafe.schema.schema()).expect("compatible");
    assert_eq!(conflated.labels_of(&c("Chip")).len(), 2);

    let flags = homonym_candidates(lab.schema.schema(), cafe.schema.schema(), 0.0);
    assert_eq!(flags.len(), 1);
    let (separated, _) = flags[0]
        .separating_renaming("-food")
        .apply(cafe.schema.schema())
        .expect("applies");
    let kept_apart = weak_join(lab.schema.schema(), &separated).expect("compatible");
    assert_eq!(kept_apart.labels_of(&c("Chip")).len(), 1);
    assert_eq!(kept_apart.labels_of(&c("Chip-food")).len(), 1);
}

/// §7 normalization followed by an ER merge whose graph translation
/// agrees with normalizing in the graph model directly.
#[test]
fn er_normalization_agrees_with_graph_restructuring() {
    let registry = ErSchema::builder()
        .entity("Dog")
        .attribute("Dog", "kennel", "kennel-id")
        .build()
        .expect("valid");
    let club = ErSchema::builder()
        .entity("Dog")
        .entity("kennel")
        .attribute("kennel", "addr", "place")
        .build()
        .expect("valid");

    // ER route: normalize, merge in the ER model.
    let outcome = normalize_pair(&registry, &club, NormalPolicy::PreferEntity);
    assert!(outcome.is_clean());
    let er_merged = merge_er([&outcome.left, &outcome.right]).expect("merges");

    // Graph route: translate the normalized pair and merge there.
    let (left_core, _) = to_core(&outcome.left);
    let (right_core, _) = to_core(&outcome.right);
    let core_merged = Merger::new()
        .schemas([&left_core, &right_core])
        .execute()
        .expect("merges");

    // The ER merge's underlying graph equals the direct graph merge.
    assert_eq!(er_merged.core.proper, core_merged.proper);
}

/// A recorded restructuring script replays identically on a re-parsed
/// schema — the audit-trail property an interactive tool needs.
#[test]
fn scripts_replay_across_serialization() {
    let source = "schema pets { Person --owns--> Hound; Hound --kind--> breed; }";
    let original = parse_schema(source).expect("parses");

    let script = Restructuring::new()
        .rename(Renaming::new().class("Hound", "Dog"))
        .reify("Person", "owns", "Owns", "owner", "pet");
    let transformed = script.apply(original.schema.schema()).expect("applies");

    // Round-trip the ORIGINAL through the DSL and replay.
    let printed = print_schema(&NamedSchema {
        name: "pets".into(),
        schema: original.schema.clone(),
        keys: original.keys.clone(),
    });
    let reparsed = parse_schema(&printed).expect("round-trips");
    let replayed = script.apply(reparsed.schema.schema()).expect("replays");
    assert_eq!(transformed, replayed);

    assert!(transformed.has_arrow(&c("Owns"), &l("pet"), &c("Dog")));
    assert!(transformed
        .arrow_targets(&c("Person"), &l("owns"))
        .is_empty());
}

/// Normalizing then merging is order-independent: which schema gets
/// restructured does not change the merge (the restructured parts are
/// disjoint and the merge is a least upper bound).
#[test]
fn normalization_is_order_independent() {
    let a = ErSchema::builder()
        .entity("Dog")
        .attribute("Dog", "kennel", "kennel-id")
        .build()
        .expect("valid");
    let b = ErSchema::builder()
        .entity("Dog")
        .entity("kennel")
        .attribute("kennel", "addr", "place")
        .build()
        .expect("valid");

    let ab = normalize_pair(&a, &b, NormalPolicy::PreferEntity);
    let ba = normalize_pair(&b, &a, NormalPolicy::PreferEntity);
    assert!(ab.is_clean() && ba.is_clean());

    let merged_ab = merge_er([&ab.left, &ab.right]).expect("merges");
    let merged_ba = merge_er([&ba.left, &ba.right]).expect("merges");
    assert_eq!(merged_ab.er, merged_ba.er);
}

/// Reify in the graph model survives a merge with an already-reified
/// schema and the merged node can be flattened back when it stays bare.
#[test]
fn reify_merge_flatten_pipeline() {
    let direct = schema_merge_core::WeakSchema::builder()
        .arrow("Person", "owns", "Dog")
        .build()
        .expect("valid");
    let reified_input = schema_merge_core::WeakSchema::builder()
        .arrow("Owns", "owner", "Person")
        .arrow("Owns", "pet", "Dog")
        .build()
        .expect("valid");

    let normalized =
        reify_arrow(&direct, &c("Person"), &l("owns"), "Owns", "owner", "pet").expect("reifies");
    let merged = weak_join(&normalized, &reified_input).expect("compatible");
    assert_eq!(merged, reified_input, "no duplicated presentation");

    let flattened =
        flatten_class(&merged, &c("Owns"), &l("owner"), &l("pet"), "owns").expect("flattens");
    assert_eq!(flattened, direct);
}

/// Conflict detection and normalization leave genuinely clean ER pairs
/// untouched end-to-end (idempotence on the clean fragment).
#[test]
fn normalization_is_idempotent_on_clean_pairs() {
    let g1 = schema_merge_er::figure_1_dogs();
    let g2 = schema_merge_er::figure_9_advisor();
    assert!(detect_conflicts(&g1, &g2).is_empty());
    let pass1 = normalize_pair(&g1, &g2, NormalPolicy::PreferEntity);
    let pass2 = normalize_pair(&pass1.left, &pass1.right, NormalPolicy::PreferEntity);
    assert_eq!(pass1.left, pass2.left);
    assert_eq!(pass1.right, pass2.right);
    assert!(pass2.applied.is_empty());
}
