//! The instance-level semantics of merging, at workload scale: the
//! upper-merge projection theorem and the lower-merge union theorem,
//! exercised with generated schemas and generated conforming instances.

use schema_merge_core::lower::{lower_complete, lower_merge, AnnotatedSchema};
use schema_merge_core::{complete, KeyAssignment, Merger, ProperSchema};
use schema_merge_instance::generator::conforming_instance;
use schema_merge_instance::union_instances;
use schema_merge_workload::{random_schema, schema_family, SchemaParams};

fn params(seed: u64) -> SchemaParams {
    SchemaParams {
        vocabulary: 24,
        classes: 12,
        labels: 10,
        arrows: 14,
        specializations: 5,
        seed,
    }
}

#[test]
fn projection_theorem_at_scale() {
    // "Any instance of the merged schema can be considered to be an
    // instance of any of the schemas being merged" (§6 opening): generate
    // an instance of the merged schema; its projection conforms to every
    // input.
    for seed in [3u64, 17, 99] {
        let family = schema_family(&params(seed), 3);
        let outcome = Merger::new()
            .schemas(family.iter())
            .execute()
            .expect("compatible family");
        let instance = conforming_instance(&outcome.proper, 2, seed)
            .populate_implicit_extents(outcome.proper.as_weak());
        assert_eq!(instance.conforms(&outcome.proper), Ok(()), "seed {seed}");

        for (i, input) in family.iter().enumerate() {
            let input_proper = complete(input).expect("inputs complete");
            let projected = instance.project(input_proper.as_weak());
            // The projection onto the *completed* input needs the input's
            // implicit extents populated too.
            let filled = projected.populate_implicit_extents(input_proper.as_weak());
            assert_eq!(
                filled.conforms(&input_proper),
                Ok(()),
                "seed {seed}, input {i}"
            );
        }
    }
}

#[test]
fn union_theorem_at_scale() {
    // Union of per-site instances conforms to the completed lower merge.
    for seed in [5u64, 23] {
        let family = schema_family(&params(seed), 2);
        let annotated: Vec<AnnotatedSchema> = family
            .iter()
            .map(|schema| AnnotatedSchema::all_required(schema.clone()))
            .collect();
        let merged = lower_merge(annotated.iter());
        let (annotated_merged, proper, _) = lower_complete(&merged).expect("lower completion");

        // Per-site instances conform to their own (completed) schemas.
        let site_instances: Vec<_> = family
            .iter()
            .enumerate()
            .map(|(i, schema)| {
                let site_proper = complete(schema).expect("site completes");
                let instance = conforming_instance(&site_proper, 2, seed + i as u64)
                    .populate_implicit_extents(site_proper.as_weak());
                assert_eq!(instance.conforms(&site_proper), Ok(()));
                instance
            })
            .collect();

        let refs: Vec<_> = site_instances.iter().collect();
        let (combined, _) = union_instances(&refs, &KeyAssignment::new());
        let filled = combined.populate_implicit_extents(proper.as_weak());
        assert_eq!(
            filled.conforms_annotated(&annotated_merged, &proper),
            Ok(()),
            "seed {seed}"
        );
    }
}

#[test]
fn generated_instances_scale_with_population() {
    let schema = random_schema(&params(7));
    let proper = complete(&schema).unwrap();
    let small = conforming_instance(&proper, 1, 7);
    let large = conforming_instance(&proper, 8, 7);
    assert!(large.objects().len() > small.objects().len());
    assert_eq!(small.conforms(&proper), Ok(()));
    assert_eq!(large.conforms(&proper), Ok(()));
}

#[test]
fn conformance_is_monotone_down_the_information_order() {
    // An instance of a bigger schema, projected, conforms to any smaller
    // proper schema — the semantic content of ⊑.
    let small = random_schema(&params(11));
    let big = Merger::new()
        .schema(&small)
        .schema(&random_schema(&params(12)))
        .execute()
        .expect("compatible")
        .proper;
    let instance = conforming_instance(&big, 2, 11).populate_implicit_extents(big.as_weak());
    assert_eq!(instance.conforms(&big), Ok(()));

    let small_proper = ProperSchema::try_new(
        // The small schema may itself be improper; use its completion.
        complete(&small).unwrap().into_weak(),
    )
    .unwrap();
    let projected = instance
        .project(small_proper.as_weak())
        .populate_implicit_extents(small_proper.as_weak());
    assert_eq!(projected.conforms(&small_proper), Ok(()));
}

#[test]
fn entity_resolution_is_idempotent_and_order_insensitive() {
    use schema_merge_core::{Class, KeySet};
    use schema_merge_instance::Instance;

    let mut keys = KeyAssignment::new();
    keys.add_key(Class::named("Person"), KeySet::new(["ssn"]));

    let build_site = |n: u64| {
        let mut b = Instance::builder();
        let shared = b.object(["int"]);
        for i in 0..n {
            let p = b.object(["Person"]);
            if i % 2 == 0 {
                b.attr(p, "ssn", shared);
            }
        }
        b.build()
    };
    let s1 = build_site(4);
    let s2 = build_site(3);

    let (once, _) = union_instances(&[&s1, &s2], &keys);
    let (twice, report) = union_instances(&[&once], &keys);
    assert_eq!(
        once.extent(&Class::named("Person")).len(),
        twice.extent(&Class::named("Person")).len(),
        "resolution is idempotent"
    );
    assert_eq!(report.key_identifications, 0);

    let (ab, _) = union_instances(&[&s1, &s2], &keys);
    let (ba, _) = union_instances(&[&s2, &s1], &keys);
    // Object ids differ by renumbering, but the shape agrees.
    assert_eq!(
        ab.extent(&Class::named("Person")).len(),
        ba.extent(&Class::named("Person")).len()
    );
    assert_eq!(ab.num_attrs(), ba.num_attrs());
}
