//! Cross-crate integration tests for §6: federated views built from the
//! lower merge, instance coalescing, and queries — spanning core,
//! instance and the ER front-end.

use schema_merge_core::{
    lower_complete, lower_merge, AnnotatedSchema, Class, KeyAssignment, KeySet, Label,
    Participation, WeakSchema,
};
use schema_merge_er::{to_core, ErSchema};
use schema_merge_instance::{find_by_key, Federation, Instance, PathQuery};

fn c(s: &str) -> Class {
    Class::named(s)
}

fn l(s: &str) -> Label {
    Label::new(s)
}

/// §6's running example end-to-end: name/age vs name/breed dogs.
#[test]
fn section_6_dog_example_end_to_end() {
    let g1 = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "name", "string")
            .arrow("Dog", "age", "int")
            .build()
            .expect("valid"),
    );
    let g2 = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "name", "string")
            .arrow("Dog", "breed", "breed")
            .build()
            .expect("valid"),
    );

    let merged = lower_merge([&g1, &g2]);
    // "instances of the class Dog may have age-arrows and may have
    // breed-arrows, but are not necessarily required to" (§6).
    assert_eq!(
        merged.participation(&c("Dog"), &l("name"), &c("string")),
        Participation::One
    );
    assert_eq!(
        merged.participation(&c("Dog"), &l("age"), &c("int")),
        Participation::ZeroOrOne
    );
    assert_eq!(
        merged.participation(&c("Dog"), &l("breed"), &c("breed")),
        Participation::ZeroOrOne
    );
    let (_, proper, _) = lower_complete(&merged).expect("completes");
    assert!(proper.as_weak().contains_class(&c("Dog")));
}

/// The federation's schema is a LOWER bound of every member schema, and
/// classes missing from one member still appear (the §6 padding rule).
#[test]
fn missing_classes_are_padded_in() {
    let with_guide_dogs = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .specialize("Guide-dog", "Dog")
            .arrow("Dog", "name", "string")
            .build()
            .expect("valid"),
    );
    let without = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "name", "string")
            .build()
            .expect("valid"),
    );
    let merged = lower_merge([&with_guide_dogs, &without]);
    assert!(
        merged.schema().contains_class(&c("Guide-dog")),
        "Guide-dog survives even though one member lacks it"
    );
    // But the isa edge is NOT in the lower bound (only one member has it).
    assert!(!merged.schema().specializes(&c("Guide-dog"), &c("Dog")));
}

/// Key-based correspondence across members (§5 end): records with the
/// same key value coalesce; the coalesced object carries the union of
/// attribute values; queries see one object.
#[test]
fn cross_member_resolution_via_shared_registry() {
    let intake = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "chip", "chip-id")
            .arrow("Dog", "age", "int")
            .build()
            .expect("valid"),
    );
    let medical = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "chip", "chip-id")
            .arrow("Dog", "vet", "Person")
            .build()
            .expect("valid"),
    );

    // Intake and medical share an object space (a common chip registry),
    // so the same chip oid appears in both records.
    let mut b = Instance::builder();
    let chip = b.object([c("chip-id")]);
    let age = b.object([c("int")]);
    let vet = b.object([c("Person")]);
    let rex_intake = b.object([c("Dog")]);
    b.attr(rex_intake, "chip", chip);
    b.attr(rex_intake, "age", age);
    let rex_medical = b.object([c("Dog")]);
    b.attr(rex_medical, "chip", chip);
    b.attr(rex_medical, "vet", vet);
    let registry = b.build();

    let mut keys = KeyAssignment::new();
    keys.add_key(c("Dog"), KeySet::new([l("chip")]));

    let federation = Federation::new()
        .with_keys(keys.clone())
        .member("registry", intake, registry)
        .member("medical", medical, Instance::default());
    let view = federation.view().expect("builds");
    view.check().expect("conforms");

    let dogs = view.query(&PathQuery::extent("Dog"));
    assert_eq!(dogs.len(), 1, "intake and medical records are one dog");
    let rex = *dogs.iter().next().expect("one dog");
    assert!(view.instance.attr(rex, &l("age")).is_some());
    assert!(view.instance.attr(rex, &l("vet")).is_some());

    // Key lookup dereferences the chip to the coalesced object.
    let chip_oid = view
        .instance
        .attr(rex, &l("chip"))
        .expect("chip survives the union");
    let lookup = find_by_key(&view.instance, &c("Dog"), &[(l("chip"), chip_oid)], &keys);
    assert_eq!(lookup.unique(), Some(rex));
}

/// An ER federation: member schemas written in the ER model, translated,
/// lower-merged, and queried. Exercises the translation + federation
/// pipeline together.
#[test]
fn er_members_federate_through_translation() {
    let city = ErSchema::builder()
        .entity("Dog")
        .attribute("Dog", "license", "int")
        .build()
        .expect("valid");
    let vet = ErSchema::builder()
        .entity("Dog")
        .attribute("Dog", "weight", "kg")
        .build()
        .expect("valid");

    let (city_core, _) = to_core(&city);
    let (vet_core, _) = to_core(&vet);

    let mut b = Instance::builder();
    let license = b.object([c("int")]);
    let rex = b.object([c("Dog")]);
    b.attr(rex, "license", license);
    let city_data = b.build();

    let mut b = Instance::builder();
    let weight = b.object([c("kg")]);
    let fido = b.object([c("Dog")]);
    b.attr(fido, "weight", weight);
    let vet_data = b.build();

    let federation = Federation::new()
        .member("city", AnnotatedSchema::all_required(city_core), city_data)
        .member("vet", AnnotatedSchema::all_required(vet_core), vet_data);
    let view = federation.view().expect("builds");
    view.check().expect("conforms");
    for member in federation.members() {
        view.check_member(member).expect("member conforms");
    }
    assert_eq!(view.query(&PathQuery::extent("Dog")).len(), 2);

    // Both attributes are optional in the federated view.
    assert_eq!(view.schema.num_optional(), 2);
}

/// Disagreeing arrow targets produce a union class whose extent covers
/// both members' values, and path queries can restrict to it.
#[test]
fn union_class_extents_are_queryable() {
    let kennel_club = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "home", "Kennel")
            .build()
            .expect("valid"),
    );
    let house_dogs = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "home", "House")
            .build()
            .expect("valid"),
    );

    let mut b = Instance::builder();
    let hut = b.object([c("Kennel")]);
    let rex = b.object([c("Dog")]);
    b.attr(rex, "home", hut);
    let i1 = b.build();

    let mut b = Instance::builder();
    let villa = b.object([c("House")]);
    let fifi = b.object([c("Dog")]);
    b.attr(fifi, "home", villa);
    let i2 = b.build();

    let view = Federation::new()
        .member("kennel-club", kennel_club, i1)
        .member("house-dogs", house_dogs, i2)
        .view()
        .expect("builds");
    view.check().expect("conforms");

    let union_class = Class::implicit_union([c("Kennel"), c("House")]);
    assert!(view.proper.as_weak().contains_class(&union_class));
    let homes = view.query(
        &PathQuery::extent("Dog")
            .follow("home")
            .restrict(union_class.clone()),
    );
    assert_eq!(homes.len(), 2);
    // The union extent equals the union of the member extents.
    assert_eq!(
        view.instance.extent(&union_class).len(),
        view.instance.extent(&c("Kennel")).len() + view.instance.extent(&c("House")).len()
    );
}

/// The federated view of a single member is the member itself (identity
/// law for federation).
#[test]
fn single_member_federation_is_identity() {
    let schema = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "name", "string")
            .specialize("Guide-dog", "Dog")
            .build()
            .expect("valid"),
    );
    let mut b = Instance::builder();
    let name = b.object([c("string")]);
    let rex = b.object([c("Dog"), c("Guide-dog")]);
    b.attr(rex, "name", name);
    let data = b.build();

    let view = Federation::new()
        .member("only", schema.clone(), data.clone())
        .view()
        .expect("builds");
    assert_eq!(view.schema.schema(), schema.schema());
    assert_eq!(
        view.query(&PathQuery::extent("Dog")),
        data.extent(&c("Dog"))
    );
    view.check().expect("conforms");
}
