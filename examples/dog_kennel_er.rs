//! The paper's running example: the dogs-and-kennels ER schema (Figs.
//! 1–2), merged with a second agency's view and with interactive user
//! assertions (§3).
//!
//! Run with `cargo run --example dog_kennel_er`.

use schema_merge_core::Name;
use schema_merge_er::{figure_1_dogs, merge_er, preserves_strata, ErSchema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1: the kennel agency's schema.
    let kennel_agency = figure_1_dogs();
    println!("kennel agency (Fig. 1):\n{kennel_agency}\n");

    // A dog-training agency's schema: overlapping but different.
    let training_agency = ErSchema::builder()
        .entity("Dog")
        .entity("Trainer")
        .attribute("Dog", "license", "int")
        .attribute("Trainer", "name", "string")
        .relationship("TrainedBy", [("dog", "Dog"), ("by", "Trainer")])
        .entity_isa("Guide-dog", "Dog")
        .entity("Guide-dog")
        .attribute("Guide-dog", "graduation", "date")
        .build()?;
    println!("training agency:\n{training_agency}\n");

    // A user assertion as an elementary schema (§3): police dogs are
    // also trained dogs. Assertions merge with the same operation as
    // full schemas, so the order never matters.
    let assertion = ErSchema::builder()
        .entity("Police-dog")
        .entity("Trained")
        .entity("Guide-dog")
        .entity_isa("Police-dog", "Trained")
        .entity_isa("Guide-dog", "Trained")
        .build()?;

    let outcome = merge_er([&kennel_agency, &training_agency, &assertion])?;
    println!("merged (translated back to ER):\n{}\n", outcome.er);

    // The §7 theorem, checked: the merge never leaves the ER model.
    assert!(preserves_strata(&outcome));
    println!("strata preserved: every merged class is still a domain, entity or relationship");

    // Dog's attributes are the union of both agencies' views.
    let dog_attrs = outcome.er.attributes_of(&Name::new("Dog"));
    println!("\nDog attributes after the merge:");
    for (attr, domain) in &dog_attrs {
        println!("  {attr}: {domain}");
    }
    assert!(dog_attrs.len() >= 3);

    // And the isa lattice combines Fig. 1's with the assertion's.
    for (sub, sup) in outcome.er.entity_isa() {
        println!("  {sub} isa {sup}");
    }
    Ok(())
}
