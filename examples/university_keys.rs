//! Keys and cardinality constraints (§5, Figs. 9–10): the
//! Advisor/Committee university schema and the multi-key Transaction.
//!
//! Run with `cargo run --example university_keys`.

use schema_merge_core::{Class, KeyAssignment, KeySet, Name, WeakSchema};
use schema_merge_er::{figure_9_advisor, keys_to_cardinalities, merge_er, Cardinality, ErSchema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 9: Advisor isa Committee. The advisor relationship is
    // one-to-many (a student has at most one advisor), expressed by the
    // `faculty` role's cardinality 1, i.e. the key {victim}.
    let university = figure_9_advisor();
    println!("university schema:\n{university}\n");

    let outcome = merge_er([&university])?;
    println!("merged keys (the unique minimal satisfactory assignment):");
    print!("{}", outcome.keys);

    let advisor = outcome.keys.family(&Class::named("Advisor"));
    let committee = outcome.keys.family(&Class::named("Committee"));
    // The paper's check: {{victim},{faculty,victim}} ⊇ {{faculty,victim}},
    // with the singleton key absorbing the larger one.
    assert!(advisor.contains_family(&committee));
    assert_eq!(advisor.num_keys(), 1);
    println!("\nSK(Advisor) ⊇ SK(Committee): a specialization inherits its keys.\n");

    // A second faculty database that never recorded the advisor limit:
    // merging adds the key constraint to its extents too (§5 end).
    let other_department = ErSchema::builder()
        .entity("Faculty")
        .entity("GS")
        .relationship("Advisor", [("faculty", "Faculty"), ("victim", "GS")])
        .relationship("Committee", [("faculty", "Faculty"), ("victim", "GS")])
        .relationship_isa("Advisor", "Committee")
        .build()?;
    let combined = merge_er([&university, &other_department])?;
    assert!(combined
        .keys
        .family(&Class::named("Advisor"))
        .is_superkey(&KeySet::new(["victim"])));
    println!("merging with an unconstrained department keeps the advisor key.");

    // The advisor key maps back to cardinalities. (The ER read-back
    // transitively reduces, so Advisor's roles live on Committee; use the
    // declared relationship for the role structure.)
    let rel = university
        .relationship(&Name::new("Advisor"))
        .expect("advisor is declared");
    let cards = keys_to_cardinalities(rel, &combined.keys.family(&Class::named("Advisor")))
        .expect("binary relationship");
    assert_eq!(
        cards[&schema_merge_core::Label::new("faculty")],
        Cardinality::One
    );
    println!("…and reads back as faculty:1, victim:N.\n");

    // Fig. 10: Transaction(loc, at, card, amount) with keys {loc,at} and
    // {card,at} — expressible as keys, NOT as edge labels.
    let transaction = WeakSchema::builder()
        .arrow("Transaction", "loc", "Machine")
        .arrow("Transaction", "at", "Time")
        .arrow("Transaction", "card", "Card")
        .arrow("Transaction", "amount", "Amount")
        .build()?;
    let mut keys = KeyAssignment::new();
    keys.add_key(Class::named("Transaction"), KeySet::new(["loc", "at"]));
    keys.add_key(Class::named("Transaction"), KeySet::new(["card", "at"]));
    keys.validate(&transaction)?;
    println!(
        "Fig. 10 Transaction keys: {}",
        keys.family(&Class::named("Transaction"))
    );
    println!("two overlapping multi-attribute keys — beyond any cardinality labelling.");
    Ok(())
}
