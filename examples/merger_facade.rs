//! A tour of the `Merger` façade — the one entry point every merge in
//! this workspace goes through (CLI, daemon, registry, benches).
//!
//! Build a merger, inspect its *plan* (engine choice, passes, work
//! estimate), execute it into a *report* (merged schema, implicit-class
//! table, keys, provenance, diagnostics), then see the incremental
//! (onto-base) and lower (federated GLB) configurations.
//!
//! Run with `cargo run --example merger_facade`.

use schema_merge_core::{
    AnnotatedSchema, Class, ConsistencyRelation, KeySet, Label, MergeError, Merger, SuperkeyFamily,
    WeakSchema,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. Plan, then execute ────────────────────────────────────────
    let municipal = WeakSchema::builder()
        .arrow("Dog", "license", "int")
        .arrow("Dog", "owner", "Person")
        .build()?;
    let veterinary = WeakSchema::builder()
        .arrow("Dog", "name", "string")
        .arrow("Dog", "age", "int")
        .build()?;

    let merger = Merger::new()
        .schema_named("municipal", &municipal)
        .schema_named("veterinary", &veterinary)
        .assert_specialization("Guide-dog", "Dog")
        .with_keys("Dog", SuperkeyFamily::single(KeySet::new(["license"])));

    // The plan is inspectable before anything runs.
    println!("{}\n", merger.plan());

    let report = merger.execute()?;
    println!("merged:\n{}", report.proper.as_weak());

    // Provenance: what each input contributed. Content hashes are
    // recorded for named inputs — naming opts into traceability.
    for input in &report.provenance {
        println!(
            "input #{} {:?}: {} classes, {} arrows, hash {}",
            input.index,
            input.name.as_deref().unwrap_or("<unnamed>"),
            input.classes,
            input.arrows,
            input
                .content_hash
                .map_or("<anonymous>".into(), |h| format!("{h:016x}")),
        );
    }

    // The §5 key pass propagated the license key down the asserted isa.
    assert!(report
        .keys
        .family(&Class::named("Guide-dog"))
        .is_superkey(&KeySet::new(["license"])));
    println!("Guide-dog inherited the license key.\n");

    // ── 2. The incremental (onto-base) configuration ─────────────────
    // Keep the compiled join; merge later arrivals onto it without
    // re-interning the base — the registry's publish path.
    let base = Merger::new()
        .schema(&municipal)
        .schema(&veterinary)
        .join()?
        .into_parts()
        .1
        .expect("the default engine keeps the compiled join");
    let chip_db = WeakSchema::builder().arrow("Dog", "chip", "Chip").build()?;
    let incremental = Merger::new().onto_base(&base).schema(&chip_db).execute()?;
    println!(
        "incremental plan reused a {}-class base: {}",
        incremental.plan.base_classes, incremental.plan.engine
    );
    assert!(incremental.proper.has_arrow(
        &Class::named("Dog"),
        &Label::new("chip"),
        &Class::named("Chip")
    ));

    // Same answer as the batch merge — associativity, mechanically.
    let batch = Merger::new()
        .schemas([&municipal, &veterinary, &chip_db])
        .execute()?;
    assert_eq!(incremental.proper, batch.proper);
    println!("incremental == batch ✓\n");

    // ── 3. Constraint passes: consistency vetoes ─────────────────────
    let one = WeakSchema::builder().arrow("Thing", "ref", "Dog").build()?;
    let two = WeakSchema::builder()
        .arrow("Thing", "ref", "Invoice")
        .build()?;
    let mut relation = ConsistencyRelation::assume_consistent();
    relation.declare_inconsistent("Dog", "Invoice");
    match Merger::new()
        .schema(&one)
        .schema(&two)
        .with_consistency(&relation)
        .execute()
    {
        Err(MergeError::Inconsistent { left, right }) => {
            println!("consistency veto [{left} vs {right}] — as the paper demands (§4.2)");
        }
        other => panic!("expected an inconsistency veto, got {other:?}"),
    }

    // ── 4. Lower mode: the federated GLB with union classes ──────────
    let site_a = AnnotatedSchema::builder()
        .arrow("Pet", "home", "House")
        .build()?;
    let site_b = AnnotatedSchema::builder()
        .arrow("Pet", "home", "Kennel")
        .build()?;
    let lower = Merger::new()
        .with_participation(&site_a)
        .with_participation(&site_b)
        .lower()
        .execute()?;
    let unions = lower.lower.expect("lower mode reports union classes");
    println!(
        "\nlower merge introduced {} union class(es): {}",
        unions.unions.len(),
        unions
            .unions
            .iter()
            .map(|u| u.class.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );

    // ── 5. Diagnostics: structured, stable codes ─────────────────────
    let empty = WeakSchema::empty();
    let diag_report = Merger::new()
        .schema(&municipal)
        .schema_named("void", &empty)
        .execute()?;
    for diag in &diag_report.diagnostics {
        println!("{diag}");
    }
    assert!(diag_report
        .diagnostics
        .iter()
        .any(|d| d.code() == "W-EMPTY-INPUT"));
    Ok(())
}
