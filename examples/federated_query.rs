//! A queryable federated view (§6 + §1): three shelter databases, a
//! lower-merged federation schema, key-driven entity resolution across
//! members, and path queries against the coalesced instance.
//!
//! Run with `cargo run --example federated_query`.

use schema_merge_core::{AnnotatedSchema, Class, KeyAssignment, KeySet, Label, WeakSchema};
use schema_merge_instance::{Federation, Instance, PathQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three member databases with overlapping but different schemas.
    let intake = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "chip", "chip-id")
            .arrow("Dog", "age", "int")
            .build()?,
    );
    let medical = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "chip", "chip-id")
            .arrow("Dog", "vet", "Person")
            .arrow("Person", "phone", "string")
            .build()?,
    );
    let adoption = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "chip", "chip-id")
            .arrow("Dog", "adopter", "Person")
            .build()?,
    );

    // The intake and medical databases share their chip registry, so we
    // build their data over one object space; the adoption agency's data
    // is disjoint. Chips key dogs (§5 end: keys "determine when an
    // object … corresponds to an object" elsewhere).
    let mut b = Instance::builder();
    let chip1 = b.object([Class::named("chip-id")]);
    let chip2 = b.object([Class::named("chip-id")]);
    let age = b.object([Class::named("int")]);
    let rex = b.object([Class::named("Dog")]);
    b.attr(rex, "chip", chip1);
    b.attr(rex, "age", age);
    let bella = b.object([Class::named("Dog")]);
    b.attr(bella, "chip", chip2);
    // The medical record of the SAME dog rex, under a different oid but
    // the same chip.
    let vet = b.object([Class::named("Person")]);
    let phone = b.object([Class::named("string")]);
    b.attr(vet, "phone", phone);
    let rex_med = b.object([Class::named("Dog")]);
    b.attr(rex_med, "chip", chip1);
    b.attr(rex_med, "vet", vet);
    let shared_space = b.build();

    let mut b = Instance::builder();
    let chip3 = b.object([Class::named("chip-id")]);
    let adopter = b.object([Class::named("Person")]);
    let luna = b.object([Class::named("Dog")]);
    b.attr(luna, "chip", chip3);
    b.attr(luna, "adopter", adopter);
    let adoption_data = b.build();

    let mut keys = KeyAssignment::new();
    keys.add_key(Class::named("Dog"), KeySet::new([Label::new("chip")]));

    let federation = Federation::new()
        .with_keys(keys)
        .member("intake+medical", intake, shared_space)
        .member("medical", medical, Instance::default())
        .member("adoption", adoption, adoption_data);

    let view = federation.view()?;
    println!("{view}");
    view.check()?;
    println!("union instance conforms to the lower merge  ✓ (§6)");

    // Rex's intake and medical records coalesced on the chip key:
    let dogs = view.query(&PathQuery::extent("Dog"));
    println!("\ndogs in the federation: {}", dogs.len());
    assert_eq!(dogs.len(), 3, "rex appears once despite two records");

    // Path query across member boundaries: rex's vet phone is reachable
    // even though "age" and "vet" came from different databases.
    let phones = view.query(&PathQuery::extent("Dog").follow("vet").follow("phone"));
    println!("vet phone numbers reachable from dogs: {}", phones.len());
    assert_eq!(phones.len(), 1);

    // Participation constraints tell querying tools what may be absent:
    let dog = Class::named("Dog");
    for label in ["chip", "age", "vet", "adopter"] {
        let label = Label::new(label);
        let targets = view.schema.schema().arrow_targets(&dog, &label);
        let target = view
            .schema
            .schema()
            .min_s(targets.iter())
            .into_iter()
            .next()
            .expect("arrow survives the lower merge");
        println!(
            "  Dog --{label}--> {target}: participation {}",
            view.schema.participation(&dog, &label, &target),
        );
    }
    Ok(())
}
