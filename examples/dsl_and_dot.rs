//! The schema DSL and renderers (the prototype's interface, §1/§7):
//! parse two schema files, merge, pretty-print and export Graphviz DOT.
//!
//! Run with `cargo run --example dsl_and_dot`.

use schema_merge_core::Merger;
use schema_merge_core::{AnnotatedSchema, KeyAssignment};
use schema_merge_text::{
    parse_document, print_schema, render_ascii, to_dot, DotOptions, NamedSchema,
};

const SOURCE: &str = r#"
// The kennel agency's view.
schema Kennels {
    Guide-dog => Dog;
    Police-dog => Dog;
    Dog --age--> int;
    Dog --kind--> breed;
    Police-dog --id-num--> int;
    Lives --occ--> Dog;
    Lives --home--> Kennel;
    Kennel --addr--> place;
    key Kennel {addr};
}

// The city registry's view; chip numbers are optional.
schema Registry {
    Dog --license--> int;
    Dog --chip?--> int;
    Lives --occ--> Dog;
    Lives --owner--> person;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let docs = parse_document(SOURCE)?;
    println!("parsed {} schemas:", docs.len());
    for doc in &docs {
        println!("{}", render_ascii(doc));
    }

    // Merge the two views (upper merge on the annotated schemas).
    let mut merger = Merger::new();
    for doc in &docs {
        merger = merger.with_participation_named(doc.name.clone(), &doc.schema);
    }
    let merged = merger.execute()?;
    let (proper, report) = (merged.proper, merged.implicit);
    let mut keys = KeyAssignment::new();
    for doc in &docs {
        for class in doc.keys.keyed_classes() {
            keys.set(class.clone(), doc.keys.family(class));
        }
    }

    let merged = NamedSchema {
        name: "CityView".into(),
        schema: AnnotatedSchema::all_required(proper.as_weak().clone()),
        keys,
    };
    println!("merged schema in canonical DSL:\n{}", print_schema(&merged));
    println!("implicit classes introduced: {}", report.num_implicit());

    // Round-trip guarantee: the printed form parses back identically.
    let reparsed = schema_merge_text::parse_schema(&print_schema(&merged))?;
    assert_eq!(reparsed, merged);
    println!("print → parse round-trip ✓\n");

    // Graphviz export for the paper-style diagram.
    let dot = to_dot(&merged, &DotOptions::default());
    println!("Graphviz DOT ({} bytes):\n{}", dot.len(), dot);
    Ok(())
}
