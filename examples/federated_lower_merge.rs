//! Lower merges for federated databases (§6): the greatest lower bound
//! of two sites' schemas, participation constraints, union classes, and
//! the instance-union theorem.
//!
//! Run with `cargo run --example federated_lower_merge`.

use schema_merge_core::lower::{lower_complete, lower_merge, AnnotatedSchema};
use schema_merge_core::{Class, KeyAssignment, Label, Participation};
use schema_merge_instance::{union_instances, Instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two shelters track dogs. Site A records name and age; site B
    // records name and breed, and houses its dogs in kennels rather than
    // foster homes.
    let site_a = AnnotatedSchema::builder()
        .arrow("Dog", "name", "string")
        .arrow("Dog", "age", "int")
        .arrow("Dog", "housed", "FosterHome")
        .build()?;
    let site_b = AnnotatedSchema::builder()
        .arrow("Dog", "name", "string")
        .arrow("Dog", "breed", "Breed")
        .arrow("Dog", "housed", "Kennel")
        .build()?;

    // The federated view: the greatest lower bound. Every site's
    // instance is an instance of it.
    let merged = lower_merge([&site_a, &site_b]);
    println!("weak lower merge:\n{merged}\n");

    let dog = Class::named("Dog");
    assert_eq!(
        merged.participation(&dog, &Label::new("name"), &Class::named("string")),
        Participation::One,
        "both sites require a name: it stays required"
    );
    assert_eq!(
        merged.participation(&dog, &Label::new("age"), &Class::named("int")),
        Participation::ZeroOrOne,
        "only site A has ages: the federated view makes it optional"
    );

    // Completion introduces {FosterHome|Kennel} above the two housing
    // targets so `housed` has a canonical class again.
    let (annotated, proper, report) = lower_complete(&merged)?;
    println!("completed lower merge:\n{annotated}\n");
    let union = Class::implicit_union([Class::named("FosterHome"), Class::named("Kennel")]);
    assert_eq!(
        proper.canonical_target(&dog, &Label::new("housed")),
        Some(&union)
    );
    println!(
        "union classes introduced: {}",
        report
            .unions
            .iter()
            .map(|u| u.class.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The instance-union theorem: each site's data, combined, conforms
    // to the federated schema.
    let mut a = Instance::builder();
    let name_a = a.object(["string"]);
    let age = a.object(["int"]);
    let home = a.object(["FosterHome"]);
    let rex = a.object(["Dog"]);
    a.attr(rex, "name", name_a);
    a.attr(rex, "age", age);
    a.attr(rex, "housed", home);
    let instance_a = a.build();

    let mut b = Instance::builder();
    let name_b = b.object(["string"]);
    let breed = b.object(["Breed"]);
    let kennel = b.object(["Kennel"]);
    let fido = b.object(["Dog"]);
    b.attr(fido, "name", name_b);
    b.attr(fido, "breed", breed);
    b.attr(fido, "housed", kennel);
    let instance_b = b.build();

    let (combined, _) = union_instances(&[&instance_a, &instance_b], &KeyAssignment::new());
    let filled = combined.populate_implicit_extents(proper.as_weak());
    filled.conforms_annotated(&annotated, &proper)?;
    println!("\nunion of both sites' instances conforms to the federated schema ✓");
    assert_eq!(filled.extent(&dog).len(), 2);
    Ok(())
}
