//! A durable registry session: publishes survive `kill -9`.
//!
//! Opens a registry on a data directory, publishes a few member
//! schemas (each commit is WAL-appended and fsync'd before it is
//! acknowledged), drops the registry without any shutdown ceremony,
//! reopens the same directory, and shows the recovered state —
//! generation, member histories and merged view are all intact. A
//! manual `snapshot()` then compacts the log: the compiled view is
//! written once and the WAL is truncated.
//!
//! Run with `cargo run --example durable_registry`.

use schema_merge_core::WeakSchema;
use schema_merge_registry::Registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("smerge-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let view_hash = {
        let registry = Registry::builder()
            .data_dir(&dir)
            .snapshot_every(0) // manual snapshots only, so the WAL is visible
            .open()?;

        let vehicles = WeakSchema::builder()
            .arrow("Vehicle", "vin", "string")
            .arrow("Car", "plate", "string")
            .specialize("Car", "Vehicle")
            .build()?;
        let insurance = WeakSchema::builder()
            .arrow("Car", "policy", "Policy")
            .arrow("Policy", "premium", "int")
            .build()?;
        registry.put("vehicles", vehicles)?;
        registry.put("insurance", insurance)?;

        // A second version of a member: versions are immutable, the new
        // content appends to the history and bumps the generation.
        let insurance_v2 = WeakSchema::builder()
            .arrow("Car", "policy", "Policy")
            .arrow("Policy", "premium", "int")
            .arrow("Policy", "deductible", "int")
            .build()?;
        let outcome = registry.put("insurance", insurance_v2)?;
        println!(
            "published insurance v{} at generation {}",
            outcome.sequence, outcome.generation
        );
        println!("{}\n", registry.stats());

        registry.merged().hash()
        // The registry is dropped here with no shutdown hook — exactly
        // what a crash looks like to the data directory.
    };

    // Reopen the same directory: the WAL replays and the view is
    // recomputed from the recovered members, not trusted from disk.
    let recovered = Registry::builder().data_dir(&dir).open()?;
    assert_eq!(recovered.merged().hash(), view_hash);
    println!("recovered {} members:", recovered.list().len());
    for member in recovered.list() {
        println!(
            "  {} v{} ({} versions, {} classes)",
            member.name, member.sequence, member.versions, member.num_classes
        );
    }

    // Compact: one snapshot of the compiled view replaces the replay log.
    let snapped_at = recovered.snapshot()?;
    println!("\nsnapshot written at generation {snapped_at}");
    println!("{}", recovered.stats());

    // And commits keep flowing after compaction.
    let fleet = WeakSchema::builder()
        .arrow("Truck", "capacity", "int")
        .specialize("Truck", "Vehicle")
        .build()?;
    recovered.put("fleet", fleet)?;
    println!("\nmerged view after one more publish:");
    println!("{}", recovered.merged().proper.as_weak());

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
