//! Structural conflicts and §7's "normal form": detect that one database
//! models kennels as a mere attribute while another treats them as
//! entities, restructure to a common presentation, and merge.
//!
//! Run with `cargo run --example structural_conflicts`.

use schema_merge_core::restructure::{flatten_class, reify_arrow};
use schema_merge_core::{Class, Label, Renaming, WeakSchema};
use schema_merge_er::{detect_conflicts, merge_er, normalize_pair, ErSchema, NormalPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Part 1: the ER-level conflict ────────────────────────────────
    // The city registry stores a dog's kennel as an attribute …
    let registry = ErSchema::builder()
        .entity("Dog")
        .attribute("Dog", "kennel", "kennel-id")
        .attribute("Dog", "age", "int")
        .build()?;
    // … while the kennel club models kennels as first-class entities.
    let club = ErSchema::builder()
        .entity("Dog")
        .entity("kennel")
        .attribute("kennel", "addr", "place")
        .build()?;

    println!("conflicts before normalization:");
    for conflict in detect_conflicts(&registry, &club) {
        println!("  - {conflict}");
    }

    // §7: "To force an integration, we need some kind of 'normal form'."
    let outcome = normalize_pair(&registry, &club, NormalPolicy::PreferEntity);
    for fix in &outcome.applied {
        println!("applied ({}): {}", fix.side, fix.description);
    }
    assert!(outcome.is_clean());
    assert!(detect_conflicts(&outcome.left, &outcome.right).is_empty());

    // The normalized pair merges into a single kennel entity carrying
    // both databases' information.
    let merged = merge_er([&outcome.left, &outcome.right])?;
    let kennel = schema_merge_core::Name::new("kennel");
    println!(
        "\nmerged: kennel is an {:?} with attributes {:?}",
        merged.er.stratum(&kennel).expect("kennel survives"),
        merged
            .er
            .attributes_of(&kennel)
            .keys()
            .map(|l| l.to_string())
            .collect::<Vec<_>>(),
    );

    // ── Part 2: the same move in the graph model ─────────────────────
    // Direct arrow vs relationship node ("a many-one relationship may be
    // a single arrow in one schema but introduce a relationship node in
    // another", §7).
    let direct = WeakSchema::builder()
        .arrow("Person", "owns", "Dog")
        .build()?;
    let reified = reify_arrow(
        &direct,
        &Class::named("Person"),
        &Label::new("owns"),
        "Owns",
        "owner",
        "pet",
    )?;
    println!("\nreified form:\n{reified}");

    // The operations are inverse: flattening restores the original.
    let back = flatten_class(
        &reified,
        &Class::named("Owns"),
        &Label::new("owner"),
        &Label::new("pet"),
        "owns",
    )?;
    assert_eq!(back, direct);
    println!("flatten(reify(g)) == g  ✓");

    // ── Part 3: naming conflicts ride the same pipeline (§3) ─────────
    let hounds = WeakSchema::builder()
        .arrow("Hound", "owner", "Person")
        .build()?;
    let renaming = Renaming::new().class("Hound", "Dog");
    let (renamed, report) = renaming.apply(&hounds)?;
    println!(
        "\nrenamed {} class(es); Hound is now {:?}",
        report.classes_renamed,
        renamed.classes().map(|c| c.to_string()).collect::<Vec<_>>(),
    );
    Ok(())
}
