//! Quickstart: merge two database schemas and inspect the result.
//!
//! Run with `cargo run --example quickstart`.

use schema_merge::prelude::*;
use schema_merge_core::{Class, Label};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two databases describe dogs differently (§3 of the paper): one by
    // license and owner, the other by name and age.
    let municipal = WeakSchema::builder()
        .arrow("Dog", "license", "int")
        .arrow("Dog", "owner", "Person")
        .arrow("Dog", "breed", "breed")
        .build()?;
    let veterinary = WeakSchema::builder()
        .arrow("Dog", "name", "string")
        .arrow("Dog", "age", "int")
        .arrow("Dog", "breed", "breed")
        .specialize("Guide-dog", "Dog")
        .build()?;

    // The merge is a least upper bound: associative, commutative, and
    // independent of the order of its inputs. Every merge goes through
    // the `Merger` façade: build, (optionally) inspect the plan, execute.
    let outcome = Merger::new()
        .schema(&municipal)
        .schema(&veterinary)
        .execute()?;
    println!("merged schema:\n{}\n", outcome.proper.as_weak());

    let dog = Class::named("Dog");
    println!(
        "Dog now carries {} attributes:",
        outcome.proper.labels_of(&dog).len()
    );
    for label in outcome.proper.labels_of(&dog) {
        let target = outcome
            .proper
            .canonical_target(&dog, &label)
            .expect("proper");
        println!("  .{label} : {target}");
    }

    // Guide dogs inherit everything (W1 closure).
    let guide = Class::named("Guide-dog");
    assert!(outcome
        .proper
        .has_arrow(&guide, &Label::new("license"), &Class::named("int")));
    println!("\nGuide-dog inherits the municipal license attribute.");

    // Merging in the other order gives the identical schema.
    let reversed = Merger::new()
        .schema(&veterinary)
        .schema(&municipal)
        .execute()?;
    assert_eq!(outcome.proper, reversed.proper);
    println!("merge(a, b) == merge(b, a) — the paper's headline property.");
    Ok(())
}
