//! An interactive merging session (§3): schemas and user assertions
//! accumulate in any order; conflicts are reported with witnesses and
//! leave the session intact; the consistency relation vetoes nonsense
//! identifications (§4.2).
//!
//! Run with `cargo run --example interactive_session`.

use schema_merge_core::{Class, MergeError, MergeSession, WeakSchema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = MergeSession::new();

    // Load the first source schema.
    let registry = WeakSchema::builder()
        .arrow("Vehicle", "vin", "string")
        .arrow("Car", "plate", "string")
        .build()?;
    session.add_schema(&registry)?;

    // Load the second.
    let insurance = WeakSchema::builder()
        .arrow("Car", "policy", "Policy")
        .arrow("Truck", "policy", "Policy")
        .build()?;
    session.add_schema(&insurance)?;

    // The designer asserts correspondences as elementary schemas.
    session.assert_specialization("Car", "Vehicle")?;
    session.assert_specialization("Truck", "Vehicle")?;
    println!("after assertions:\n{}\n", session.current());

    // A bad assertion is rejected with a cycle witness and does NOT
    // disturb the session.
    let before = session.current().clone();
    match session.assert_specialization("Vehicle", "Car") {
        Err(MergeError::Incompatible(witness)) => {
            println!("rejected incompatible assertion, witness: {witness}");
        }
        other => panic!("expected incompatibility, got {other:?}"),
    }
    assert_eq!(session.current(), &before);

    // Cars and trucks inherit vin through the asserted isa edges.
    let outcome = session.merged()?;
    assert!(outcome.proper.has_arrow(
        &Class::named("Truck"),
        &schema_merge_core::Label::new("vin"),
        &Class::named("string")
    ));
    println!("\nmerged schema:\n{}", outcome.proper.as_weak());

    // Declare two classes inconsistent and watch the merge refuse to
    // identify them (§4.2's consistency relationship).
    let mut vetoed = MergeSession::new();
    vetoed
        .consistency_mut()
        .declare_inconsistent(Class::named("Dog"), Class::named("Invoice"));
    vetoed.assert_arrow("Thing", "ref", "Dog")?;
    vetoed.assert_arrow("Thing", "ref", "Invoice")?;
    match vetoed.merged() {
        Err(MergeError::Inconsistent { left, right }) => {
            println!("\nconsistency veto: refusing to identify {left} with {right}");
        }
        other => panic!("expected inconsistency, got {other:?}"),
    }
    Ok(())
}
