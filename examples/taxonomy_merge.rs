//! Merging large class taxonomies: the partitioned engine and the
//! target-driven (preferred-hierarchy) reporting mode.
//!
//! Two federated curators each know part of a multi-forest taxonomy
//! (disjoint subject trees — no specialization or arrow ever crosses
//! forests). The merge therefore splits along the weakly-connected
//! components of the combined graph: each component merges
//! independently and the results are stitched at the seams, which is
//! exactly what `Merger` plans when the component analysis finds more
//! than one forest. At real scale (the auto-planner engages at 4096+
//! classes) this bounds every per-component working set; here we force
//! the engine on a small taxonomy so the example stays fast.
//!
//! Run with `cargo run --example taxonomy_merge`.

use schema_merge_core::{EnginePreference, Merger, PlannedEngine, WeakSchema};
use schema_merge_workload::{taxonomy, taxonomy_family, TaxonomyParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. A multi-forest taxonomy, refined by a partial curator ────
    // 600 classes in 3 disjoint forests (branching-8 trees with a few
    // extra DAG parents): the published taxonomy, merged with one
    // curator's partial view of it (~70% of the edges).
    let params = TaxonomyParams::dag(600, 3, 7);
    let published = taxonomy(&params);
    let curator = taxonomy_family(&params, 1).remove(0);

    let inputs = [&published, &curator];
    let merger = Merger::new()
        .schemas(inputs)
        .engine(EnginePreference::Partitioned)
        .threads(2);
    let plan = merger.plan();
    println!("plan: {plan}");
    assert_eq!(plan.engine, PlannedEngine::Partitioned);
    assert_eq!(plan.partitions, 3, "one component per forest");

    let report = merger.execute()?;
    println!(
        "merged {} classes, {} specializations",
        report.proper.as_weak().num_classes(),
        report.proper.as_weak().num_specializations(),
    );
    for diagnostic in &report.diagnostics {
        if diagnostic.code() == "I-PARTITIONED" {
            println!("  [{}] {}", diagnostic.code(), diagnostic.message);
        }
    }
    // The split is invisible in the result: components never interact,
    // so the stitched merge *is* the paper's least upper bound.
    let monolithic = Merger::new()
        .schemas(inputs)
        .engine(EnginePreference::Compiled)
        .execute()?;
    assert_eq!(report.proper, monolithic.proper);

    // ── 2. Target-driven merging: prefer one hierarchy ──────────────
    // ATOM-style taxonomy merging treats one input as the *target*
    // whose shape should survive. Preference can never change the LUB
    // (that associativity is the paper's point) — instead the report
    // itemizes everything the other inputs forced onto the target.
    let curated = WeakSchema::builder()
        .specialize("Sighthound", "Dog")
        .specialize("Whippet", "Sighthound")
        .arrow("Dog", "registry", "string")
        .build()?;
    let field_observations = WeakSchema::builder()
        .specialize("Whippet", "Racer")
        .specialize("Racer", "Dog")
        .arrow("Sighthound", "gait", "string")
        .build()?;

    let report = Merger::new()
        .schema_named("curated", &curated)
        .schema_named("field", &field_observations)
        .prefer_hierarchy("curated")
        .execute()?;
    println!("\ntarget-driven report for `curated`:");
    for diagnostic in &report.diagnostics {
        if diagnostic.code().starts_with("I-TARGET") {
            println!("  [{}] {}", diagnostic.code(), diagnostic.message);
        }
    }
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code() == "I-TARGET-ARROW"));

    Ok(())
}
