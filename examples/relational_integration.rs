//! Relational view integration (§2's 1NF stratification + §5 keys):
//! merging two departmental databases, including a column-type conflict
//! resolved by an implicit intersection domain.
//!
//! Run with `cargo run --example relational_integration`.

use schema_merge_core::{KeySet, Name};
use schema_merge_relational::{merge_relational, RelSchema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Payroll: employees keyed by SS#, salary as int.
    let payroll = RelSchema::builder()
        .column("Employee", "ssn", "int")
        .column("Employee", "name", "text")
        .column("Employee", "salary", "int")
        .key("Employee", KeySet::new(["ssn"]))
        .build()?;

    // HR: employees keyed by badge, salary as decimal (type conflict!),
    // plus a departments table.
    let hr = RelSchema::builder()
        .column("Employee", "badge", "int")
        .column("Employee", "salary", "decimal")
        .column("Department", "name", "text")
        .column("Department", "head", "int")
        .key("Employee", KeySet::new(["badge"]))
        .key("Department", KeySet::new(["name"]))
        .build()?;

    let outcome = merge_relational([&payroll, &hr])?;
    println!("merged relational schema:\n{}", outcome.schema);

    // The Employee relation has the union of the columns: ssn, name,
    // badge, and the (unified) salary…
    let employee = outcome
        .schema
        .relation(&Name::new("Employee"))
        .expect("Employee");
    assert_eq!(employee.arity(), 4);

    // …both keys (the minimal satisfactory assignment)…
    assert!(employee.keys.is_superkey(&KeySet::new(["ssn"])));
    assert!(employee.keys.is_superkey(&KeySet::new(["badge"])));
    println!("Employee keys: {}", employee.keys);

    // …and the conflicting salary types meet in an implicit domain that
    // refines both int and decimal.
    let salary_domain = &employee.columns[&schema_merge_core::Label::new("salary")];
    assert_eq!(salary_domain.as_str(), "{decimal,int}");
    println!("salary column type: {salary_domain} (refines both inputs' types)");
    for (sub, sup) in outcome.schema.domain_refinements() {
        println!("  domain {sub} refines {sup}");
    }

    // Merge order is irrelevant, as always.
    let reversed = merge_relational([&hr, &payroll])?;
    assert_eq!(outcome.schema, reversed.schema);
    println!("\nmerge([payroll, hr]) == merge([hr, payroll]) ✓");
    Ok(())
}
