//! # schema-merge
//!
//! A Rust implementation of **Buneman, Davidson & Kosky, _Theoretical
//! Aspects of Schema Merging_ (EDBT 1992)** — order-theoretic database
//! schema merging with associative, commutative merges, implicit
//! classes, key constraints and lower merges, plus Entity–Relationship
//! and relational front-ends, an instance semantics, a schema DSL and a
//! CLI.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the calculus: weak/proper schemas, `⊑`, `⊔`, completion,
//!   keys, participation constraints, lower merges;
//! * [`er`] / [`relational`] — stratified front-ends for the ER and
//!   relational models;
//! * [`instance`] — instances, conformance, projection and key-driven
//!   entity resolution;
//! * [`baseline`] — the non-associative stepwise merge the paper argues
//!   against (Figs. 4–5);
//! * [`workload`] — synthetic schema generators, including the
//!   exponential-completion family;
//! * [`text`] — the schema DSL, pretty-printer and Graphviz export.
//!
//! ```
//! use schema_merge::prelude::*;
//!
//! let g1 = WeakSchema::builder().arrow("Dog", "owner", "Person").build()?;
//! let g2 = WeakSchema::builder().arrow("Dog", "age", "int").build()?;
//! let merged = Merger::new().schema(&g1).schema(&g2).execute()?;
//! assert_eq!(merged.proper.labels_of(&Class::named("Dog")).len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use schema_merge_baseline as baseline;
pub use schema_merge_core as core;
pub use schema_merge_er as er;
pub use schema_merge_instance as instance;
pub use schema_merge_relational as relational;
pub use schema_merge_text as text;
pub use schema_merge_workload as workload;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use schema_merge_core::prelude::*;
    pub use schema_merge_er::{merge_er, ErSchema};
    pub use schema_merge_instance::{union_instances, Instance};
    pub use schema_merge_relational::{merge_relational, RelSchema};
    pub use schema_merge_text::{parse_document, parse_schema, print_schema};
}
