//! Immutable, content-hashed schema versions.

use std::sync::Arc;

use schema_merge_core::WeakSchema;

/// One published version of a member's schema. Versions are immutable:
/// publishing new content appends a new version, it never rewrites an
/// old one, so a client holding a version can keep reading it while the
/// registry moves on.
#[derive(Debug, Clone)]
pub struct SchemaVersion {
    /// The canonical content hash ([`WeakSchema::content_hash`]) — the
    /// version's identity. Publishing content with the hash of the
    /// current version is a no-op.
    pub hash: u64,
    /// 1-based position in the member's version history.
    pub sequence: u32,
    /// The registry generation at which this version was committed.
    pub generation: u64,
    /// The schema itself (shared, never mutated).
    pub schema: Arc<WeakSchema>,
}

/// A member's row in [`crate::Registry::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberInfo {
    /// The member name.
    pub name: String,
    /// Content hash of the current version.
    pub hash: u64,
    /// Sequence number of the current version.
    pub sequence: u32,
    /// How many versions the member has published.
    pub versions: usize,
    /// Classes in the current version.
    pub num_classes: usize,
    /// Arrows (closed) in the current version.
    pub num_arrows: usize,
}

/// The per-member record: an append-only version history.
#[derive(Debug, Clone)]
pub(crate) struct MemberRecord {
    pub(crate) versions: Vec<SchemaVersion>,
}

impl MemberRecord {
    pub(crate) fn current(&self) -> &SchemaVersion {
        self.versions.last().expect("members have >= 1 version")
    }
}
