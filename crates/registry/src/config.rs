//! Registry configuration: the builder that opens in-memory or durable
//! registries, and the boot-time recovery it performs for the latter.
//!
//! ## Recovery
//!
//! [`RegistryBuilder::open`] rebuilds a durable registry from its store
//! in four steps:
//!
//! 1. **Snapshot.** Load and validate the *newest* snapshot object.
//!    Only the newest is usable — the log was truncated when it was
//!    installed, so an older snapshot plus the current log would be
//!    missing records; a corrupt newest snapshot is therefore a hard
//!    [`StorageError::Corrupt`], never a silent fall-back.
//! 2. **Log replay.** Scan the WAL's valid prefix, truncate any torn
//!    tail (un-acknowledged by construction), and apply every record
//!    with a generation past the snapshot's. Records at or before it are
//!    stale — a crash between snapshot install and log truncation leaves
//!    them behind — and are skipped, though the schema bodies they carry
//!    still feed the blob table.
//! 3. **Re-merge.** The merged view is a deterministic least upper
//!    bound of the current members, so it is *recomputed*, not stored:
//!    one batch join plus completion, exactly the engine's cold path.
//! 4. **Verify.** The recomputed view's content hash must equal the
//!    `view_hash` carried by the last applied record (or the snapshot,
//!    when the log is empty) — an end-to-end check that recovery
//!    reproduced the view the writer actually served.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use schema_merge_core::{CompletionReport, Merger, ProperSchema, WeakSchema};
use schema_merge_telemetry as telemetry;

use crate::cache::{fingerprint, JoinCache};
use crate::error::RegistryError;
use crate::registry::{
    merge_onto, Counters, Persistence, Registry, RegistryMetrics, Resilience, Shared,
};
use crate::resilience::RetryPolicy;
use crate::storage::snapshot::SnapshotState;
use crate::storage::wal::{self, WalRecord};
use crate::storage::{snapshot, LocalStore, StorageError, Store};
use crate::version::{MemberRecord, SchemaVersion};

/// Records between auto-snapshots unless
/// [`RegistryBuilder::snapshot_every`] says otherwise.
const DEFAULT_SNAPSHOT_EVERY: u64 = 256;

/// Configures and opens a [`Registry`]. Obtained from
/// [`Registry::builder`].
///
/// ```
/// use schema_merge_registry::Registry;
///
/// // In-memory, two merge workers:
/// let registry = Registry::builder().merge_threads(2).open().unwrap();
/// assert!(registry.is_empty());
/// ```
#[must_use = "a builder does nothing until `open` is called"]
pub struct RegistryBuilder {
    merge_threads: Option<usize>,
    data_dir: Option<PathBuf>,
    snapshot_every: u64,
    store: Option<Box<dyn Store>>,
    retry_policy: Option<RetryPolicy>,
}

impl Default for RegistryBuilder {
    fn default() -> Self {
        RegistryBuilder::new()
    }
}

impl RegistryBuilder {
    /// A builder with defaults: in-memory, engine-chosen parallelism,
    /// auto-snapshot every 256 records once a store is configured.
    pub fn new() -> Self {
        RegistryBuilder {
            merge_threads: None,
            data_dir: None,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            store: None,
            retry_policy: None,
        }
    }

    /// Fixes the worker budget for the registry's merge plans. Cold
    /// full rebuilds (cache-miss publishes, preloads, post-delete
    /// re-merges, recovery's re-merge) run the parallel engine with this
    /// many workers; the warm incremental path uses it for the
    /// completion pass. Thread counts never change the merged view.
    pub fn merge_threads(mut self, threads: usize) -> Self {
        self.merge_threads = Some(threads.max(1));
        self
    }

    /// Makes the registry durable on a local directory: a WAL plus
    /// snapshot objects under `dir` (created if absent), via
    /// [`LocalStore`]. Opening recovers whatever state the directory
    /// holds. Ignored when an explicit [`RegistryBuilder::store`] is
    /// also configured.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Auto-snapshot (and compact the log) after this many WAL records;
    /// `0` disables the cadence, leaving compaction to explicit
    /// [`Registry::snapshot`] calls. Meaningless without a store.
    pub fn snapshot_every(mut self, records: u64) -> Self {
        self.snapshot_every = records;
        self
    }

    /// Makes the registry durable on a custom [`Store`] backend (an
    /// object-store adapter, or [`crate::storage::MemoryStore`] in
    /// tests). Takes precedence over [`RegistryBuilder::data_dir`].
    pub fn store(mut self, store: impl Store + 'static) -> Self {
        self.store = Some(Box::new(store));
        self
    }

    /// Opts the registry into commit-path resilience: transient storage
    /// failures are retried under `policy`'s bounded
    /// exponential-backoff budget (recovery reads retry too), and
    /// budget exhaustion flips the registry into degraded read-only
    /// mode instead of leaving it an error fountain — see
    /// [`crate::resilience`]. Without this call the registry is
    /// fail-fast, exactly as before.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = Some(policy);
        self
    }

    /// Opens the registry. With no store configured this is
    /// [`Registry::new`] plus the thread budget; with one, the durable
    /// state is recovered as described in the [module docs](self).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] when the store cannot be opened or
    /// read, or when the durable state fails validation (corrupt
    /// snapshot, blob references that resolve nowhere, a recovered view
    /// that does not hash to what the log says was served).
    pub fn open(self) -> Result<Registry, RegistryError> {
        let store: Option<Box<dyn Store>> = match (self.store, self.data_dir) {
            (Some(store), _) => Some(store),
            (None, Some(dir)) => Some(Box::new(LocalStore::open(dir)?)),
            (None, None) => None,
        };
        let Some(mut store) = store else {
            let mut registry = Registry::new();
            registry.merge_threads = self.merge_threads;
            registry.resilience = Resilience::new(self.retry_policy);
            return Ok(registry);
        };
        let recovery_started = Instant::now();
        let recovered = {
            let mut span = telemetry::span("recover");
            let recovered = recover(&mut store, self.merge_threads, self.retry_policy.as_ref())?;
            span.attr("generation", recovered.generation);
            span.attr("wal_records", recovered.wal_records);
            recovered
        };
        let mut cache = JoinCache::default();
        if let Some(compiled) = &recovered.compiled {
            // Seed the join cache with the full-set join so the first
            // publish after reboot is already incremental.
            let fp = fingerprint(
                recovered
                    .members
                    .iter()
                    .map(|(n, r)| (n.as_str(), r.current().hash)),
            );
            cache.insert(fp, Arc::clone(compiled));
        }
        let registry = Registry {
            shared: RwLock::new(Shared {
                generation: recovered.generation,
                members: recovered.members,
                proper: recovered.proper,
                report: recovered.report,
            }),
            cache: Mutex::new(cache),
            counters: Counters::default(),
            merge_threads: self.merge_threads,
            persistence: Some(Mutex::new(Persistence {
                store,
                snapshot_every: self.snapshot_every,
                wal_records: recovered.wal_records,
                records_since_snapshot: recovered.wal_records,
                snapshot_generation: recovered.snapshot_generation,
                snapshot_bytes: recovered.snapshot_bytes,
                snapshots_written: 0,
                on_disk: recovered.on_disk,
                torn_at: None,
            })),
            metrics: RegistryMetrics::default(),
            resilience: Resilience::new(self.retry_policy),
        };
        registry
            .metrics
            .recovery_latency
            .record(recovery_started.elapsed());
        Ok(registry)
    }
}

/// Everything [`recover`] rebuilds from the store.
struct Recovered {
    generation: u64,
    members: BTreeMap<String, MemberRecord>,
    proper: Arc<ProperSchema>,
    report: Arc<CompletionReport>,
    /// The compiled full-set join (absent when there are no members).
    compiled: Option<Arc<schema_merge_core::CompiledSchema>>,
    snapshot_generation: u64,
    snapshot_bytes: u64,
    wal_records: u64,
    on_disk: HashSet<u64>,
}

/// Runs `op`, retrying transient storage failures under `policy` (when
/// one is configured) with the same jittered backoff the commit path
/// uses. Recovery is read-mostly, so a flaky boot-time read should not
/// abort the open when the registry opted into resilience.
fn retrying<T>(
    policy: Option<&RetryPolicy>,
    salt: u64,
    mut op: impl FnMut() -> Result<T, StorageError>,
) -> Result<T, StorageError> {
    let mut attempt: u32 = 0;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(err) if err.is_transient() => {
                let Some(policy) = policy else {
                    return Err(err);
                };
                if attempt >= policy.max_retries() {
                    return Err(err);
                }
                attempt += 1;
                std::thread::sleep(policy.backoff(attempt, salt));
            }
            Err(err) => return Err(err),
        }
    }
}

fn recover(
    store: &mut Box<dyn Store>,
    threads: Option<usize>,
    policy: Option<&RetryPolicy>,
) -> Result<Recovered, StorageError> {
    // 1. The newest snapshot, if any.
    let snapshots = retrying(policy, 1, || store.list_snapshots())?;
    let mut state = SnapshotState::default();
    let mut snapshot_bytes = 0u64;
    let mut last_view_hash = None;
    if let Some(&latest) = snapshots.last() {
        let image = retrying(policy, 2, || store.read_snapshot(latest))?;
        snapshot_bytes = image.len() as u64;
        state = snapshot::decode(&image)?;
        last_view_hash = Some(state.view_hash);
    }

    // 2. The log's valid prefix; a torn tail was never acknowledged and
    // is truncated away so appends resume on a frame boundary.
    let image = retrying(policy, 3, || store.read_log())?;
    let scan = wal::read_frames(&image)?;
    if scan.valid_len < image.len() as u64 {
        retrying(policy, 4, || store.truncate_log(scan.valid_len))?;
    }

    // Blob table: snapshot bodies plus every body carried in the log
    // (stale records — generation at or before the snapshot's, left by a
    // crash between snapshot install and log truncation — still
    // contribute theirs; a later by-reference record may need them).
    let mut blobs: HashMap<u64, Arc<WeakSchema>> = state
        .blobs
        .iter()
        .map(|(hash, schema)| (*hash, Arc::clone(schema)))
        .collect();
    for record in &scan.records {
        if let WalRecord::Put {
            hash,
            schema: Some(schema),
            ..
        } = record
        {
            blobs.insert(*hash, Arc::clone(schema));
        }
    }

    // Member histories: the snapshot's, then the post-snapshot records.
    let mut members: BTreeMap<String, MemberRecord> = BTreeMap::new();
    for (name, versions) in &state.members {
        let mut record = MemberRecord {
            versions: Vec::new(),
        };
        for meta in versions {
            // Unreachable after `snapshot::decode` validated references,
            // but kept honest rather than unwrapped.
            let schema = blobs.get(&meta.hash).cloned().ok_or_else(|| {
                StorageError::corrupt(format!(
                    "snapshot member `{name}` references missing blob {:#018x}",
                    meta.hash
                ))
            })?;
            record.versions.push(SchemaVersion {
                hash: meta.hash,
                sequence: meta.sequence,
                generation: meta.generation,
                schema,
            });
        }
        members.insert(name.clone(), record);
    }
    let mut generation = state.generation;
    let mut wal_records = 0u64;
    for record in &scan.records {
        wal_records += 1;
        if record.generation() <= state.generation {
            continue; // stale: the snapshot already captured it
        }
        if record.generation() != generation + 1 {
            return Err(StorageError::corrupt(format!(
                "log jumps from generation {generation} to {}",
                record.generation()
            )));
        }
        match record {
            WalRecord::Put {
                generation: g,
                member,
                hash,
                sequence,
                ..
            } => {
                let schema = blobs.get(hash).cloned().ok_or_else(|| {
                    StorageError::corrupt(format!(
                        "put of `{member}` references blob {hash:#018x} \
                         carried by no snapshot or earlier record"
                    ))
                })?;
                members
                    .entry(member.clone())
                    .or_insert_with(|| MemberRecord {
                        versions: Vec::new(),
                    })
                    .versions
                    .push(SchemaVersion {
                        hash: *hash,
                        sequence: *sequence,
                        generation: *g,
                        schema,
                    });
            }
            WalRecord::Delete { member, .. } => {
                if members.remove(member.as_str()).is_none() {
                    return Err(StorageError::corrupt(format!(
                        "delete of `{member}`, which does not exist at that point"
                    )));
                }
            }
        }
        generation = record.generation();
        last_view_hash = Some(record.view_hash());
    }

    // 3. Recompute the merged view — it is a deterministic LUB of the
    // recovered members, so it is derived, never trusted from disk.
    let (proper, report, compiled) = if members.is_empty() {
        let empty = ProperSchema::try_new(WeakSchema::empty()).expect("the empty schema is proper");
        (Arc::new(empty), Arc::new(CompletionReport::default()), None)
    } else {
        let remerge = || -> Result<_, schema_merge_core::MergeError> {
            let mut merger =
                Merger::new().schemas(members.values().map(|r| r.current().schema.as_ref()));
            if let Some(threads) = threads {
                merger = merger.threads(threads);
            }
            let (_, compiled) = merger.join()?.into_parts();
            let compiled = Arc::new(compiled.expect("the compiled engines keep the compiled join"));
            let candidate = merge_onto(&compiled, None, threads)?;
            Ok((candidate.proper, candidate.report, Some(candidate.compiled)))
        };
        remerge().map_err(|cause| {
            StorageError::corrupt(format!("recovered member set does not merge: {cause}"))
        })?
    };

    // 4. End-to-end verification against the last committed view hash.
    if let Some(expected) = last_view_hash {
        let actual = proper.content_hash();
        if actual != expected {
            return Err(StorageError::corrupt(format!(
                "recovered view hashes to {actual:#018x}, but the last committed \
                 record served {expected:#018x}"
            )));
        }
    }

    Ok(Recovered {
        generation,
        members,
        proper,
        report,
        compiled,
        snapshot_generation: snapshots.last().copied().unwrap_or(0),
        snapshot_bytes,
        wal_records,
        on_disk: blobs.keys().copied().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStore;

    fn schema(src: &str, label: &str, tgt: &str) -> WeakSchema {
        WeakSchema::builder()
            .arrow(src, label, tgt)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_without_store_is_in_memory() {
        let registry = Registry::builder().merge_threads(3).open().unwrap();
        assert!(!registry.stats().persistent);
        assert!(matches!(
            registry.snapshot(),
            Err(RegistryError::NotPersistent)
        ));
    }

    #[test]
    fn fresh_store_opens_empty() {
        let registry = Registry::builder()
            .store(MemoryStore::new())
            .open()
            .unwrap();
        assert!(registry.is_empty());
        let stats = registry.stats();
        assert!(stats.persistent);
        assert_eq!(stats.wal_records, 0);
        assert_eq!(stats.generation, 0);
    }

    #[test]
    fn durable_opens_record_fsync_and_recovery_latency() {
        let registry = Registry::builder()
            .store(MemoryStore::new())
            .open()
            .unwrap();
        assert_eq!(
            registry.recovery_latency().count,
            1,
            "every durable open is one recovery sample"
        );
        registry.put("a", schema("Part", "price", "money")).unwrap();
        registry.put("b", schema("Order", "item", "Part")).unwrap();
        assert_eq!(
            registry.fsync_latency().count,
            2,
            "one durability wait per commit"
        );
        assert_eq!(registry.commit_latency().count, 2);
    }

    #[test]
    fn commits_are_logged_and_deduped_by_content() {
        let registry = Registry::builder()
            .store(MemoryStore::new())
            .snapshot_every(0)
            .open()
            .unwrap();
        let g = schema("Part", "price", "money");
        registry.put("a", g.clone()).unwrap();
        let after_first = registry.stats().wal_bytes;
        // Same content under another member: a by-reference record, so
        // the log grows by far less than the first (body-carrying) one.
        registry.put("b", g).unwrap();
        let stats = registry.stats();
        assert_eq!(stats.wal_records, 2);
        let second_growth = stats.wal_bytes - after_first;
        assert!(
            second_growth < after_first / 2,
            "by-reference record grew the log by {second_growth} B \
             (first record: {after_first} B)"
        );
    }
}
