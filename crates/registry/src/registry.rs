//! The registry: concurrent versioned members and the incremental merge
//! engine.
//!
//! ## Concurrency
//!
//! The mutable state (members, generation, merged view) lives behind one
//! `RwLock`; the join cache behind its own `Mutex` (the two are never
//! held at once). Reads — [`Registry::merged`], [`Registry::get`],
//! [`Registry::stats`], [`Registry::query`] — take the read lock just
//! long enough to clone an `Arc`. Writers are *optimistic*: they
//! snapshot under the read lock, compute the candidate merged view with
//! no lock held, then take the write lock only to validate the
//! generation and commit. A writer that lost the race recomputes from a
//! fresh snapshot — every retry means another writer committed, so the
//! system as a whole always makes progress and the expensive merge work
//! never blocks readers.
//!
//! ## Incrementality
//!
//! The merge is a least upper bound, so for any member `k`,
//! `⊔ᵢ Gᵢ = (⊔ᵢ≠ₖ Gᵢ) ⊔ Gₖ` — the join of everything else is a
//! *reusable intermediate*. Joins are not invertible, so the engine
//! cannot subtract `k`'s old contribution from the cached total;
//! instead it remembers the joins it has computed — compiled, so the
//! interner survives across generations — keyed by the exact
//! member-version set. Every re-merge is built as a
//! [`schema_merge_core::merger::MergePlan`]: the cached compiled join of
//! the unchanged members is handed to
//! [`Merger::onto_base`](schema_merge_core::Merger::onto_base), so each
//! publish of `k` interns only the changed member and completes straight
//! off the compiled join (materializing the symbolic schema exactly
//! once, for the committed view). When no cached join matches, the
//! engine falls back to joining every unchanged member from scratch (a
//! plain batch `Merger` execution) and seeds the cache so the next
//! publish is incremental. Either way the committed view is **equal** to
//! the one-shot merge of the current members — associativity is not an
//! optimization that changes answers.
//!
//! ## Durability
//!
//! A registry opened with a store ([`crate::RegistryBuilder::data_dir`]
//! or [`crate::RegistryBuilder::store`]) writes every commit to an
//! append-only WAL *before* it becomes visible: inside the commit
//! critical section, after the generation race is won but before the
//! shared state mutates, the put/delete record is framed, appended and
//! fsync'd ([`crate::storage`]). A commit that cannot be made durable is
//! returned as [`RegistryError::Storage`] with the registry untouched,
//! so the in-memory state never runs ahead of the log — crash anywhere
//! and recovery replays exactly the acknowledged sequence. Every
//! `snapshot_every` records the registry compacts: it snapshots the full
//! member state (schema bodies deduplicated by content hash) and
//! truncates the log.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use schema_merge_core::{
    Class, CompiledSchema, CompletionReport, MergeError, Merger, ProperSchema, WeakSchema,
};
use schema_merge_instance::PathQuery;
use schema_merge_telemetry::{self as telemetry, Histogram, HistogramSnapshot};

use crate::cache::{fingerprint, JoinCache};
use crate::config::RegistryBuilder;
use crate::error::RegistryError;
use crate::resilience::{Health, RetryPolicy};
use crate::stats::RegistryStats;
use crate::storage::snapshot::{SnapshotState, VersionMeta};
use crate::storage::wal::WalRecord;
use crate::storage::{snapshot, wal, StorageError, Store};
use crate::version::{MemberInfo, MemberRecord, SchemaVersion};

/// How a commit's merged view was computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// The content hash matched the current version: nothing recomputed.
    Noop,
    /// A cached join of the unchanged members was reused; only the final
    /// two-way join and the completion ran.
    Incremental,
    /// No cached join applied; every unchanged member was re-joined.
    Full,
}

impl MergeStrategy {
    /// The lower-case wire/report name.
    pub fn as_str(self) -> &'static str {
        match self {
            MergeStrategy::Noop => "noop",
            MergeStrategy::Incremental => "incremental",
            MergeStrategy::Full => "full",
        }
    }
}

/// The result of a successful [`Registry::put`].
#[derive(Debug, Clone)]
pub struct PutOutcome {
    /// Content hash of the published schema.
    pub hash: u64,
    /// The version's sequence number within the member (unchanged for a
    /// no-op republish).
    pub sequence: u32,
    /// Registry generation after the operation (unchanged for a no-op).
    pub generation: u64,
    /// Which engine path produced the new merged view.
    pub strategy: MergeStrategy,
}

/// The result of a successful [`Registry::delete`].
#[derive(Debug, Clone)]
pub struct DeleteOutcome {
    /// Registry generation after the delete.
    pub generation: u64,
    /// Members remaining.
    pub remaining: usize,
    /// Which engine path produced the new merged view.
    pub strategy: MergeStrategy,
}

/// A generation-stamped handle on the merged view. Everything is
/// `Arc`-shared — taking a view never copies a schema, and the registry
/// moving on to later generations never invalidates it.
///
/// The pre-completion weak join is not materialized symbolically — it
/// lives compiled in the join cache, where the next incremental publish
/// reuses it; the canonical merged schema (and its weak form, via
/// [`ProperSchema::as_weak`]) is what clients consume.
#[derive(Debug, Clone)]
pub struct MergedView {
    /// The generation whose commit produced this view.
    pub generation: u64,
    /// The completed merge — the canonical merged schema served to
    /// clients.
    pub proper: Arc<ProperSchema>,
    /// Implicit-class provenance from the completion.
    pub report: Arc<CompletionReport>,
}

impl MergedView {
    /// Canonical content hash of the merged proper schema.
    pub fn hash(&self) -> u64 {
        self.proper.content_hash()
    }
}

/// A coherent snapshot of the registry's pre-completion compiled join —
/// what [`Registry::compiled_join`] hands to the federation layer. The
/// member list, fingerprint and join all describe the *same* member-set
/// (captured under one lock acquisition), so a supergraph compose can
/// detect deltas by fingerprint and attribute provenance by member
/// without racing concurrent publishes.
#[derive(Clone)]
pub struct RegistryJoin {
    /// The registry generation the join reflects.
    pub generation: u64,
    /// [`crate::cache::fingerprint`] over the `(member, content-hash)`
    /// pairs of `members` — the join's set identity.
    pub fingerprint: u64,
    /// Every member's current version at the snapshot, sorted by name.
    pub members: Vec<(String, SchemaVersion)>,
    /// The compiled weak join of all member schemas (no implicit
    /// classes — completion has not run).
    pub join: Arc<CompiledSchema>,
}

/// The computed pieces of a candidate view, pre-`Arc`ed so commit is
/// pointer shuffling only. The compiled join rides along to seed the
/// cache: it is the interner the *next* incremental publish will reuse.
pub(crate) struct Candidate {
    pub(crate) compiled: Arc<CompiledSchema>,
    pub(crate) proper: Arc<ProperSchema>,
    pub(crate) report: Arc<CompletionReport>,
}

pub(crate) struct Shared {
    pub(crate) generation: u64,
    pub(crate) members: BTreeMap<String, MemberRecord>,
    pub(crate) proper: Arc<ProperSchema>,
    pub(crate) report: Arc<CompletionReport>,
}

/// The registry's persistence arm: the pluggable store plus the
/// bookkeeping that makes WAL dedup and compaction cadence work. Locked
/// only while the commit (shared-state) lock is held by the same caller
/// or while no shared lock is needed at all, so the lock order
/// shared → persistence is global and deadlock-free.
pub(crate) struct Persistence {
    pub(crate) store: Box<dyn Store>,
    /// Auto-snapshot after this many WAL records (0 = manual only).
    pub(crate) snapshot_every: u64,
    /// Records in the log since the last compaction.
    pub(crate) wal_records: u64,
    pub(crate) records_since_snapshot: u64,
    /// Generation of the newest snapshot object (0 = none).
    pub(crate) snapshot_generation: u64,
    pub(crate) snapshot_bytes: u64,
    pub(crate) snapshots_written: u64,
    /// Content hashes whose schema bodies are currently recoverable from
    /// the store (snapshot blob table ∪ bodies carried in the live log).
    /// A put whose hash is present appends a by-reference record — the
    /// WAL-level content-hash dedup.
    pub(crate) on_disk: HashSet<u64>,
    /// Pre-append log length of a failed append that may have left a
    /// torn partial frame behind (`None` = log tail is clean). A retry
    /// must truncate back here first or the log is unrecoverable past
    /// the garbage. Only tracked when a retry policy is active — the
    /// fail-fast path keeps its zero-overhead shape and leaves torn
    /// tails to boot-time recovery, as before.
    pub(crate) torn_at: Option<u64>,
}

impl Persistence {
    /// Frames, appends and fsyncs one record. On success the record is
    /// durable; only then may the caller make the commit visible. The
    /// store call — write plus fsync, per the [`Store::append`]
    /// contract — is timed into `fsync`, the registry's durability-wait
    /// histogram.
    fn append(
        &mut self,
        record: &WalRecord,
        fsync: &Histogram,
        track_torn: bool,
    ) -> Result<(), StorageError> {
        let frame = wal::encode_frame(record);
        let base = if track_torn {
            self.store.log_bytes().ok()
        } else {
            None
        };
        let mut span = telemetry::span("wal-append");
        span.attr_usize("bytes", frame.len());
        let started = Instant::now();
        if let Err(err) = self.store.append(&frame) {
            self.torn_at = base;
            return Err(err);
        }
        fsync.record(started.elapsed());
        drop(span);
        self.wal_records += 1;
        self.records_since_snapshot += 1;
        Ok(())
    }

    /// Truncates away the partial frame a failed append may have left,
    /// restoring the log to its last-known-good length.
    fn repair_torn(&mut self) -> Result<(), StorageError> {
        if let Some(base) = self.torn_at {
            self.store.truncate_log(base)?;
            self.torn_at = None;
        }
        Ok(())
    }

    /// Writes a snapshot of `members` at `generation`, truncates the
    /// log, and drops superseded snapshot objects. The caller must hold
    /// the shared lock (read or write) so no commit can interleave
    /// between the state capture and the log truncation.
    fn write_snapshot(
        &mut self,
        members: &BTreeMap<String, MemberRecord>,
        generation: u64,
        view_hash: u64,
    ) -> Result<u64, StorageError> {
        let mut span = telemetry::span("snapshot");
        span.attr("generation", generation);
        let mut state = SnapshotState {
            generation,
            view_hash,
            ..SnapshotState::default()
        };
        for (name, record) in members {
            let mut versions = Vec::with_capacity(record.versions.len());
            for v in &record.versions {
                state
                    .blobs
                    .entry(v.hash)
                    .or_insert_with(|| Arc::clone(&v.schema));
                versions.push(VersionMeta {
                    hash: v.hash,
                    sequence: v.sequence,
                    generation: v.generation,
                });
            }
            state.members.insert(name.clone(), versions);
        }
        let image = snapshot::encode(&state);
        span.attr_usize("bytes", image.len());
        self.store.write_snapshot(generation, &image)?;
        // The snapshot holds everything: the log is now redundant, and
        // older snapshot objects are superseded.
        self.store.truncate_log(0)?;
        for old in self.store.list_snapshots()? {
            if old != generation {
                self.store.remove_snapshot(old)?;
            }
        }
        self.snapshot_generation = generation;
        self.snapshot_bytes = image.len() as u64;
        self.snapshots_written += 1;
        self.wal_records = 0;
        self.records_since_snapshot = 0;
        self.on_disk = state.blobs.keys().copied().collect();
        Ok(generation)
    }
}

/// The registry's resilience state: the opt-in retry policy plus the
/// degraded-mode flag and its counters. With no policy configured
/// (`policy: None`, the default) the registry is fail-fast and never
/// degrades — exactly the pre-resilience behavior.
pub(crate) struct Resilience {
    pub(crate) policy: Option<RetryPolicy>,
    degraded: AtomicBool,
    last_error: Mutex<Option<String>>,
    storage_retries: AtomicU64,
    degrade_events: AtomicU64,
    heal_events: AtomicU64,
}

impl Resilience {
    pub(crate) fn new(policy: Option<RetryPolicy>) -> Self {
        Resilience {
            policy,
            degraded: AtomicBool::new(false),
            last_error: Mutex::new(None),
            storage_retries: AtomicU64::new(0),
            degrade_events: AtomicU64::new(0),
            heal_events: AtomicU64::new(0),
        }
    }

    fn note_error(&self, err: &StorageError) {
        *self.last_error.lock().expect("resilience lock") = Some(err.to_string());
    }
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience::new(None)
    }
}

#[derive(Default)]
pub(crate) struct Counters {
    incremental: AtomicU64,
    full: AtomicU64,
    noop: AtomicU64,
    rejected: AtomicU64,
    retries: AtomicU64,
    requests: AtomicU64,
}

/// The registry's always-on latency telemetry: lock-free log₂ histograms
/// ([`Histogram`]) recorded on every commit regardless of span
/// enablement — cheap enough to never gate — plus the instance epoch
/// that anchors uptime.
pub(crate) struct RegistryMetrics {
    /// When this registry instance was opened (new or recovered).
    pub(crate) started_at: Instant,
    /// End-to-end latency of successful generation-spending commits
    /// (put/delete, noops excluded), snapshot-to-visible.
    pub(crate) commit_latency: Histogram,
    /// Durability wait per commit: the WAL append + fsync store call.
    pub(crate) fsync_latency: Histogram,
    /// Boot-time recovery (snapshot load + log replay + re-merge +
    /// verify); one sample per durable open.
    pub(crate) recovery_latency: Histogram,
}

impl Default for RegistryMetrics {
    fn default() -> Self {
        RegistryMetrics {
            started_at: Instant::now(),
            commit_latency: Histogram::new(),
            fsync_latency: Histogram::new(),
            recovery_latency: Histogram::new(),
        }
    }
}

/// The concurrent schema registry. See the [module docs](self) for the
/// locking, incrementality and durability story.
pub struct Registry {
    pub(crate) shared: RwLock<Shared>,
    pub(crate) cache: Mutex<JoinCache>,
    pub(crate) counters: Counters,
    /// Worker budget for the merge engine (`None` = the merger's
    /// defaults: sequential below the parallel work threshold, the
    /// machine's parallelism above it).
    pub(crate) merge_threads: Option<usize>,
    /// The durability arm; `None` for a purely in-memory registry.
    pub(crate) persistence: Option<Mutex<Persistence>>,
    /// Latency histograms and the uptime epoch.
    pub(crate) metrics: RegistryMetrics,
    /// Retry policy and degraded-mode state.
    pub(crate) resilience: Resilience,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// A writer's snapshot: the generation it read plus the unchanged
/// members it will merge against.
struct Snapshot {
    generation: u64,
    rest: Vec<(String, u64, Arc<WeakSchema>)>,
}

impl Snapshot {
    fn fingerprint(&self) -> u64 {
        fingerprint(self.rest.iter().map(|(n, h, _)| (n.as_str(), *h)))
    }
}

impl Registry {
    /// An empty registry: generation 0, the merge of nothing (the empty
    /// proper schema) as its view.
    pub fn new() -> Self {
        let empty = ProperSchema::try_new(WeakSchema::empty()).expect("the empty schema is proper");
        Registry {
            shared: RwLock::new(Shared {
                generation: 0,
                members: BTreeMap::new(),
                proper: Arc::new(empty),
                report: Arc::new(CompletionReport::default()),
            }),
            cache: Mutex::new(JoinCache::default()),
            counters: Counters::default(),
            merge_threads: None,
            persistence: None,
            metrics: RegistryMetrics::default(),
            resilience: Resilience::default(),
        }
    }

    /// Starts configuring a registry: merge-thread budget, data
    /// directory (or custom [`Store`]) and snapshot cadence, ending in
    /// [`RegistryBuilder::open`]. `Registry::builder().open()` is
    /// equivalent to [`Registry::new`].
    pub fn builder() -> RegistryBuilder {
        RegistryBuilder::new()
    }

    /// Publishes `schema` as the next version of member `name`.
    ///
    /// Content-addressed: if the canonical content hash equals the
    /// member's current version, nothing is recomputed and no generation
    /// is spent ([`MergeStrategy::Noop`]). Otherwise the merged view is
    /// recomputed — incrementally when a cached join of the unchanged
    /// members applies — and committed together with the new immutable
    /// version.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Rejected`] when the published schema is
    /// incompatible with the other members (specialization cycle across
    /// the member set). The registry is left exactly as it was.
    pub fn put(
        &self,
        name: impl Into<String>,
        schema: WeakSchema,
    ) -> Result<PutOutcome, RegistryError> {
        self.check_writable()?;
        let name = name.into();
        let schema = Arc::new(schema);
        let hash = schema.content_hash();
        let commit_started = Instant::now();
        let mut commit_span = telemetry::span("commit");
        commit_span.attr("content_hash", hash);
        loop {
            let snapshot = {
                let shared = self.shared.read().expect("registry lock");
                if let Some(record) = shared.members.get(&name) {
                    let current = record.current();
                    if current.hash == hash {
                        self.counters.noop.fetch_add(1, Ordering::Relaxed);
                        return Ok(PutOutcome {
                            hash,
                            sequence: current.sequence,
                            generation: shared.generation,
                            strategy: MergeStrategy::Noop,
                        });
                    }
                }
                self.snapshot_excluding(&shared, &name)
            };

            let (rest, strategy) = {
                let mut plan_span = telemetry::span("plan");
                plan_span.attr_usize("rest_members", snapshot.rest.len());
                match self.rest_join(&snapshot) {
                    Ok(pair) => {
                        plan_span.attr("cached", u64::from(pair.1 == MergeStrategy::Incremental));
                        pair
                    }
                    Err(cause) => return Err(self.reject(name, cause)),
                }
            };
            // The incremental step proper, as a merge plan: the cached
            // compiled join is the `onto_base` interner — only the
            // changed member is walked symbolically — and the completion
            // runs straight off the compiled join, materializing the
            // symbolic schema once.
            let candidate = {
                let mut exec_span = telemetry::span("execute");
                match merge_onto(&rest, Some(schema.as_ref()), self.merge_threads) {
                    Ok(candidate) => {
                        exec_span.attr_usize("classes", candidate.proper.num_classes());
                        candidate
                    }
                    Err(cause) => return Err(self.reject(name, cause)),
                }
            };

            let mut shared = self.shared.write().expect("registry lock");
            if shared.generation != snapshot.generation {
                drop(shared);
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let generation = shared.generation + 1;
            let sequence = shared
                .members
                .get(&name)
                .map_or(0, |r| r.versions.len() as u32)
                + 1;
            // Durability point: the record is fsync'd before any shared
            // state mutates, so a storage failure rejects the commit with
            // the registry untouched, and a crash after this line replays
            // to exactly this state.
            if let Some(persistence) = &self.persistence {
                let mut p = persistence.lock().expect("persistence lock");
                let carry = !p.on_disk.contains(&hash);
                self.durable_append(
                    &mut p,
                    &WalRecord::Put {
                        generation,
                        member: name.clone(),
                        hash,
                        sequence,
                        view_hash: candidate.proper.content_hash(),
                        schema: carry.then(|| Arc::clone(&schema)),
                    },
                )?;
                p.on_disk.insert(hash);
            }
            shared.generation = generation;
            let record = shared
                .members
                .entry(name.clone())
                .or_insert_with(|| MemberRecord {
                    versions: Vec::new(),
                });
            record.versions.push(SchemaVersion {
                hash,
                sequence,
                generation,
                schema: Arc::clone(&schema),
            });
            let full_fp = fingerprint(
                shared
                    .members
                    .iter()
                    .map(|(n, r)| (n.as_str(), r.current().hash)),
            );
            let total = Arc::clone(&candidate.compiled);
            shared.proper = candidate.proper;
            shared.report = candidate.report;
            self.auto_snapshot(&shared);
            drop(shared);

            self.seed_cache(snapshot.fingerprint(), rest, full_fp, total);
            self.count_commit(strategy);
            commit_span.attr("generation", generation);
            self.metrics.commit_latency.record(commit_started.elapsed());
            return Ok(PutOutcome {
                hash,
                sequence,
                generation,
                strategy,
            });
        }
    }

    /// Removes member `name` and re-merges the remainder (incrementally
    /// when the remainder's join is cached — it is whenever `name` was
    /// the most recently churned member).
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownMember`] when no such member exists.
    pub fn delete(&self, name: &str) -> Result<DeleteOutcome, RegistryError> {
        self.check_writable()?;
        let commit_started = Instant::now();
        let mut commit_span = telemetry::span("commit");
        loop {
            let snapshot = {
                let shared = self.shared.read().expect("registry lock");
                if !shared.members.contains_key(name) {
                    return Err(RegistryError::UnknownMember(name.to_string()));
                }
                self.snapshot_excluding(&shared, name)
            };

            // Deleting from a compatible set cannot make it incompatible,
            // but the error path is kept honest rather than unwrapped.
            let (rest, strategy) = {
                let mut plan_span = telemetry::span("plan");
                plan_span.attr_usize("rest_members", snapshot.rest.len());
                match self.rest_join(&snapshot) {
                    Ok(pair) => {
                        plan_span.attr("cached", u64::from(pair.1 == MergeStrategy::Incremental));
                        pair
                    }
                    Err(cause) => return Err(self.reject(name.to_string(), cause)),
                }
            };
            // The remainder's join IS the new total — the merge plan has
            // no extras, so the merger skips the join pass and only the
            // completion runs (against the cached compiled form).
            let candidate = {
                let mut exec_span = telemetry::span("execute");
                match merge_onto(&rest, None, self.merge_threads) {
                    Ok(candidate) => {
                        exec_span.attr_usize("classes", candidate.proper.num_classes());
                        candidate
                    }
                    Err(cause) => return Err(self.reject(name.to_string(), cause)),
                }
            };

            let mut shared = self.shared.write().expect("registry lock");
            if shared.generation != snapshot.generation {
                drop(shared);
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let generation = shared.generation + 1;
            // Same durability point as `put`: fsync first, mutate after.
            if let Some(persistence) = &self.persistence {
                let mut p = persistence.lock().expect("persistence lock");
                self.durable_append(
                    &mut p,
                    &WalRecord::Delete {
                        generation,
                        member: name.to_string(),
                        view_hash: candidate.proper.content_hash(),
                    },
                )?;
            }
            shared.generation = generation;
            shared.members.remove(name);
            let remaining = shared.members.len();
            let full_fp = fingerprint(
                shared
                    .members
                    .iter()
                    .map(|(n, r)| (n.as_str(), r.current().hash)),
            );
            let total = Arc::clone(&candidate.compiled);
            shared.proper = candidate.proper;
            shared.report = candidate.report;
            self.auto_snapshot(&shared);
            drop(shared);

            self.seed_cache(snapshot.fingerprint(), rest, full_fp, total);
            self.count_commit(strategy);
            commit_span.attr("generation", generation);
            self.metrics.commit_latency.record(commit_started.elapsed());
            return Ok(DeleteOutcome {
                generation,
                remaining,
                strategy,
            });
        }
    }

    /// The current merged view (three `Arc` clones; never blocks writers
    /// for longer than that).
    pub fn merged(&self) -> MergedView {
        let shared = self.shared.read().expect("registry lock");
        MergedView {
            generation: shared.generation,
            proper: Arc::clone(&shared.proper),
            report: Arc::clone(&shared.report),
        }
    }

    /// The compiled pre-completion join of every current member version —
    /// the registry's contribution to a federated supergraph compose
    /// (`crates/supergraph`). Probes the join cache with the full
    /// member-set fingerprint (the commit path seeds that entry on every
    /// generation, so steady-state calls are O(1) `Arc` clones) and
    /// computes — then seeds — the join on a miss. Returns the generation
    /// the join reflects alongside the join itself.
    ///
    /// This is the *join*, not the merged view: completion has not run,
    /// no implicit classes are present — exactly the representation the
    /// composition law `⊔ᵢⱼGᵢⱼ = ⊔ᵢ(⊔ⱼGᵢⱼ)` needs to make a supergraph
    /// compose equal to the one-shot merge of every member everywhere.
    ///
    /// # Errors
    ///
    /// [`MergeError::Incompatible`] cannot actually occur for a registry
    /// that accepted all its members (every commit validated the total
    /// join), but the signature carries it for the cold-cache recompute
    /// path.
    pub fn compiled_join(&self) -> Result<RegistryJoin, MergeError> {
        let (generation, members) = {
            let shared = self.shared.read().expect("registry lock");
            let members: Vec<(String, SchemaVersion)> = shared
                .members
                .iter()
                .map(|(n, r)| (n.clone(), r.current().clone()))
                .collect();
            (shared.generation, members)
        };
        let fp = fingerprint(members.iter().map(|(n, v)| (n.as_str(), v.hash)));
        if let Some(join) = self.cache.lock().expect("cache lock").probe(fp) {
            return Ok(RegistryJoin {
                generation,
                fingerprint: fp,
                members,
                join,
            });
        }
        let mut merger = Merger::new().schemas(members.iter().map(|(_, v)| v.schema.as_ref()));
        if let Some(threads) = self.merge_threads {
            merger = merger.threads(threads);
        }
        let (_, compiled) = merger.join()?.into_parts();
        let join = Arc::new(compiled.expect("the compiled engines keep the compiled join"));
        self.cache
            .lock()
            .expect("cache lock")
            .insert(fp, Arc::clone(&join));
        Ok(RegistryJoin {
            generation,
            fingerprint: fp,
            members,
            join,
        })
    }

    /// A coherent snapshot of every member's current version (one lock
    /// acquisition), sorted by name — the supergraph's provenance pass
    /// walks this to attribute composed classes to
    /// `registry/member@vN` origins.
    pub fn current_members(&self) -> Vec<(String, SchemaVersion)> {
        let shared = self.shared.read().expect("registry lock");
        shared
            .members
            .iter()
            .map(|(name, record)| (name.clone(), record.current().clone()))
            .collect()
    }

    /// The current version of member `name`.
    pub fn get(&self, name: &str) -> Option<SchemaVersion> {
        let shared = self.shared.read().expect("registry lock");
        shared.members.get(name).map(|r| r.current().clone())
    }

    /// The full immutable version history of member `name`, oldest
    /// first.
    pub fn history(&self, name: &str) -> Option<Vec<SchemaVersion>> {
        let shared = self.shared.read().expect("registry lock");
        shared.members.get(name).map(|r| r.versions.clone())
    }

    /// All members with their current-version identity, sorted by name.
    pub fn list(&self) -> Vec<MemberInfo> {
        let shared = self.shared.read().expect("registry lock");
        shared
            .members
            .iter()
            .map(|(name, record)| {
                let current = record.current();
                MemberInfo {
                    name: name.clone(),
                    hash: current.hash,
                    sequence: current.sequence,
                    versions: record.versions.len(),
                    num_classes: current.schema.num_classes(),
                    num_arrows: current.schema.num_arrows(),
                }
            })
            .collect()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.shared.read().expect("registry lock").members.len()
    }

    /// Whether the registry has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates a schema-space path query against the merged view:
    /// which classes does the path reach in the canonical merged schema
    /// ([`PathQuery::eval_classes`]).
    pub fn query(&self, query: &PathQuery) -> BTreeSet<Class> {
        let view = self.merged();
        query.eval_classes(view.proper.as_weak())
    }

    /// Forces a snapshot and log compaction now, regardless of cadence:
    /// the full member state is written as one atomically-installed
    /// image (schema bodies deduplicated by content hash), the WAL is
    /// truncated, and superseded snapshot objects are removed. Returns
    /// the generation the snapshot captured.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotPersistent`] for a registry opened without a
    /// data dir or store; [`RegistryError::Storage`] when the store
    /// fails — the previous snapshot and the log are still intact then
    /// (the new image is installed before anything is discarded), so
    /// nothing committed is ever lost.
    pub fn snapshot(&self) -> Result<u64, RegistryError> {
        self.check_writable()?;
        let persistence = self
            .persistence
            .as_ref()
            .ok_or(RegistryError::NotPersistent)?;
        let shared = self.shared.read().expect("registry lock");
        let mut p = persistence.lock().expect("persistence lock");
        let view_hash = shared.proper.content_hash();
        Ok(p.write_snapshot(&shared.members, shared.generation, view_hash)?)
    }

    /// A statistics snapshot: state sizes and merged-view shape are
    /// coherent (read under one lock acquisition); the engine counters
    /// are monotone and read atomically alongside.
    pub fn stats(&self) -> RegistryStats {
        let (generation, members, total_versions, proper, report) = {
            let shared = self.shared.read().expect("registry lock");
            (
                shared.generation,
                shared.members.len(),
                shared.members.values().map(|r| r.versions.len()).sum(),
                Arc::clone(&shared.proper),
                Arc::clone(&shared.report),
            )
        };
        let (cache_entries, cache_hits, cache_misses, cache_evictions) = {
            let cache = self.cache.lock().expect("cache lock");
            (cache.len(), cache.hits(), cache.misses(), cache.evictions())
        };
        let durability = self.persistence.as_ref().map(|persistence| {
            let p = persistence.lock().expect("persistence lock");
            (
                p.wal_records,
                p.store.log_bytes().unwrap_or(0),
                p.snapshot_generation,
                p.snapshot_bytes,
                p.snapshots_written,
            )
        });
        let weak = proper.as_weak();
        RegistryStats {
            generation,
            members,
            total_versions,
            merged_classes: weak.num_classes(),
            merged_arrows: weak.num_arrows(),
            merged_specializations: weak.num_specializations(),
            implicit_classes: report.num_implicit(),
            merged_hash: proper.content_hash(),
            incremental_merges: self.counters.incremental.load(Ordering::Relaxed),
            full_merges: self.counters.full.load(Ordering::Relaxed),
            noop_puts: self.counters.noop.load(Ordering::Relaxed),
            rejected_puts: self.counters.rejected.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_entries,
            commit_retries: self.counters.retries.load(Ordering::Relaxed),
            uptime_secs: self.uptime_secs(),
            requests_served: self.counters.requests.load(Ordering::Relaxed),
            persistent: durability.is_some(),
            wal_records: durability.map_or(0, |d| d.0),
            wal_bytes: durability.map_or(0, |d| d.1),
            snapshot_generation: durability.map_or(0, |d| d.2),
            snapshot_bytes: durability.map_or(0, |d| d.3),
            snapshots_written: durability.map_or(0, |d| d.4),
            degraded: self.resilience.degraded.load(Ordering::SeqCst),
            storage_retries: self.resilience.storage_retries.load(Ordering::Relaxed),
        }
    }

    // ---- resilience ------------------------------------------------------

    /// A snapshot of the registry's resilience state — what the `HEALTH`
    /// protocol verb serves.
    pub fn health(&self) -> Health {
        let fault_counters = self
            .persistence
            .as_ref()
            .and_then(|p| p.lock().expect("persistence lock").store.fault_counters());
        Health {
            degraded: self.resilience.degraded.load(Ordering::SeqCst),
            last_storage_error: self
                .resilience
                .last_error
                .lock()
                .expect("resilience lock")
                .clone(),
            storage_retries: self.resilience.storage_retries.load(Ordering::Relaxed),
            degrade_events: self.resilience.degrade_events.load(Ordering::Relaxed),
            heal_events: self.resilience.heal_events.load(Ordering::Relaxed),
            fault_counters,
        }
    }

    /// Whether the registry is in degraded read-only mode.
    pub fn is_degraded(&self) -> bool {
        self.resilience.degraded.load(Ordering::SeqCst)
    }

    /// Probes the store and heals a degraded registry back to writable.
    /// Returns `true` when the registry is writable after the call.
    ///
    /// The probe repairs any torn log tail left by the failed append
    /// and asks the store for its log length; if both succeed the
    /// degraded flag clears. Nothing is replayed: the commit whose
    /// failure triggered degradation was never acknowledged, so the
    /// in-memory view and the WAL never diverged. The `smerge serve`
    /// daemon calls this from a background thread; embedders can call
    /// it on whatever cadence suits them.
    pub fn probe_now(&self) -> bool {
        if !self.resilience.degraded.load(Ordering::SeqCst) {
            return true;
        }
        let Some(persistence) = &self.persistence else {
            // Degradation without a store cannot arise, but heal anyway.
            self.heal();
            return true;
        };
        let mut p = persistence.lock().expect("persistence lock");
        let probe = p
            .repair_torn()
            .and_then(|()| p.store.log_bytes().map(|_| ()));
        match probe {
            Ok(()) => {
                drop(p);
                self.heal();
                true
            }
            Err(err) => {
                self.resilience.note_error(&err);
                false
            }
        }
    }

    /// Rejects writes while degraded, with the stable `E-DEGRADED` code.
    fn check_writable(&self) -> Result<(), RegistryError> {
        if self.resilience.degraded.load(Ordering::SeqCst) {
            let detail = self
                .resilience
                .last_error
                .lock()
                .expect("resilience lock")
                .clone()
                .unwrap_or_else(|| "storage unavailable".to_string());
            return Err(RegistryError::Degraded { detail });
        }
        Ok(())
    }

    /// Appends one commit record, retrying transient storage failures
    /// under the configured policy (repairing any torn partial frame
    /// before each attempt). With no policy this is the fail-fast
    /// append of old. Exhausting the budget — or a permanent failure —
    /// flips the registry into degraded read-only mode; the exhausting
    /// error itself surfaces as [`RegistryError::Storage`] since this
    /// commit was never acknowledged.
    fn durable_append(&self, p: &mut Persistence, record: &WalRecord) -> Result<(), RegistryError> {
        let Some(policy) = &self.resilience.policy else {
            return Ok(p.append(record, &self.metrics.fsync_latency, false)?);
        };
        let mut attempt: u32 = 0;
        loop {
            let result = p
                .repair_torn()
                .and_then(|()| p.append(record, &self.metrics.fsync_latency, true));
            match result {
                Ok(()) => return Ok(()),
                Err(err) => {
                    self.resilience.note_error(&err);
                    if err.is_transient() && attempt < policy.max_retries() {
                        attempt += 1;
                        self.resilience
                            .storage_retries
                            .fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(policy.backoff(attempt, record.generation()));
                        continue;
                    }
                    self.enter_degraded();
                    return Err(RegistryError::Storage(err));
                }
            }
        }
    }

    fn enter_degraded(&self) {
        if !self.resilience.degraded.swap(true, Ordering::SeqCst) {
            self.resilience
                .degrade_events
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn heal(&self) {
        if self.resilience.degraded.swap(false, Ordering::SeqCst) {
            self.resilience.heal_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ---- telemetry -------------------------------------------------------

    /// Notes one served request. The registry never counts for itself —
    /// its front end (the `smerge serve` worker loop) calls this once
    /// per protocol request, making [`RegistryStats::requests_served`]
    /// a service-level counter rather than an engine one.
    pub fn note_request(&self) {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Whole seconds since this registry instance was opened.
    pub fn uptime_secs(&self) -> u64 {
        self.metrics.started_at.elapsed().as_secs()
    }

    /// Snapshot of the end-to-end commit latency histogram (successful
    /// generation-spending `put`/`delete` calls; noops excluded).
    pub fn commit_latency(&self) -> HistogramSnapshot {
        self.metrics.commit_latency.snapshot()
    }

    /// Snapshot of the per-commit durability wait (WAL append + fsync).
    /// Empty for an in-memory registry.
    pub fn fsync_latency(&self) -> HistogramSnapshot {
        self.metrics.fsync_latency.snapshot()
    }

    /// Snapshot of the boot-time recovery latency — one sample per
    /// durable open ([`crate::RegistryBuilder::open`]); empty for an
    /// in-memory registry.
    pub fn recovery_latency(&self) -> HistogramSnapshot {
        self.metrics.recovery_latency.snapshot()
    }

    // ---- engine internals ------------------------------------------------

    fn snapshot_excluding(&self, shared: &Shared, name: &str) -> Snapshot {
        Snapshot {
            generation: shared.generation,
            rest: shared
                .members
                .iter()
                .filter(|(n, _)| n.as_str() != name)
                .map(|(n, r)| {
                    let current = r.current();
                    (n.clone(), current.hash, Arc::clone(&current.schema))
                })
                .collect(),
        }
    }

    /// The compiled join of the snapshot's unchanged members: from the
    /// cache when their exact version set was joined before, otherwise
    /// computed from scratch (and later seeded by the commit). The
    /// from-scratch rebuild is the registry's widest merge — every
    /// unchanged member walked at once — so it is exactly the shape the
    /// parallel engine shards: the merger auto-selects it past the work
    /// threshold, and [`crate::RegistryBuilder::merge_threads`] fixes
    /// its budget.
    fn rest_join(
        &self,
        snapshot: &Snapshot,
    ) -> Result<(Arc<CompiledSchema>, MergeStrategy), MergeError> {
        let fp = snapshot.fingerprint();
        if let Some(join) = self.cache.lock().expect("cache lock").probe(fp) {
            return Ok((join, MergeStrategy::Incremental));
        }
        let mut merger = Merger::new().schemas(snapshot.rest.iter().map(|(_, _, s)| s.as_ref()));
        if let Some(threads) = self.merge_threads {
            merger = merger.threads(threads);
        }
        let joined = merger.join()?;
        let (_, compiled) = joined.into_parts();
        let compiled = compiled.expect("the compiled engines keep the compiled join");
        Ok((Arc::new(compiled), MergeStrategy::Full))
    }

    fn seed_cache(
        &self,
        rest_fp: u64,
        rest: Arc<CompiledSchema>,
        full_fp: u64,
        total: Arc<CompiledSchema>,
    ) {
        let mut cache = self.cache.lock().expect("cache lock");
        cache.insert(rest_fp, rest);
        cache.insert(full_fp, total);
    }

    fn count_commit(&self, strategy: MergeStrategy) {
        let counter = match strategy {
            MergeStrategy::Incremental => &self.counters.incremental,
            MergeStrategy::Full => &self.counters.full,
            MergeStrategy::Noop => return,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn reject(&self, member: String, cause: MergeError) -> RegistryError {
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
        RegistryError::Rejected { member, cause }
    }

    /// Compacts if the auto-snapshot cadence is due. Called with the
    /// write lock held, right after a commit mutated the shared state.
    /// Errors are swallowed: the commit is already durable in the log,
    /// and the snapshot will simply be retried at the next commit.
    fn auto_snapshot(&self, shared: &Shared) {
        let Some(persistence) = &self.persistence else {
            return;
        };
        let mut p = persistence.lock().expect("persistence lock");
        if p.snapshot_every > 0 && p.records_since_snapshot >= p.snapshot_every {
            let view_hash = shared.proper.content_hash();
            let _ = p.write_snapshot(&shared.members, shared.generation, view_hash);
        }
    }
}

/// Executes the incremental merge plan — `extra` joined onto the cached
/// compiled `rest` (or, on the delete path, no extra at all: the rest IS
/// the total and the merger skips the join pass) — into a pre-`Arc`ed
/// candidate view.
pub(crate) fn merge_onto(
    rest: &Arc<CompiledSchema>,
    extra: Option<&WeakSchema>,
    threads: Option<usize>,
) -> Result<Candidate, MergeError> {
    let mut merger = Merger::new().onto_base(rest);
    if let Some(extra) = extra {
        merger = merger.schema(extra);
    }
    if let Some(threads) = threads {
        merger = merger.threads(threads);
    }
    let report = merger.execute()?;
    let compiled = match report.compiled {
        Some(compiled) => Arc::new(compiled),
        // No extras joined: the caller's rest is already the total join.
        None => Arc::clone(rest),
    };
    Ok(Candidate {
        compiled,
        proper: Arc::new(report.proper),
        report: Arc::new(report.implicit),
    })
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Registry")
            .field("generation", &stats.generation)
            .field("members", &stats.members)
            .field("merged_classes", &stats.merged_classes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(src: &str, label: &str, tgt: &str) -> WeakSchema {
        WeakSchema::builder()
            .arrow(src, label, tgt)
            .build()
            .unwrap()
    }

    /// The key invariant: the registry's view equals the one-shot merge
    /// of its current members.
    fn assert_view_matches_oneshot(registry: &Registry) {
        let members = registry.list();
        let schemas: Vec<Arc<WeakSchema>> = members
            .iter()
            .map(|m| registry.get(&m.name).unwrap().schema)
            .collect();
        let oneshot = Merger::new()
            .schemas(schemas.iter().map(|s| s.as_ref()))
            .execute()
            .unwrap();
        let view = registry.merged();
        assert_eq!(view.proper.as_ref(), &oneshot.proper);
        assert_eq!(view.report.as_ref(), &oneshot.implicit);
    }

    #[test]
    fn empty_registry_serves_the_empty_merge() {
        let registry = Registry::new();
        let view = registry.merged();
        assert_eq!(view.generation, 0);
        assert_eq!(view.proper.num_classes(), 0);
        assert!(registry.is_empty());
        assert_view_matches_oneshot(&registry);
    }

    #[test]
    fn puts_accumulate_and_version() {
        let registry = Registry::new();
        let first = registry
            .put("inv", schema("Part", "price", "money"))
            .unwrap();
        assert_eq!((first.sequence, first.generation), (1, 1));
        let second = registry
            .put("orders", schema("Order", "item", "Part"))
            .unwrap();
        assert_eq!((second.sequence, second.generation), (1, 2));
        let third = registry.put("inv", schema("Part", "weight", "kg")).unwrap();
        assert_eq!((third.sequence, third.generation), (2, 3));

        assert_eq!(registry.len(), 2);
        assert_eq!(registry.history("inv").unwrap().len(), 2);
        let current = registry.get("inv").unwrap();
        assert_eq!(current.sequence, 2);
        assert!(current.schema.contains_class(&Class::named("kg")));
        assert_view_matches_oneshot(&registry);
    }

    #[test]
    fn republish_same_content_is_a_noop() {
        let registry = Registry::new();
        let g = schema("Part", "price", "money");
        let first = registry.put("inv", g.clone()).unwrap();
        let again = registry.put("inv", g).unwrap();
        assert_eq!(again.strategy, MergeStrategy::Noop);
        assert_eq!(again.generation, first.generation, "no generation spent");
        assert_eq!(again.sequence, first.sequence);
        assert_eq!(registry.history("inv").unwrap().len(), 1);
        assert_eq!(registry.stats().noop_puts, 1);
    }

    #[test]
    fn growth_is_incremental_and_churn_warms_up() {
        let registry = Registry::new();
        // Sequential growth: every put after the first finds the previous
        // total join in the cache.
        registry.put("a", schema("A", "x", "T")).unwrap();
        let b = registry.put("b", schema("B", "x", "T")).unwrap();
        let c = registry.put("c", schema("C", "x", "T")).unwrap();
        assert_eq!(b.strategy, MergeStrategy::Incremental);
        assert_eq!(c.strategy, MergeStrategy::Incremental);

        // First republish of `a` misses ({b,c} was never joined alone)…
        let cold = registry.put("a", schema("A", "y", "U")).unwrap();
        assert_eq!(cold.strategy, MergeStrategy::Full);
        // …and seeds the cache, so churning `a` is incremental from then on.
        let warm = registry.put("a", schema("A", "z", "V")).unwrap();
        assert_eq!(warm.strategy, MergeStrategy::Incremental);
        let stats = registry.stats();
        assert!(stats.incremental_merges >= 3);
        assert_view_matches_oneshot(&registry);
    }

    #[test]
    fn incompatible_publish_is_rejected_without_damage() {
        let registry = Registry::new();
        registry
            .put(
                "up",
                WeakSchema::builder().specialize("A", "B").build().unwrap(),
            )
            .unwrap();
        let before = registry.merged();
        let err = registry
            .put(
                "down",
                WeakSchema::builder().specialize("B", "A").build().unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, RegistryError::Rejected { ref member, .. } if member == "down"));
        let after = registry.merged();
        assert_eq!(after.generation, before.generation);
        assert_eq!(after.proper, before.proper);
        assert!(registry.get("down").is_none());
        assert_eq!(registry.stats().rejected_puts, 1);
        assert_view_matches_oneshot(&registry);
    }

    #[test]
    fn delete_removes_contribution() {
        let registry = Registry::new();
        registry.put("a", schema("A", "x", "T")).unwrap();
        registry.put("b", schema("B", "y", "U")).unwrap();
        let outcome = registry.delete("a").unwrap();
        assert_eq!(outcome.remaining, 1);
        let view = registry.merged();
        assert!(!view.proper.contains_class(&Class::named("A")));
        assert!(view.proper.contains_class(&Class::named("B")));
        assert_view_matches_oneshot(&registry);

        assert!(matches!(
            registry.delete("a"),
            Err(RegistryError::UnknownMember(_))
        ));
    }

    #[test]
    fn delete_after_publish_hits_the_cache() {
        let registry = Registry::new();
        registry.put("a", schema("A", "x", "T")).unwrap();
        registry.put("b", schema("B", "y", "U")).unwrap();
        // Publishing `b` cached the rest-join {a}; deleting `b` needs
        // exactly that set.
        let outcome = registry.delete("b").unwrap();
        assert_eq!(outcome.strategy, MergeStrategy::Incremental);
        assert_view_matches_oneshot(&registry);
    }

    #[test]
    fn implicit_classes_flow_through_the_view() {
        let registry = Registry::new();
        registry.put("one", schema("C", "a", "B1")).unwrap();
        registry.put("two", schema("C", "a", "B2")).unwrap();
        let view = registry.merged();
        assert_eq!(view.report.num_implicit(), 1);
        let implicit = Class::implicit([Class::named("B1"), Class::named("B2")]);
        assert!(view.proper.contains_class(&implicit));
        let stats = registry.stats();
        assert_eq!(stats.implicit_classes, 1);
        assert_eq!(stats.merged_hash, view.hash());
    }

    #[test]
    fn schema_space_queries_answer_from_the_merged_view() {
        let registry = Registry::new();
        registry
            .put("dogs", schema("Dog", "owner", "Person"))
            .unwrap();
        registry
            .put(
                "kinds",
                WeakSchema::builder()
                    .specialize("Guide-dog", "Dog")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let owners = registry.query(&PathQuery::extent("Dog").follow("owner"));
        assert_eq!(owners, [Class::named("Person")].into());
        let dogs = registry.query(&PathQuery::extent("Dog"));
        assert!(dogs.contains(&Class::named("Guide-dog")));
    }

    #[test]
    fn concurrent_writers_converge_to_the_oneshot_merge() {
        let registry = Arc::new(Registry::new());
        let threads = 8;
        let rounds = 6;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    for round in 0..rounds {
                        let name = format!("member-{t}");
                        let g = WeakSchema::builder()
                            .arrow(
                                format!("Shared{}", (t + round) % 3),
                                format!("attr-{t}-{round}"),
                                "T",
                            )
                            .build()
                            .unwrap();
                        registry.put(name, g).unwrap();
                        // Interleave reads to exercise the read path.
                        let _ = registry.merged();
                        let _ = registry.stats();
                    }
                });
            }
        });
        let stats = registry.stats();
        assert_eq!(registry.len(), threads);
        assert_eq!(
            stats.generation,
            stats.incremental_merges + stats.full_merges,
            "every commit spent exactly one generation"
        );
        assert_eq!(stats.generation as usize, threads * rounds);
        assert_view_matches_oneshot(&registry);
    }

    #[test]
    fn merge_threads_budget_never_changes_the_view() {
        for threads in [1, 2, 4] {
            let registry = Registry::builder().merge_threads(threads).open().unwrap();
            for i in 0..6 {
                registry
                    .put(
                        format!("m{i}"),
                        schema(&format!("C{}", i % 3), &format!("f{i}"), "T"),
                    )
                    .unwrap();
            }
            // Cold rebuild path: churn an old member (its rest-join was
            // never cached alone).
            registry.put("m0", schema("C0", "g", "U")).unwrap();
            registry.delete("m3").unwrap();
            assert_view_matches_oneshot(&registry);
        }
    }

    #[test]
    fn latency_histograms_and_request_counter_track_the_service() {
        let registry = Registry::new();
        registry.put("a", schema("A", "x", "T")).unwrap();
        registry.put("b", schema("B", "y", "U")).unwrap();
        // A noop republish spends no generation and records no commit.
        registry.put("a", schema("A", "x", "T")).unwrap();
        let commits = registry.commit_latency();
        assert_eq!(
            commits.count, 2,
            "one sample per generation-spending commit"
        );
        assert!(commits.sum_ns > 0);
        assert_eq!(
            registry.fsync_latency().count,
            0,
            "an in-memory registry never waits on a WAL"
        );
        assert_eq!(registry.recovery_latency().count, 0);

        assert_eq!(registry.stats().requests_served, 0);
        registry.note_request();
        registry.note_request();
        let stats = registry.stats();
        assert_eq!(stats.requests_served, 2);
        assert_eq!(stats.uptime_secs, registry.uptime_secs());
    }

    #[test]
    fn concurrent_same_member_races_serialize() {
        let registry = Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for round in 0..8 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    let g = schema("X", &format!("v{round}"), "T");
                    registry.put("contended", g).unwrap();
                });
            }
        });
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.history("contended").unwrap().len(), 8);
        assert_view_matches_oneshot(&registry);
    }
}
