//! Deprecated location of the in-memory registry.
//!
//! The registry engine historically lived in `registry::store`; it moved
//! to [`crate::registry`] when the `storage` subsystem claimed the
//! "store" name for the persistence trait
//! ([`crate::storage::Store`]). Every item is re-exported here so old
//! imports keep compiling, but new code should import from
//! [`crate::registry`] or the crate root.

pub use crate::registry::{DeleteOutcome, MergeStrategy, MergedView, PutOutcome, Registry};
