//! The join cache: weak joins of member-version *sets*, keyed by
//! fingerprint.
//!
//! Incremental re-merge needs the join of "everything except the member
//! being republished". Joins are not invertible — the old contribution
//! cannot be subtracted from the cached total — so instead the registry
//! remembers joins it has already computed, keyed by the exact set of
//! `(member, content-hash)` pairs that produced them. The two seeds per
//! commit (the rest-join used and the new total join) make the common
//! traffic shapes hit:
//!
//! * republish member `k` → the rest-set `{all} ∖ {k}` was seeded by the
//!   previous publish of `k` (or by the probe that missed), so every
//!   subsequent publish of `k` is incremental;
//! * publish a *new* member → the rest-set is the full previous set,
//!   whose join was seeded by the previous commit — always incremental;
//! * delete member `k` → same rest-set as a republish of `k`.
//!
//! Entries are evicted least-recently-touched once the cache exceeds its
//! cap; the joins are `Arc`-shared so eviction never invalidates a
//! computation in flight.
//!
//! Entries are stored *compiled* ([`CompiledSchema`]): the next
//! incremental publish re-enters the engine through
//! [`Merger::onto_base`](schema_merge_core::Merger::onto_base) without
//! re-interning the unchanged members — the interner survives across
//! registry generations and the join never detours through the symbolic
//! form.
//!
//! The module is public so the federation layer (`crates/supergraph`)
//! can run the identical caching discipline one level up: its entries
//! are joins of *registry* join-sets, keyed by
//! [`fingerprint`] over `(registry-name, join content-hash)` pairs, and
//! its incremental recompose builds onto cached composed rests exactly
//! as the registry builds onto cached member rests.

use std::collections::HashMap;
use std::sync::Arc;

use schema_merge_core::CompiledSchema;

/// How many joined sets to remember. Generous for the traffic shapes
/// above (each needs O(1) entries per actively-churning member) while
/// bounding memory on adversarial access patterns.
const CAP: usize = 64;

/// A fingerprint of a member-version set: FNV-1a over the sorted
/// `(name, content-hash)` pairs, length-framed. Callers must feed pairs
/// in sorted name order (the registry's member map is a `BTreeMap`, so
/// iteration order is already canonical).
pub fn fingerprint<'a>(pairs: impl Iterator<Item = (&'a str, u64)>) -> u64 {
    // FNV-1a, same parameters as the core's interning hasher.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (name, content) in pairs {
        write(&(name.len() as u64).to_le_bytes());
        write(name.as_bytes());
        write(&content.to_le_bytes());
    }
    hash
}

struct Entry {
    join: Arc<CompiledSchema>,
    touched: u64,
}

/// The cache proper. Not itself synchronized — the registry wraps it in
/// its own `Mutex` (separate from the state `RwLock`; the two are never
/// held at once), and every probe/insert happens under that `Mutex`.
#[derive(Default)]
pub struct JoinCache {
    entries: HashMap<u64, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl JoinCache {
    /// Looks up the join of a fingerprinted set, refreshing its LRU
    /// position. Counts a hit or miss.
    pub fn probe(&mut self, fp: u64) -> Option<Arc<CompiledSchema>> {
        self.clock += 1;
        match self.entries.get_mut(&fp) {
            Some(entry) => {
                entry.touched = self.clock;
                self.hits += 1;
                Some(Arc::clone(&entry.join))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Remembers a computed join, evicting the least-recently-touched
    /// entry if over cap. Inserting an already-present fingerprint just
    /// refreshes it (same set ⇒ same join).
    pub fn insert(&mut self, fp: u64, join: Arc<CompiledSchema>) {
        self.clock += 1;
        let clock = self.clock;
        self.entries
            .entry(fp)
            .and_modify(|entry| entry.touched = clock)
            .or_insert(Entry {
                join,
                touched: clock,
            });
        if self.entries.len() > CAP {
            if let Some((&oldest, _)) = self.entries.iter().min_by_key(|(_, e)| e.touched) {
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probes that found their fingerprint.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped by the LRU cap.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_depends_on_names_and_hashes() {
        let a = fingerprint([("a", 1u64), ("b", 2u64)].into_iter());
        let same = fingerprint([("a", 1u64), ("b", 2u64)].into_iter());
        let diff_hash = fingerprint([("a", 1u64), ("b", 3u64)].into_iter());
        let diff_name = fingerprint([("a", 1u64), ("c", 2u64)].into_iter());
        let subset = fingerprint([("a", 1u64)].into_iter());
        assert_eq!(a, same);
        assert_ne!(a, diff_hash);
        assert_ne!(a, diff_name);
        assert_ne!(a, subset);
    }

    #[test]
    fn fingerprint_framing_resists_concatenation_ambiguity() {
        // ("ab", h) vs ("a", h') + ("b", ...) style collisions are ruled
        // out by length framing.
        let joined = fingerprint([("ab", 1u64)].into_iter());
        let split = fingerprint([("a", 1u64), ("b", 1u64)].into_iter());
        assert_ne!(joined, split);
    }

    #[test]
    fn cache_probes_hit_and_evict_lru() {
        let mut cache = JoinCache::default();
        let join = Arc::new(CompiledSchema::compile(
            &schema_merge_core::WeakSchema::empty(),
        ));
        assert!(cache.probe(7).is_none());
        cache.insert(7, Arc::clone(&join));
        assert!(cache.probe(7).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        for fp in 100..100 + (CAP as u64) {
            cache.insert(fp, Arc::clone(&join));
        }
        assert!(cache.len() <= CAP);
        assert!(cache.evictions() >= 1);
        // 7 was the least recently touched after the flood began.
        assert!(cache.probe(7).is_none());
    }
}
