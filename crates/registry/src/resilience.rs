//! Commit-path resilience: retry policy, degraded read-only mode, and
//! the registry's health surface.
//!
//! By default a durable registry is *fail-fast*: a storage error on the
//! commit path surfaces to the caller unretried, exactly as in earlier
//! releases. Opting in with
//! `Registry::builder().retry_policy(RetryPolicy::new(3))` changes the
//! posture to the one object-store-backed systems assume — transient
//! I/O faults are the norm:
//!
//! 1. a failed WAL append is retried under a bounded
//!    exponential-backoff-with-jitter budget (after truncating any torn
//!    partial frame the failed write left behind);
//! 2. when the budget is exhausted (or the error is permanent) the
//!    registry flips to **degraded read-only mode** instead of wedging:
//!    reads keep serving the live in-memory view, writes are rejected
//!    with the stable `E-DEGRADED` code;
//! 3. a probe ([`Registry::probe_now`](crate::Registry::probe_now) —
//!    the daemon runs one in the background) re-attempts the store and
//!    heals back to writable. Nothing is replayed on heal: the failed
//!    commit was never acknowledged, so the in-memory view and the WAL
//!    never diverged.

use std::time::Duration;

use crate::storage::FaultCounters;

/// A bounded exponential-backoff retry budget for commit-path storage
/// errors.
///
/// The backoff for retry *n* (1-based) is
/// `initial_backoff · 2ⁿ⁻¹`, capped at `max_backoff`, with ±25%
/// deterministic jitter derived from the commit's generation — so two
/// registries retrying the same contended backend don't stampede in
/// lockstep, yet a replayed run backs off identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    max_retries: u32,
    initial_backoff: Duration,
    max_backoff: Duration,
}

impl RetryPolicy {
    /// A policy allowing `max_retries` retries after the first failed
    /// attempt, starting at 10 ms of backoff and capping at 500 ms.
    pub fn new(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }

    /// Sets the backoff before the first retry.
    pub fn initial_backoff(mut self, backoff: Duration) -> Self {
        self.initial_backoff = backoff;
        self
    }

    /// Sets the backoff cap.
    pub fn max_backoff(mut self, backoff: Duration) -> Self {
        self.max_backoff = backoff;
        self
    }

    /// The retry budget.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The backoff to sleep before retry `attempt` (1-based), jittered
    /// deterministically by `salt`.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let base = self
            .initial_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        // ±25% jitter from a splitmix64 draw over (salt, attempt).
        let mut state = salt ^ (u64::from(attempt) << 32) ^ 0x9e37_79b9_7f4a_7c15;
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let base_nanos = base.as_nanos() as u64;
        let quarter = base_nanos / 4;
        let jitter = if quarter == 0 {
            0
        } else {
            z % (2 * quarter + 1)
        };
        Duration::from_nanos(base_nanos - quarter + jitter)
    }
}

/// A snapshot of the registry's resilience state, as served by the
/// `HEALTH` protocol verb.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct Health {
    /// Whether the registry is in degraded read-only mode.
    pub degraded: bool,
    /// The most recent commit-path storage error, if any.
    pub last_storage_error: Option<String>,
    /// Commit-path storage retries performed so far.
    pub storage_retries: u64,
    /// Times the registry entered degraded mode.
    pub degrade_events: u64,
    /// Times the registry healed back to writable.
    pub heal_events: u64,
    /// Fault-injection counters, when the store injects faults.
    pub fault_counters: Option<FaultCounters>,
}

impl Health {
    /// `"degraded"` or `"ok"`.
    pub fn state(&self) -> &'static str {
        if self.degraded {
            "degraded"
        } else {
            "ok"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy::new(8)
            .initial_backoff(Duration::from_millis(8))
            .max_backoff(Duration::from_millis(100));
        let b1 = policy.backoff(1, 42);
        let b2 = policy.backoff(2, 42);
        let b5 = policy.backoff(5, 42);
        // ±25% bands around 8ms, 16ms, and the 100ms cap.
        assert!(b1 >= Duration::from_millis(6) && b1 <= Duration::from_millis(10));
        assert!(b2 >= Duration::from_millis(12) && b2 <= Duration::from_millis(20));
        assert!(b5 >= Duration::from_millis(75) && b5 <= Duration::from_millis(125));
    }

    #[test]
    fn backoff_jitter_is_deterministic_in_the_salt() {
        let policy = RetryPolicy::new(3);
        assert_eq!(policy.backoff(2, 7), policy.backoff(2, 7));
        assert_ne!(policy.backoff(2, 7), policy.backoff(2, 8));
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let policy = RetryPolicy::new(u32::MAX);
        assert!(policy.backoff(u32::MAX, 0) <= Duration::from_millis(500) * 5 / 4);
    }

    #[test]
    fn health_state_labels() {
        let mut health = Health::default();
        assert_eq!(health.state(), "ok");
        health.degraded = true;
        assert_eq!(health.state(), "degraded");
    }
}
