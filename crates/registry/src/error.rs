//! Registry failures.

use std::fmt;

use schema_merge_core::MergeError;

use crate::storage::StorageError;

/// Why a registry operation was rejected. Rejected operations leave the
/// registry exactly as it was — like [`schema_merge_core::MergeSession`],
/// a failed addition never corrupts the accumulated state.
#[derive(Debug)]
#[non_exhaustive]
pub enum RegistryError {
    /// The named member does not exist.
    UnknownMember(String),
    /// Publishing the schema would make the member set unmergeable (a
    /// specialization cycle across members, or an inconsistent
    /// completion). Carries the underlying merge failure with its
    /// witness.
    Rejected {
        /// The member whose publication was rejected.
        member: String,
        /// The merge failure that would have resulted.
        cause: MergeError,
    },
    /// The persistence layer failed. On the commit path this is raised
    /// *before* the in-memory state changes, so a commit that could not
    /// be made durable was never visible either.
    Storage(StorageError),
    /// A persistence-only operation (like [`crate::Registry::snapshot`])
    /// was asked of a registry opened without a store.
    NotPersistent,
    /// The registry is in degraded read-only mode: storage failures
    /// exhausted the retry budget, reads keep serving the live view,
    /// and writes are rejected until a probe heals the store. Stable
    /// code `E-DEGRADED`.
    Degraded {
        /// The storage failure that triggered degradation.
        detail: String,
    },
}

impl RegistryError {
    /// The stable machine-readable code for this error, when it has
    /// one.
    pub fn code(&self) -> Option<&'static str> {
        match self {
            RegistryError::Degraded { .. } => Some("E-DEGRADED"),
            _ => None,
        }
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownMember(name) => write!(f, "no member named `{name}`"),
            RegistryError::Rejected { member, cause } => {
                write!(f, "publishing `{member}` rejected: {cause}")
            }
            RegistryError::Storage(cause) => write!(f, "{cause}"),
            RegistryError::NotPersistent => {
                write!(f, "registry was opened without a data dir or store")
            }
            RegistryError::Degraded { detail } => {
                write!(
                    f,
                    "[E-DEGRADED] registry is read-only after a storage failure: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::UnknownMember(_)
            | RegistryError::NotPersistent
            | RegistryError::Degraded { .. } => None,
            RegistryError::Rejected { cause, .. } => Some(cause),
            RegistryError::Storage(cause) => Some(cause),
        }
    }
}

impl From<StorageError> for RegistryError {
    fn from(err: StorageError) -> Self {
        RegistryError::Storage(err)
    }
}
