//! Registry failures.

use std::fmt;

use schema_merge_core::MergeError;

/// Why a registry operation was rejected. Rejected operations leave the
/// registry exactly as it was — like [`schema_merge_core::MergeSession`],
/// a failed addition never corrupts the accumulated state.
#[derive(Debug)]
pub enum RegistryError {
    /// The named member does not exist.
    UnknownMember(String),
    /// Publishing the schema would make the member set unmergeable (a
    /// specialization cycle across members, or an inconsistent
    /// completion). Carries the underlying merge failure with its
    /// witness.
    Rejected {
        /// The member whose publication was rejected.
        member: String,
        /// The merge failure that would have resulted.
        cause: MergeError,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownMember(name) => write!(f, "no member named `{name}`"),
            RegistryError::Rejected { member, cause } => {
                write!(f, "publishing `{member}` rejected: {cause}")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::UnknownMember(_) => None,
            RegistryError::Rejected { cause, .. } => Some(cause),
        }
    }
}
