//! # schema-merge-registry
//!
//! A concurrent, versioned, durable schema registry with an incremental
//! merge engine — the paper's merge run as a *service*.
//!
//! Because the upper merge is a least upper bound — associative,
//! commutative, idempotent (§4.1) — it is the ideal backbone for a
//! long-lived registry: clients publish schema versions independently,
//! in any order, and the registry maintains the one canonical merged
//! view they all agree on. This is the supergraph-composition shape of
//! federated schema registries: each *member* (a team, a data source, a
//! subgraph) owns its piece; the registry owns the merge.
//!
//! The crate provides:
//!
//! * [`Registry`] — the engine. Named members hold content-hashed
//!   immutable [`SchemaVersion`]s; a generation-stamped merged view sits
//!   behind an `RwLock`, so reads are wait-free Arc clones and writers
//!   recompute optimistically outside the lock.
//! * **Incremental re-merge** — on [`Registry::put`] / [`Registry::delete`]
//!   the engine reuses the cached *compiled* join of the unchanged
//!   members (associativity: `⊔ᵢGᵢ = (⊔ᵢ≠ₖGᵢ) ⊔ Gₖ`) and re-runs only
//!   the final join and completion, as a
//!   [`schema_merge_core::merger::MergePlan`] with the cached join
//!   handed to [`Merger::onto_base`](schema_merge_core::Merger::onto_base)
//!   — the interner survives across generations — falling back to a
//!   full batch `Merger` execution when no cached join applies. The
//!   incremental result is always equal to the one-shot merge
//!   (differentially property-tested against `reference::merge`).
//! * **Durability** ([`storage`]) — an append-only, checksummed,
//!   fsync'd write-ahead log of content-hashed put/delete records plus
//!   periodic compacting snapshots, behind the pluggable
//!   [`storage::Store`] trait ([`storage::LocalStore`] on a local
//!   directory now, an object-store-shaped surface later).
//!   `Registry::builder().data_dir(p).open()?` replays snapshot + WAL
//!   suffix on boot and recovers the exact generation lineage; the merge
//!   being deterministic, the recovered view is *equal* to the
//!   never-crashed one.
//! * Schema-space queries — [`Registry::query`] answers path queries
//!   ("which classes does `Dog.owner` reach?") against the merged view
//!   via [`schema_merge_instance::PathQuery::eval_classes`], no instance
//!   data required.
//!
//! The `smerge serve` daemon in `crates/cli` exposes all of this over a
//! line-oriented TCP protocol (`schema_merge_text::protocol`).
//!
//! ```
//! use schema_merge_core::WeakSchema;
//! use schema_merge_registry::Registry;
//!
//! let registry = Registry::new();
//! let inventory = WeakSchema::builder().arrow("Part", "price", "money").build()?;
//! let orders = WeakSchema::builder().arrow("Order", "item", "Part").build()?;
//! registry.put("inventory", inventory)?;
//! registry.put("orders", orders)?;
//!
//! let view = registry.merged();
//! assert_eq!(view.generation, 2);
//! assert_eq!(view.proper.num_classes(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod error;
pub mod registry;
pub mod resilience;
pub mod stats;
pub mod storage;
pub mod version;

pub use config::RegistryBuilder;
pub use error::RegistryError;
pub use registry::{DeleteOutcome, MergeStrategy, MergedView, PutOutcome, Registry, RegistryJoin};
pub use resilience::{Health, RetryPolicy};
pub use stats::RegistryStats;
pub use version::{MemberInfo, SchemaVersion};
