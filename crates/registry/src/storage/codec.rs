//! Binary encoding primitives shared by the WAL and snapshot formats.
//!
//! Hand-rolled, `std`-only, little-endian throughout. Strings are
//! length-prefixed UTF-8, so arbitrary member and class names — spaces,
//! braces, anything — round-trip without escaping (the registry API
//! accepts names the text DSL cannot spell). Schemas are serialized
//! *structurally* (classes, closed specialization pairs, closed arrow
//! triples) and rebuilt through [`WeakSchema::builder`]; re-closing an
//! already-closed relation is the identity, so the decoded schema is
//! equal to — and shares the content hash of — the encoded one.

use std::collections::BTreeSet;

use schema_merge_core::{Class, WeakSchema};

use super::StorageError;

/// FNV-1a 64 over a byte slice — the same parameters as the core's
/// interning hasher. Used as the WAL frame and snapshot checksum;
/// guards against torn writes and bit rot, not adversaries.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked forward reader over an encoded buffer. Every decode
/// error is [`StorageError::Corrupt`] — the caller decides whether that
/// means a torn tail (stop replaying) or real damage (refuse to open).
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(StorageError::corrupt(format!(
                "truncated: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn byte(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> Result<&'a str, StorageError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|_| StorageError::corrupt("string is not valid UTF-8".to_string()))
    }
}

const CLASS_NAMED: u8 = 0;
const CLASS_IMPLICIT: u8 = 1;
const CLASS_IMPLICIT_UNION: u8 = 2;

pub(crate) fn put_class(out: &mut Vec<u8>, class: &Class) {
    match class {
        Class::Named(name) => {
            out.push(CLASS_NAMED);
            put_str(out, name.as_str());
        }
        Class::Implicit(origin) => {
            out.push(CLASS_IMPLICIT);
            put_u32(out, origin.len() as u32);
            for name in origin.iter() {
                put_str(out, name.as_str());
            }
        }
        Class::ImplicitUnion(origin) => {
            out.push(CLASS_IMPLICIT_UNION);
            put_u32(out, origin.len() as u32);
            for name in origin.iter() {
                put_str(out, name.as_str());
            }
        }
    }
}

pub(crate) fn read_class(r: &mut Reader<'_>) -> Result<Class, StorageError> {
    let tag = r.byte()?;
    match tag {
        CLASS_NAMED => Ok(Class::named(r.str()?)),
        CLASS_IMPLICIT | CLASS_IMPLICIT_UNION => {
            let count = r.u32()? as usize;
            let mut origins = BTreeSet::new();
            for _ in 0..count {
                origins.insert(Class::named(r.str()?));
            }
            let class = if tag == CLASS_IMPLICIT {
                Class::try_implicit(origins)
            } else {
                Class::try_implicit_union(origins)
            };
            class.ok_or_else(|| {
                StorageError::corrupt("implicit class with fewer than two origins".to_string())
            })
        }
        other => Err(StorageError::corrupt(format!("unknown class tag {other}"))),
    }
}

/// Serializes a schema structurally: class set, strict closed
/// specialization pairs, closed arrow triples.
pub(crate) fn put_schema(out: &mut Vec<u8>, schema: &WeakSchema) {
    put_u32(out, schema.num_classes() as u32);
    for class in schema.classes() {
        put_class(out, class);
    }
    put_u32(out, schema.num_specializations() as u32);
    for (sub, sup) in schema.specialization_pairs() {
        put_class(out, sub);
        put_class(out, sup);
    }
    put_u32(out, schema.num_arrows() as u32);
    for (src, label, tgt) in schema.arrow_triples() {
        put_class(out, src);
        put_str(out, label.as_str());
        put_class(out, tgt);
    }
}

/// Rebuilds a schema through the builder. The stored relations are
/// already closed, so the rebuild's closure pass is the identity.
pub(crate) fn read_schema(r: &mut Reader<'_>) -> Result<WeakSchema, StorageError> {
    let mut builder = WeakSchema::builder();
    let classes = r.u32()?;
    for _ in 0..classes {
        builder = builder.class(read_class(r)?);
    }
    let specs = r.u32()?;
    for _ in 0..specs {
        let sub = read_class(r)?;
        let sup = read_class(r)?;
        builder = builder.specialize(sub, sup);
    }
    let arrows = r.u32()?;
    for _ in 0..arrows {
        let src = read_class(r)?;
        let label = r.str()?.to_string();
        let tgt = read_class(r)?;
        builder = builder.arrow(src, label, tgt);
    }
    builder
        .build()
        .map_err(|err| StorageError::corrupt(format!("stored schema does not validate: {err}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(schema: &WeakSchema) -> WeakSchema {
        let mut buf = Vec::new();
        put_schema(&mut buf, schema);
        let mut reader = Reader::new(&buf);
        let decoded = read_schema(&mut reader).expect("decodes");
        assert!(reader.is_empty(), "no trailing bytes");
        decoded
    }

    #[test]
    fn schema_round_trips_bit_exact() {
        let schema = WeakSchema::builder()
            .arrow("Dog", "owner", "Person")
            .specialize("Guide-dog", "Dog")
            .class("Kennel")
            .build()
            .unwrap();
        let decoded = round_trip(&schema);
        assert_eq!(decoded, schema);
        assert_eq!(decoded.content_hash(), schema.content_hash());
    }

    #[test]
    fn implicit_classes_and_hostile_names_round_trip() {
        let implicit = Class::implicit([Class::named("B1"), Class::named("B2")]);
        let union = Class::implicit_union([Class::named("X"), Class::named("Y")]);
        // Names the text DSL could never parse: spaces, braces, dots,
        // newlines. The structural codec must not care.
        let schema = WeakSchema::builder()
            .class(implicit.clone())
            .class(union)
            .arrow(Class::named("has space"), "a.b", implicit)
            .specialize(Class::named("{braces}"), Class::named("with\nnewline"))
            .build()
            .unwrap();
        let decoded = round_trip(&schema);
        assert_eq!(decoded, schema);
        assert_eq!(decoded.content_hash(), schema.content_hash());
    }

    #[test]
    fn empty_schema_round_trips() {
        assert_eq!(round_trip(&WeakSchema::empty()), WeakSchema::empty());
    }

    #[test]
    fn truncated_input_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        put_schema(
            &mut buf,
            &WeakSchema::builder().arrow("A", "f", "B").build().unwrap(),
        );
        for len in 0..buf.len() {
            let mut reader = Reader::new(&buf[..len]);
            assert!(
                read_schema(&mut reader).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn fnv64_matches_reference_vector() {
        // FNV-1a("a") with 64-bit parameters.
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
