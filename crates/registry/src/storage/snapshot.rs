//! The snapshot format: one compacted image of the registry's durable
//! state at a generation.
//!
//! ```text
//! snapshot := magic:u64 version:u32 generation:u64 view_hash:u64
//!             blobs:u32   (hash:u64 schema)*
//!             members:u32 (name:str versions:u32 (hash:u64 seq:u32 gen:u64)*)*
//!             crc:u64     (FNV-1a 64 of everything before it)
//! ```
//!
//! Schemas live once each in the *blob table*, keyed by content hash;
//! version histories reference them by hash. Versions are immutable, so
//! the table is a pure function of the content hashes — the dedup the
//! WAL performs record-by-record, a snapshot performs wholesale, and
//! after compaction (snapshot + log truncation) each distinct schema
//! body exists exactly once on disk.
//!
//! Snapshots are written to a fresh object and installed atomically (see
//! [`super::LocalStore`]), so unlike the WAL they are all-or-nothing: a
//! snapshot that fails its checksum is damage, not a crash artifact, and
//! decoding refuses it rather than guessing.

use std::collections::BTreeMap;
use std::sync::Arc;

use schema_merge_core::WeakSchema;

use super::codec::{fnv64, put_str, put_u32, put_u64, Reader};
use super::{codec, StorageError};

/// First eight bytes of a snapshot object.
pub(crate) const SNAPSHOT_MAGIC: u64 = 0x534d_4552_4745_534e; // "SMERGESN"
/// Format version of everything after the magic.
pub(crate) const SNAPSHOT_VERSION: u32 = 1;

/// One member version as persisted: the schema body lives in the blob
/// table, referenced by content hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct VersionMeta {
    pub(crate) hash: u64,
    pub(crate) sequence: u32,
    pub(crate) generation: u64,
}

/// The decoded durable state at a generation.
#[derive(Debug, Clone, Default)]
pub(crate) struct SnapshotState {
    /// The registry generation the snapshot captured.
    pub(crate) generation: u64,
    /// Content hash of the merged proper schema at that generation.
    pub(crate) view_hash: u64,
    /// Every distinct schema body, keyed by content hash.
    pub(crate) blobs: BTreeMap<u64, Arc<WeakSchema>>,
    /// Member name → full version history, oldest first.
    pub(crate) members: BTreeMap<String, Vec<VersionMeta>>,
}

/// Encodes a snapshot image (checksum included).
pub(crate) fn encode(state: &SnapshotState) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, SNAPSHOT_MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u64(&mut out, state.generation);
    put_u64(&mut out, state.view_hash);
    put_u32(&mut out, state.blobs.len() as u32);
    for (hash, schema) in &state.blobs {
        put_u64(&mut out, *hash);
        codec::put_schema(&mut out, schema);
    }
    put_u32(&mut out, state.members.len() as u32);
    for (name, versions) in &state.members {
        put_str(&mut out, name);
        put_u32(&mut out, versions.len() as u32);
        for v in versions {
            put_u64(&mut out, v.hash);
            put_u32(&mut out, v.sequence);
            put_u64(&mut out, v.generation);
        }
    }
    let crc = fnv64(&out);
    put_u64(&mut out, crc);
    out
}

/// Decodes and fully validates a snapshot image: magic, version,
/// trailing checksum, and every blob's content hash against its key
/// (the schema bodies must actually be the content they claim).
pub(crate) fn decode(image: &[u8]) -> Result<SnapshotState, StorageError> {
    if image.len() < 8 {
        return Err(StorageError::corrupt(
            "snapshot shorter than its checksum".to_string(),
        ));
    }
    let (body, tail) = image.split_at(image.len() - 8);
    let stored_crc = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv64(body) != stored_crc {
        return Err(StorageError::corrupt(
            "snapshot checksum mismatch".to_string(),
        ));
    }
    let mut r = Reader::new(body);
    if r.u64()? != SNAPSHOT_MAGIC {
        return Err(StorageError::corrupt("bad snapshot magic".to_string()));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(StorageError::corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let mut state = SnapshotState {
        generation: r.u64()?,
        view_hash: r.u64()?,
        ..SnapshotState::default()
    };
    let blobs = r.u32()?;
    for _ in 0..blobs {
        let hash = r.u64()?;
        let schema = codec::read_schema(&mut r)?;
        if schema.content_hash() != hash {
            return Err(StorageError::corrupt(format!(
                "blob {hash:#018x} decodes to content hash {:#018x}",
                schema.content_hash()
            )));
        }
        state.blobs.insert(hash, Arc::new(schema));
    }
    let members = r.u32()?;
    for _ in 0..members {
        let name = r.str()?.to_string();
        let count = r.u32()?;
        let mut versions = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let meta = VersionMeta {
                hash: r.u64()?,
                sequence: r.u32()?,
                generation: r.u64()?,
            };
            if !state.blobs.contains_key(&meta.hash) {
                return Err(StorageError::corrupt(format!(
                    "member `{name}` references missing blob {:#018x}",
                    meta.hash
                )));
            }
            versions.push(meta);
        }
        if versions.is_empty() {
            return Err(StorageError::corrupt(format!(
                "member `{name}` has no versions"
            )));
        }
        state.members.insert(name, versions);
    }
    if !r.is_empty() {
        return Err(StorageError::corrupt(format!(
            "{} trailing bytes in snapshot",
            r.remaining()
        )));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotState {
        let a = WeakSchema::builder().arrow("A", "f", "B").build().unwrap();
        let b = WeakSchema::builder()
            .specialize("Guide-dog", "Dog")
            .build()
            .unwrap();
        let (ha, hb) = (a.content_hash(), b.content_hash());
        let mut state = SnapshotState {
            generation: 17,
            view_hash: 0xfeed,
            ..SnapshotState::default()
        };
        state.blobs.insert(ha, Arc::new(a));
        state.blobs.insert(hb, Arc::new(b));
        state.members.insert(
            "alpha".to_string(),
            vec![
                VersionMeta {
                    hash: ha,
                    sequence: 1,
                    generation: 1,
                },
                VersionMeta {
                    hash: hb,
                    sequence: 2,
                    generation: 9,
                },
            ],
        );
        state.members.insert(
            "beta".to_string(),
            vec![VersionMeta {
                hash: ha,
                sequence: 1,
                generation: 2,
            }],
        );
        state
    }

    #[test]
    fn snapshot_round_trips() {
        let state = sample();
        let decoded = decode(&encode(&state)).unwrap();
        assert_eq!(decoded.generation, 17);
        assert_eq!(decoded.view_hash, 0xfeed);
        assert_eq!(decoded.members, state.members);
        assert_eq!(decoded.blobs.len(), 2);
        for (hash, schema) in &state.blobs {
            assert_eq!(decoded.blobs[hash].as_ref(), schema.as_ref());
        }
    }

    #[test]
    fn any_flipped_byte_is_refused() {
        let image = encode(&sample());
        for i in 0..image.len() {
            let mut bad = image.clone();
            bad[i] ^= 0x01;
            assert!(decode(&bad).is_err(), "flip at byte {i} must not decode");
        }
    }

    #[test]
    fn truncation_is_refused() {
        let image = encode(&sample());
        for len in 0..image.len() {
            assert!(decode(&image[..len]).is_err(), "prefix of {len} bytes");
        }
    }
}
