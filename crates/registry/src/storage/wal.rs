//! The write-ahead log format: length-prefixed, checksummed frames of
//! content-hashed put/delete records.
//!
//! ```text
//! file   := header frame*
//! header := magic:u64 version:u32
//! frame  := len:u32 crc:u64 payload[len]        (crc = FNV-1a 64 of payload)
//! ```
//!
//! Payloads carry one [`WalRecord`]. A `Put` record carries the schema
//! body only the *first* time its content hash reaches the store —
//! versions are immutable, so republishing known content appends a
//! by-reference record (hash only) and replay resolves it against the
//! blob table accumulated from the snapshot and earlier records. That is
//! the log's content-hash compaction: a member flapping between two
//! versions costs eight bytes of schema payload per flap, not two schema
//! bodies.
//!
//! Every record also carries the content hash of the merged view *after*
//! its commit, so replay can verify end-to-end that the recovered view
//! is the one the writer actually served.
//!
//! Reading is torn-tail tolerant: a frame whose length field runs past
//! the end of the file, or whose checksum does not match, ends the
//! replay at the last good frame ([`read_frames`] reports how many bytes
//! were valid so the caller can truncate the tail away). A frame can
//! only be trusted if every frame before it was — after one bad header
//! there is no resynchronization point — so replay never skips over
//! damage.

use std::sync::Arc;

use schema_merge_core::WeakSchema;

use super::codec::{fnv64, put_str, put_u32, put_u64, Reader};
use super::{codec, StorageError};

/// First eight bytes of a WAL file.
pub(crate) const WAL_MAGIC: u64 = 0x534d_4552_4745_574c; // "SMERGEWL"
/// Format version of everything after the magic.
pub(crate) const WAL_VERSION: u32 = 1;
/// Encoded file header length.
pub(crate) const WAL_HEADER_LEN: usize = 12;
/// Frame header length (`len:u32 crc:u64`).
const FRAME_HEADER_LEN: usize = 12;

const KIND_PUT: u8 = 1;
const KIND_DELETE: u8 = 2;

/// One committed registry operation, as replayed from the log.
#[derive(Debug, Clone)]
pub(crate) enum WalRecord {
    /// A committed publish.
    Put {
        /// The registry generation the commit spent.
        generation: u64,
        /// The member published to.
        member: String,
        /// Content hash of the published schema.
        hash: u64,
        /// The version's 1-based sequence number within the member.
        sequence: u32,
        /// Content hash of the merged proper schema after this commit.
        view_hash: u64,
        /// The schema body — present only the first time `hash` reaches
        /// the store; `None` is a by-reference record.
        schema: Option<Arc<WeakSchema>>,
    },
    /// A committed member removal.
    Delete {
        /// The registry generation the commit spent.
        generation: u64,
        /// The member removed.
        member: String,
        /// Content hash of the merged proper schema after this commit.
        view_hash: u64,
    },
}

impl WalRecord {
    /// The generation the record committed.
    pub(crate) fn generation(&self) -> u64 {
        match self {
            WalRecord::Put { generation, .. } | WalRecord::Delete { generation, .. } => *generation,
        }
    }

    /// The post-commit merged-view content hash.
    pub(crate) fn view_hash(&self) -> u64 {
        match self {
            WalRecord::Put { view_hash, .. } | WalRecord::Delete { view_hash, .. } => *view_hash,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Put {
                generation,
                member,
                hash,
                sequence,
                view_hash,
                schema,
            } => {
                out.push(KIND_PUT);
                put_u64(&mut out, *generation);
                put_str(&mut out, member);
                put_u64(&mut out, *hash);
                put_u32(&mut out, *sequence);
                put_u64(&mut out, *view_hash);
                match schema {
                    Some(schema) => {
                        out.push(1);
                        codec::put_schema(&mut out, schema);
                    }
                    None => out.push(0),
                }
            }
            WalRecord::Delete {
                generation,
                member,
                view_hash,
            } => {
                out.push(KIND_DELETE);
                put_u64(&mut out, *generation);
                put_str(&mut out, member);
                put_u64(&mut out, *view_hash);
            }
        }
        out
    }
}

/// Encodes the WAL file header.
pub(crate) fn encode_header() -> [u8; WAL_HEADER_LEN] {
    let mut out = [0u8; WAL_HEADER_LEN];
    out[..8].copy_from_slice(&WAL_MAGIC.to_le_bytes());
    out[8..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    out
}

/// Frames one record: `len crc payload`.
pub(crate) fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let payload = record.encode_payload();
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u64(&mut out, fnv64(&payload));
    out.extend_from_slice(&payload);
    out
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, StorageError> {
    let mut r = Reader::new(payload);
    let record = match r.byte()? {
        KIND_PUT => {
            let generation = r.u64()?;
            let member = r.str()?.to_string();
            let hash = r.u64()?;
            let sequence = r.u32()?;
            let view_hash = r.u64()?;
            let schema = match r.byte()? {
                0 => None,
                1 => Some(Arc::new(codec::read_schema(&mut r)?)),
                other => {
                    return Err(StorageError::corrupt(format!(
                        "bad schema-presence byte {other}"
                    )))
                }
            };
            WalRecord::Put {
                generation,
                member,
                hash,
                sequence,
                view_hash,
                schema,
            }
        }
        KIND_DELETE => WalRecord::Delete {
            generation: r.u64()?,
            member: r.str()?.to_string(),
            view_hash: r.u64()?,
        },
        other => {
            return Err(StorageError::corrupt(format!(
                "unknown record kind {other}"
            )))
        }
    };
    if !r.is_empty() {
        return Err(StorageError::corrupt(format!(
            "{} trailing bytes after record",
            r.remaining()
        )));
    }
    Ok(record)
}

/// The outcome of scanning a WAL image.
pub(crate) struct WalScan {
    /// Every record up to the last good frame, in append order.
    pub(crate) records: Vec<WalRecord>,
    /// Bytes of the image that are valid (header + good frames). A
    /// value shorter than the image means the tail was torn or corrupt
    /// and should be truncated away before appending resumes.
    pub(crate) valid_len: u64,
}

/// Scans a WAL image, tolerating a torn or corrupt tail. An empty image
/// (zero bytes — the file was never created or the header write itself
/// tore) yields zero records. A present-but-wrong magic or version is
/// *not* tolerated: that is not a crash artifact, it is the wrong file.
pub(crate) fn read_frames(image: &[u8]) -> Result<WalScan, StorageError> {
    if image.len() < WAL_HEADER_LEN {
        // Nothing, or a torn header: no frame can have been acknowledged.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
        });
    }
    let magic = u64::from_le_bytes(image[..8].try_into().unwrap());
    let version = u32::from_le_bytes(image[8..12].try_into().unwrap());
    if magic != WAL_MAGIC {
        return Err(StorageError::corrupt(format!(
            "bad WAL magic {magic:#018x}"
        )));
    }
    if version != WAL_VERSION {
        return Err(StorageError::corrupt(format!(
            "unsupported WAL version {version}"
        )));
    }

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    loop {
        let rest = &image[pos..];
        if rest.len() < FRAME_HEADER_LEN {
            break; // torn frame header (or clean end of log)
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let crc = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        if rest.len() < FRAME_HEADER_LEN + len {
            break; // torn payload
        }
        let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        if fnv64(payload) != crc {
            break; // corrupt frame: stop at the last good one
        }
        match decode_record(payload) {
            Ok(record) => records.push(record),
            Err(_) => break, // checksummed but undecodable: treat as damage
        }
        pos += FRAME_HEADER_LEN + len;
    }
    Ok(WalScan {
        records,
        valid_len: pos as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(generation: u64, member: &str, schema: Option<WeakSchema>) -> WalRecord {
        let hash = schema.as_ref().map(WeakSchema::content_hash).unwrap_or(7);
        WalRecord::Put {
            generation,
            member: member.to_string(),
            hash,
            sequence: generation as u32,
            view_hash: hash ^ 0xdead,
            schema: schema.map(Arc::new),
        }
    }

    fn image(records: &[WalRecord]) -> Vec<u8> {
        let mut out = encode_header().to_vec();
        for record in records {
            out.extend_from_slice(&encode_frame(record));
        }
        out
    }

    fn sample() -> Vec<WalRecord> {
        let schema = WeakSchema::builder().arrow("A", "f", "B").build().unwrap();
        vec![
            put(1, "alpha", Some(schema)),
            put(2, "beta", None),
            WalRecord::Delete {
                generation: 3,
                member: "alpha".to_string(),
                view_hash: 99,
            },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let records = sample();
        let scan = read_frames(&image(&records)).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len as usize, image(&records).len());
        for (a, b) in records.iter().zip(&scan.records) {
            assert_eq!(a.generation(), b.generation());
            assert_eq!(a.view_hash(), b.view_hash());
        }
        match (&records[0], &scan.records[0]) {
            (
                WalRecord::Put {
                    schema: Some(a), ..
                },
                WalRecord::Put {
                    schema: Some(b), ..
                },
            ) => assert_eq!(a.as_ref(), b.as_ref()),
            other => panic!("expected put-with-schema pair, got {other:?}"),
        }
    }

    #[test]
    fn torn_tail_keeps_the_good_prefix() {
        let records = sample();
        let full = image(&records);
        let two = image(&records[..2]);
        // Every truncation point strictly between record 2 and record 3
        // must recover exactly two records and report the two-record
        // prefix as the valid length.
        for cut in two.len() + 1..full.len() {
            let scan = read_frames(&full[..cut]).unwrap();
            assert_eq!(scan.records.len(), 2, "cut at {cut}");
            assert_eq!(scan.valid_len as usize, two.len(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_checksum_stops_replay_at_last_good_frame() {
        let records = sample();
        let two = image(&records[..2]);
        let mut full = image(&records);
        // Flip one payload byte inside the third frame.
        let offset = two.len() + FRAME_HEADER_LEN + 2;
        full[offset] ^= 0xff;
        let scan = read_frames(&full).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_len as usize, two.len());
    }

    #[test]
    fn empty_and_torn_header_mean_empty_log() {
        assert_eq!(read_frames(&[]).unwrap().records.len(), 0);
        let header = encode_header();
        assert_eq!(read_frames(&header[..5]).unwrap().records.len(), 0);
        assert_eq!(
            read_frames(&header).unwrap().valid_len as usize,
            WAL_HEADER_LEN
        );
    }

    #[test]
    fn wrong_magic_is_refused() {
        let mut img = image(&sample());
        img[0] ^= 0xff;
        assert!(read_frames(&img).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A varied record mix keyed by small integers, plus the byte
        /// offsets of every frame boundary in its encoded image.
        fn workload(keys: &[u8]) -> (Vec<WalRecord>, Vec<u8>, Vec<usize>) {
            let records: Vec<WalRecord> = keys
                .iter()
                .enumerate()
                .map(|(i, key)| {
                    let generation = i as u64 + 1;
                    let member = format!("m{}", key % 4);
                    match key % 3 {
                        0 => {
                            let schema = WeakSchema::builder()
                                .arrow(format!("C{key}"), "f", "T")
                                .build()
                                .unwrap();
                            put(generation, &member, Some(schema))
                        }
                        1 => put(generation, &member, None),
                        _ => WalRecord::Delete {
                            generation,
                            member,
                            view_hash: u64::from(*key) << 8,
                        },
                    }
                })
                .collect();
            let mut image = encode_header().to_vec();
            let mut boundaries = vec![image.len()];
            for record in &records {
                image.extend_from_slice(&encode_frame(record));
                boundaries.push(image.len());
            }
            (records, image, boundaries)
        }

        /// Loose observable equality: generation and view hash identify
        /// a record for prefix comparison.
        fn assert_prefix(scan: &[WalRecord], original: &[WalRecord], context: &str) {
            for (a, b) in scan.iter().zip(original) {
                assert_eq!(a.generation(), b.generation(), "{context}");
                assert_eq!(a.view_hash(), b.view_hash(), "{context}");
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// Truncation at ANY byte offset — mid-header, mid-frame-
            /// header, mid-payload — recovers exactly the longest whole-
            /// frame prefix and reports its length for tail repair.
            /// Never an error, never a phantom record.
            #[test]
            fn any_truncation_recovers_an_exact_frame_prefix(
                keys in proptest::collection::vec(0u8..12, 1..7),
                cut_raw in any::<u64>(),
            ) {
                let (records, image, boundaries) = workload(&keys);
                let cut = (cut_raw % (image.len() as u64 + 1)) as usize;
                let scan = read_frames(&image[..cut]).unwrap();
                if cut < WAL_HEADER_LEN {
                    prop_assert_eq!(scan.records.len(), 0);
                    prop_assert_eq!(scan.valid_len, 0);
                } else {
                    let whole = boundaries.iter().filter(|b| **b <= cut).count() - 1;
                    prop_assert_eq!(scan.records.len(), whole, "cut at {}", cut);
                    prop_assert_eq!(scan.valid_len as usize, boundaries[whole]);
                    assert_prefix(&scan.records, &records, "truncation");
                }
            }

            /// A single flipped bit anywhere in the image either refuses
            /// the file (header damage) or stops replay exactly at the
            /// damaged frame — every frame before it intact, nothing
            /// after it ever surfacing as a record.
            #[test]
            fn any_single_bit_flip_is_contained(
                keys in proptest::collection::vec(0u8..12, 1..7),
                pos_raw in any::<u64>(),
                bit in 0u8..8,
            ) {
                let (records, mut image, boundaries) = workload(&keys);
                let pos = (pos_raw % image.len() as u64) as usize;
                image[pos] ^= 1 << bit;
                if pos < WAL_HEADER_LEN {
                    prop_assert!(
                        read_frames(&image).is_err(),
                        "header damage must refuse the file"
                    );
                } else {
                    let frame = boundaries.iter().filter(|b| **b <= pos).count() - 1;
                    let scan = read_frames(&image).unwrap();
                    prop_assert_eq!(scan.records.len(), frame, "flip at {}", pos);
                    prop_assert_eq!(scan.valid_len as usize, boundaries[frame]);
                    assert_prefix(&scan.records, &records, "bit flip");
                }
            }

            /// The codec layer under the same damage model: a flipped
            /// bit in an encoded schema must never panic — it decodes to
            /// an error or to some schema, but the checksummed frame
            /// layer above is what guarantees integrity.
            #[test]
            fn schema_codec_never_panics_on_a_flipped_bit(
                key in 0u8..12,
                pos_raw in any::<u64>(),
                bit in 0u8..8,
            ) {
                let schema = WeakSchema::builder()
                    .arrow(format!("C{key}"), "f", "T")
                    .arrow("T", "g", format!("U{key}"))
                    .build()
                    .unwrap();
                let mut bytes = Vec::new();
                codec::put_schema(&mut bytes, &schema);

                // Untouched bytes round-trip exactly.
                let mut r = Reader::new(&bytes);
                prop_assert_eq!(codec::read_schema(&mut r).unwrap(), schema);

                let pos = (pos_raw % bytes.len() as u64) as usize;
                bytes[pos] ^= 1 << bit;
                let mut r = Reader::new(&bytes);
                let _ = codec::read_schema(&mut r); // must not panic
            }
        }
    }
}
