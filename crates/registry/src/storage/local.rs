//! The local-directory [`Store`] backend.
//!
//! Layout under the data directory:
//!
//! ```text
//! <dir>/wal.log                    the append-only record log
//! <dir>/snapshot-<generation>.snap immutable snapshot objects
//! <dir>/snapshot-<generation>.tmp  in-flight snapshot writes
//! ```
//!
//! Durability discipline:
//!
//! * `append` writes the frame and `fsync`s the log file before
//!   returning — the registry acknowledges a commit only after that, so
//!   an acknowledged commit survives `kill -9` at any instruction.
//! * Snapshots are written to a `.tmp` sibling, fsync'd, then installed
//!   with an atomic `rename` followed by a directory fsync. A crash
//!   mid-write leaves a stray `.tmp` (ignored and cleaned on open) and
//!   the previous snapshot intact; there is no torn-snapshot state.
//! * The log is created lazily with its format header; truncating to
//!   zero (compaction after a snapshot) rewrites the header so the file
//!   is always a valid — possibly empty — WAL image.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::{wal, StorageError, Store};

const WAL_FILE: &str = "wal.log";
const SNAPSHOT_PREFIX: &str = "snapshot-";
const SNAPSHOT_SUFFIX: &str = ".snap";
const TMP_SUFFIX: &str = ".tmp";

/// A [`Store`] over a local directory with real fsyncs. See the module
/// docs for the layout and durability discipline.
#[derive(Debug)]
pub struct LocalStore {
    dir: PathBuf,
    /// The log file, held open in append mode across commits.
    log: File,
}

impl LocalStore {
    /// Opens (creating if needed) a store rooted at `dir`. Stray `.tmp`
    /// files from a crashed snapshot write are removed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StorageError::io("create data dir", e))?;
        // A crashed snapshot write leaves a .tmp that was never renamed:
        // it is garbage by construction (rename is the commit point).
        for entry in fs::read_dir(&dir).map_err(|e| StorageError::io("list data dir", e))? {
            let entry = entry.map_err(|e| StorageError::io("list data dir", e))?;
            if entry.file_name().to_string_lossy().ends_with(TMP_SUFFIX) {
                let _ = fs::remove_file(entry.path());
            }
        }
        let log_path = dir.join(WAL_FILE);
        let mut log = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&log_path)
            .map_err(|e| StorageError::io("open log", e))?;
        let len = log
            .metadata()
            .map_err(|e| StorageError::io("stat log", e))?
            .len();
        if len == 0 {
            log.write_all(&wal::encode_header())
                .and_then(|()| log.sync_data())
                .map_err(|e| StorageError::io("init log", e))?;
        }
        Ok(LocalStore { dir, log })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snapshot_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!(
            "{SNAPSHOT_PREFIX}{generation:020}{SNAPSHOT_SUFFIX}"
        ))
    }

    /// fsync the directory itself so renames/creates are durable.
    fn sync_dir(&self) -> io::Result<()> {
        File::open(&self.dir)?.sync_all()
    }
}

impl Store for LocalStore {
    fn append(&mut self, frame: &[u8]) -> Result<(), StorageError> {
        self.log
            .write_all(frame)
            .and_then(|()| self.log.sync_data())
            .map_err(|e| StorageError::io("append", e))
    }

    fn read_log(&mut self) -> Result<Vec<u8>, StorageError> {
        let mut image = Vec::new();
        self.log
            .seek(SeekFrom::Start(0))
            .and_then(|_| self.log.read_to_end(&mut image))
            .map_err(|e| StorageError::io("read log", e))?;
        Ok(image)
    }

    fn truncate_log(&mut self, len: u64) -> Result<(), StorageError> {
        self.log
            .set_len(len)
            .map_err(|e| StorageError::io("truncate log", e))?;
        if len == 0 {
            self.log
                .write_all(&wal::encode_header())
                .map_err(|e| StorageError::io("truncate log", e))?;
        }
        self.log
            .sync_data()
            .map_err(|e| StorageError::io("truncate log", e))
    }

    fn log_bytes(&self) -> Result<u64, StorageError> {
        Ok(self
            .log
            .metadata()
            .map_err(|e| StorageError::io("stat log", e))?
            .len())
    }

    fn write_snapshot(&mut self, generation: u64, image: &[u8]) -> Result<(), StorageError> {
        let tmp = self
            .dir
            .join(format!("{SNAPSHOT_PREFIX}{generation:020}{TMP_SUFFIX}"));
        let write = || -> io::Result<()> {
            let mut file = File::create(&tmp)?;
            file.write_all(image)?;
            file.sync_all()?;
            fs::rename(&tmp, self.snapshot_path(generation))?;
            self.sync_dir()
        };
        write().map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StorageError::io("write snapshot", e)
        })
    }

    fn read_snapshot(&mut self, generation: u64) -> Result<Vec<u8>, StorageError> {
        fs::read(self.snapshot_path(generation)).map_err(|e| StorageError::io("read snapshot", e))
    }

    fn list_snapshots(&mut self) -> Result<Vec<u64>, StorageError> {
        let mut generations = Vec::new();
        for entry in fs::read_dir(&self.dir).map_err(|e| StorageError::io("list snapshots", e))? {
            let entry = entry.map_err(|e| StorageError::io("list snapshots", e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(middle) = name
                .strip_prefix(SNAPSHOT_PREFIX)
                .and_then(|rest| rest.strip_suffix(SNAPSHOT_SUFFIX))
            {
                if let Ok(generation) = middle.parse::<u64>() {
                    generations.push(generation);
                }
            }
        }
        generations.sort_unstable();
        Ok(generations)
    }

    fn remove_snapshot(&mut self, generation: u64) -> Result<(), StorageError> {
        match fs::remove_file(self.snapshot_path(generation)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StorageError::io("remove snapshot", e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("smerge-localstore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn log_append_read_truncate() {
        let dir = temp_dir("log");
        let mut store = LocalStore::open(&dir).unwrap();
        let header = wal::WAL_HEADER_LEN as u64;
        assert_eq!(store.log_bytes().unwrap(), header);
        store.append(b"hello").unwrap();
        store.append(b" world").unwrap();
        assert!(store.read_log().unwrap().ends_with(b"hello world"));

        // Reopen: the same bytes come back (append mode, shared file).
        drop(store);
        let mut store = LocalStore::open(&dir).unwrap();
        assert!(store.read_log().unwrap().ends_with(b"hello world"));

        store.truncate_log(header + 5).unwrap();
        assert!(store.read_log().unwrap().ends_with(b"hello"));
        store.truncate_log(0).unwrap();
        assert_eq!(store.read_log().unwrap(), wal::encode_header());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshots_install_atomically_and_list_sorted() {
        let dir = temp_dir("snap");
        let mut store = LocalStore::open(&dir).unwrap();
        store.write_snapshot(12, b"twelve").unwrap();
        store.write_snapshot(3, b"three").unwrap();
        assert_eq!(store.list_snapshots().unwrap(), vec![3, 12]);
        assert_eq!(store.read_snapshot(12).unwrap(), b"twelve");
        store.remove_snapshot(3).unwrap();
        assert_eq!(store.list_snapshots().unwrap(), vec![12]);

        // A stray .tmp (crashed write) is invisible and cleaned on open.
        fs::write(dir.join("snapshot-00000000000000000099.tmp"), b"torn").unwrap();
        drop(store);
        let mut store = LocalStore::open(&dir).unwrap();
        assert_eq!(store.list_snapshots().unwrap(), vec![12]);
        assert!(!dir.join("snapshot-00000000000000000099.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
