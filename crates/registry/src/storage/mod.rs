//! Durable storage for the registry: a pluggable [`Store`] trait, the
//! write-ahead-log and snapshot formats, and two backends.
//!
//! ## Shape
//!
//! The registry's state is log-structured by nature: members are
//! append-only histories of content-hashed immutable versions, and the
//! merged view is a deterministic function (a least upper bound) of the
//! current member set. Durability therefore needs exactly two kinds of
//! object:
//!
//! * **the log** — one append-only stream of put/delete records
//!   (the `wal` module: length-prefixed, checksummed, fsync'd per
//!   commit, torn-tail tolerant), and
//! * **snapshots** — immutable, atomically-installed images of the full
//!   durable state at a generation (the `snapshot` module: blob-deduped
//!   by content hash), after which the log can be truncated
//!   (compaction).
//!
//! [`Store`] is that surface and nothing more — append, read-all,
//! truncate on the log; write/read/list/remove on snapshot objects. It
//! is deliberately object-store-shaped (iox-style: immutable keyed
//! objects plus one append stream) so an S3-like backend can slot in
//! behind the same registry code; [`LocalStore`] implements it on a
//! local directory with real fsyncs, [`MemoryStore`] on byte buffers
//! for tests and ephemeral registries.
//!
//! ## Recovery contract
//!
//! `Registry::open` loads the newest decodable snapshot, replays the
//! log's valid prefix for records with a later generation, truncates any
//! torn tail, recomputes the merged view (deterministically — the merge
//! is the same LUB that produced it), and verifies the result against
//! the `view_hash` the last committed record carried. Crash anywhere:
//! every acknowledged commit was fsync'd before it was acknowledged, so
//! the recovered view equals the never-crashed reference fed the same
//! committed sequence.

use std::fmt;
use std::io;

pub(crate) mod codec;
pub mod fault;
mod local;
pub(crate) mod snapshot;
pub(crate) mod wal;

pub use fault::{Fault, FaultCounters, FaultSchedule, FaultStore, OpKind};
pub use local::LocalStore;

/// A storage failure: an I/O error from the backend, or durable bytes
/// that cannot be trusted.
#[derive(Debug)]
pub enum StorageError {
    /// The backend failed to perform `op`.
    Io {
        /// What the store was doing (`"append"`, `"write snapshot"`, …).
        op: &'static str,
        /// The underlying error.
        source: io::Error,
    },
    /// Durable bytes failed validation (checksum, framing, or semantic
    /// cross-checks like a version referencing a missing blob).
    Corrupt {
        /// What was wrong.
        detail: String,
    },
}

impl StorageError {
    pub(crate) fn io(op: &'static str, source: io::Error) -> Self {
        StorageError::Io { op, source }
    }

    pub(crate) fn corrupt(detail: String) -> Self {
        StorageError::Corrupt { detail }
    }

    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Transient failures are I/O errors whose kind signals a momentary
    /// condition (interruption, timeout, a dropped connection to a
    /// remote backend); the registry's retry policy only spends budget
    /// on these. Corruption is never transient — the bytes will not get
    /// better — and neither is `NotFound`, which backends use for
    /// genuinely absent objects (e.g. a missing snapshot generation).
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io { source, .. } => matches!(
                source.kind(),
                io::ErrorKind::Interrupted
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
            ),
            StorageError::Corrupt { .. } => false,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, source } => write!(f, "storage {op} failed: {source}"),
            StorageError::Corrupt { detail } => write!(f, "storage corrupt: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::Corrupt { .. } => None,
        }
    }
}

/// The pluggable persistence surface: one append-only log plus immutable
/// snapshot objects keyed by generation.
///
/// Implementations must make [`Store::append`] and
/// [`Store::write_snapshot`] *durable before returning* (fsync or the
/// backend's equivalent) — the registry acknowledges a commit to its
/// caller only after `append` returns, and that ordering is the entire
/// crash-safety story. Snapshot writes must be atomic: a crashed write
/// must leave either the complete object or nothing (no snapshot object
/// may ever hold a torn image).
///
/// The registry serializes all calls (they happen under its commit
/// lock), so implementations need interior consistency, not interior
/// synchronization; `Send` is required because the registry itself is
/// shared across threads.
pub trait Store: Send {
    /// Appends one framed record to the log and makes it durable.
    fn append(&mut self, frame: &[u8]) -> Result<(), StorageError>;

    /// Reads the entire log image, header and all.
    fn read_log(&mut self) -> Result<Vec<u8>, StorageError>;

    /// Truncates the log to `len` bytes: the valid prefix after a torn
    /// tail, or `0` to discard it entirely after a snapshot (compaction).
    /// Truncating to zero re-initializes the log header.
    fn truncate_log(&mut self, len: u64) -> Result<(), StorageError>;

    /// Bytes currently in the log.
    fn log_bytes(&self) -> Result<u64, StorageError>;

    /// Durably writes the snapshot object for `generation` (atomic:
    /// complete or absent, never torn).
    fn write_snapshot(&mut self, generation: u64, image: &[u8]) -> Result<(), StorageError>;

    /// Reads the snapshot object for `generation`.
    fn read_snapshot(&mut self, generation: u64) -> Result<Vec<u8>, StorageError>;

    /// Lists stored snapshot generations in ascending order.
    fn list_snapshots(&mut self) -> Result<Vec<u64>, StorageError>;

    /// Removes the snapshot object for `generation` (old snapshots after
    /// a newer one is installed). Removing an absent object is not an
    /// error.
    fn remove_snapshot(&mut self, generation: u64) -> Result<(), StorageError>;

    /// Fault-injection counters, when this store injects faults.
    ///
    /// Real backends return `None` (the default); [`FaultStore`]
    /// overrides this so the registry can surface injected-fault
    /// telemetry without downcasting through `dyn Store`.
    fn fault_counters(&self) -> Option<FaultCounters> {
        None
    }
}

/// An in-memory [`Store`]: byte buffers with the exact semantics of
/// [`LocalStore`] minus the disk. For tests (crash points can be
/// simulated by truncating or flipping bytes in the log image) and for
/// ephemeral registries that want the WAL/snapshot machinery without a
/// filesystem.
#[derive(Debug, Default)]
pub struct MemoryStore {
    log: Vec<u8>,
    snapshots: std::collections::BTreeMap<u64, Vec<u8>>,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }

    /// The raw log image — for tests that simulate torn or corrupt
    /// tails before handing the store to `Registry::builder().store(…)`.
    pub fn log_image(&self) -> &[u8] {
        &self.log
    }

    /// Replaces the raw log image — the other half of crash simulation.
    pub fn set_log_image(&mut self, image: Vec<u8>) {
        self.log = image;
    }
}

impl Store for MemoryStore {
    fn append(&mut self, frame: &[u8]) -> Result<(), StorageError> {
        if self.log.is_empty() {
            self.log.extend_from_slice(&wal::encode_header());
        }
        self.log.extend_from_slice(frame);
        Ok(())
    }

    fn read_log(&mut self) -> Result<Vec<u8>, StorageError> {
        Ok(self.log.clone())
    }

    fn truncate_log(&mut self, len: u64) -> Result<(), StorageError> {
        self.log.truncate(len as usize);
        Ok(())
    }

    fn log_bytes(&self) -> Result<u64, StorageError> {
        Ok(self.log.len() as u64)
    }

    fn write_snapshot(&mut self, generation: u64, image: &[u8]) -> Result<(), StorageError> {
        self.snapshots.insert(generation, image.to_vec());
        Ok(())
    }

    fn read_snapshot(&mut self, generation: u64) -> Result<Vec<u8>, StorageError> {
        self.snapshots.get(&generation).cloned().ok_or_else(|| {
            StorageError::io(
                "read snapshot",
                io::Error::new(io::ErrorKind::NotFound, format!("no snapshot {generation}")),
            )
        })
    }

    fn list_snapshots(&mut self) -> Result<Vec<u64>, StorageError> {
        Ok(self.snapshots.keys().copied().collect())
    }

    fn remove_snapshot(&mut self, generation: u64) -> Result<(), StorageError> {
        self.snapshots.remove(&generation);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_log_lifecycle() {
        let mut store = MemoryStore::new();
        assert_eq!(store.log_bytes().unwrap(), 0);
        store.append(b"abc").unwrap();
        store.append(b"def").unwrap();
        let expected = wal::WAL_HEADER_LEN as u64 + 6;
        assert_eq!(store.log_bytes().unwrap(), expected);
        let image = store.read_log().unwrap();
        assert!(image.ends_with(b"abcdef"));
        store.truncate_log(expected - 3).unwrap();
        assert!(store.read_log().unwrap().ends_with(b"abc"));
        store.truncate_log(0).unwrap();
        assert_eq!(store.log_bytes().unwrap(), 0);
    }

    #[test]
    fn memory_store_snapshot_lifecycle() {
        let mut store = MemoryStore::new();
        assert!(store.list_snapshots().unwrap().is_empty());
        store.write_snapshot(3, b"three").unwrap();
        store.write_snapshot(9, b"nine").unwrap();
        assert_eq!(store.list_snapshots().unwrap(), vec![3, 9]);
        assert_eq!(store.read_snapshot(9).unwrap(), b"nine");
        assert!(store.read_snapshot(4).is_err());
        store.remove_snapshot(3).unwrap();
        store.remove_snapshot(3).unwrap(); // absent: not an error
        assert_eq!(store.list_snapshots().unwrap(), vec![9]);
    }
}
