//! Deterministic fault injection for [`Store`] backends.
//!
//! [`FaultStore`] wraps any inner store and consults a [`FaultSchedule`]
//! before every operation. The schedule is seeded and fully
//! reproducible: the same seed and the same sequence of store calls
//! produce the same injected faults, so a chaos run that finds a bug is
//! replayable from its seed alone.
//!
//! Three trigger shapes cover the failure modes that matter for a
//! log-structured store:
//!
//! * **fail-Nth** — exactly the `n`th call of an operation kind fails
//!   (deterministic single-shot faults: "the third fsync dies"),
//! * **intermittent** — each call independently fails with a fixed
//!   probability drawn from the seeded PRNG (flaky-disk emulation), and
//! * **always-after-K** — every call after the first `k` fails (a
//!   device that goes away and stays away).
//!
//! Appends can additionally fail *torn*: a PRNG-chosen strict prefix of
//! the frame is written to the inner store before the error surfaces,
//! which is exactly what a power cut mid-`write(2)` leaves behind. The
//! registry's retry path must truncate that garbage before appending
//! again or the log is unrecoverable past it — the chaos suite exists
//! to prove it does.
//!
//! A schedule handle is cheaply cloneable and shares its state: tests
//! keep a clone, let the wrapped registry degrade, then call
//! [`FaultSchedule::clear`] to "fix the disk" and watch the heal probe
//! bring the registry back.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use super::{StorageError, Store};

/// Cumulative counters for a [`FaultSchedule`]'s activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Store operations that consulted the schedule.
    pub ops: u64,
    /// Operations that had a fault injected.
    pub injected: u64,
    /// Injected append faults that left a torn partial frame behind.
    pub torn_appends: u64,
    /// Operations delayed by injected latency.
    pub delayed: u64,
}

/// The store operations a fault rule can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// [`Store::append`] — the per-commit durability write.
    Append,
    /// [`Store::read_log`] — recovery's full log read.
    ReadLog,
    /// [`Store::truncate_log`] — torn-tail repair and compaction.
    TruncateLog,
    /// [`Store::log_bytes`] — size probes.
    LogBytes,
    /// [`Store::write_snapshot`] — compaction's snapshot install.
    WriteSnapshot,
    /// [`Store::read_snapshot`] — recovery's snapshot load.
    ReadSnapshot,
    /// [`Store::list_snapshots`] — recovery's snapshot discovery.
    ListSnapshots,
    /// [`Store::remove_snapshot`] — old-snapshot cleanup.
    RemoveSnapshot,
}

impl OpKind {
    const COUNT: usize = 8;

    fn index(self) -> usize {
        match self {
            OpKind::Append => 0,
            OpKind::ReadLog => 1,
            OpKind::TruncateLog => 2,
            OpKind::LogBytes => 3,
            OpKind::WriteSnapshot => 4,
            OpKind::ReadSnapshot => 5,
            OpKind::ListSnapshots => 6,
            OpKind::RemoveSnapshot => 7,
        }
    }

    /// The `op` string injected errors carry, matching what the real
    /// backends pass to `StorageError::io` for the same operation.
    fn op_name(self) -> &'static str {
        match self {
            OpKind::Append => "append",
            OpKind::ReadLog => "read log",
            OpKind::TruncateLog => "truncate log",
            OpKind::LogBytes => "log bytes",
            OpKind::WriteSnapshot => "write snapshot",
            OpKind::ReadSnapshot => "read snapshot",
            OpKind::ListSnapshots => "list snapshots",
            OpKind::RemoveSnapshot => "remove snapshot",
        }
    }
}

/// What an armed rule injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A transient I/O error ([`StorageError::is_transient`] holds) — a
    /// retry may succeed.
    Transient,
    /// A permanent I/O error — retries are pointless and the registry
    /// should degrade immediately.
    Permanent,
    /// Append only: write a PRNG-chosen strict prefix of the frame to
    /// the inner store, then fail with a transient error — a torn
    /// write. On non-append operations this behaves like
    /// [`Fault::Transient`].
    Torn,
}

#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// Exactly the `n`th call (1-based).
    Nth(u64),
    /// Each call independently, with probability `per_mille`/1000.
    Intermittent(u32),
    /// Every call strictly after the first `k`.
    AfterK(u64),
}

#[derive(Debug, Clone, Copy)]
struct Rule {
    trigger: Trigger,
    fault: Fault,
}

struct ScheduleState {
    rng: u64,
    rules: [Vec<Rule>; OpKind::COUNT],
    calls: [u64; OpKind::COUNT],
    latency: [Option<Duration>; OpKind::COUNT],
}

/// splitmix64 — tiny, seedable, std-only, and plenty for fault dice.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Inner {
    state: Mutex<ScheduleState>,
    ops: AtomicU64,
    injected: AtomicU64,
    torn_appends: AtomicU64,
    delayed: AtomicU64,
}

/// A seeded, shared, reproducible schedule of storage faults.
///
/// Handles are `Clone` and share state: arming a rule through one
/// handle affects every [`FaultStore`] driven by a clone, and
/// [`FaultSchedule::clear`] heals them all at once.
#[derive(Clone)]
pub struct FaultSchedule {
    inner: Arc<Inner>,
}

/// What the schedule decided for one operation.
struct Decision {
    fault: Option<Fault>,
    /// PRNG draw for torn-write cut points, fixed at decision time so
    /// the cut is reproducible.
    roll: u64,
    delay: Option<Duration>,
}

impl FaultSchedule {
    /// An empty schedule (no faults, no latency) seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            inner: Arc::new(Inner {
                state: Mutex::new(ScheduleState {
                    rng: seed,
                    rules: Default::default(),
                    calls: [0; OpKind::COUNT],
                    latency: [None; OpKind::COUNT],
                }),
                ops: AtomicU64::new(0),
                injected: AtomicU64::new(0),
                torn_appends: AtomicU64::new(0),
                delayed: AtomicU64::new(0),
            }),
        }
    }

    fn arm(self, op: OpKind, trigger: Trigger, fault: Fault) -> Self {
        self.inner.state.lock().expect("fault schedule lock").rules[op.index()]
            .push(Rule { trigger, fault });
        self
    }

    /// Arms a rule that fires on exactly the `n`th call (1-based) of
    /// `op`, counted from schedule creation or the last [`clear`].
    ///
    /// [`clear`]: FaultSchedule::clear
    pub fn fail_nth(self, op: OpKind, n: u64, fault: Fault) -> Self {
        self.arm(op, Trigger::Nth(n), fault)
    }

    /// Arms a rule that fires on each call of `op` independently with
    /// probability `per_mille`/1000, drawn from the seeded PRNG.
    pub fn intermittent(self, op: OpKind, per_mille: u32, fault: Fault) -> Self {
        self.arm(op, Trigger::Intermittent(per_mille), fault)
    }

    /// Arms a rule that fires on every call of `op` strictly after the
    /// first `k`.
    pub fn always_after(self, op: OpKind, k: u64, fault: Fault) -> Self {
        self.arm(op, Trigger::AfterK(k), fault)
    }

    /// Injects `delay` of latency before every call of `op`.
    pub fn latency(self, op: OpKind, delay: Duration) -> Self {
        self.inner
            .state
            .lock()
            .expect("fault schedule lock")
            .latency[op.index()] = Some(delay);
        self
    }

    /// Disarms every rule and latency injection and resets the per-op
    /// call counts — "the disk got replaced". Cumulative counters are
    /// kept.
    pub fn clear(&self) {
        let mut state = self.inner.state.lock().expect("fault schedule lock");
        state.rules = Default::default();
        state.latency = [None; OpKind::COUNT];
        state.calls = [0; OpKind::COUNT];
    }

    /// A snapshot of the cumulative fault counters.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            ops: self.inner.ops.load(Ordering::Relaxed),
            injected: self.inner.injected.load(Ordering::Relaxed),
            torn_appends: self.inner.torn_appends.load(Ordering::Relaxed),
            delayed: self.inner.delayed.load(Ordering::Relaxed),
        }
    }

    fn decide(&self, op: OpKind) -> Decision {
        self.inner.ops.fetch_add(1, Ordering::Relaxed);
        let mut state = self.inner.state.lock().expect("fault schedule lock");
        let idx = op.index();
        state.calls[idx] += 1;
        let call = state.calls[idx];
        let delay = state.latency[idx];
        let mut fired = None;
        for i in 0..state.rules[idx].len() {
            let rule = state.rules[idx][i];
            let fires = match rule.trigger {
                Trigger::Nth(n) => call == n,
                Trigger::Intermittent(per_mille) => {
                    (splitmix64(&mut state.rng) % 1000) < u64::from(per_mille)
                }
                Trigger::AfterK(k) => call > k,
            };
            if fires {
                fired = Some(rule.fault);
                break;
            }
        }
        let roll = splitmix64(&mut state.rng);
        drop(state);
        if fired.is_some() {
            self.inner.injected.fetch_add(1, Ordering::Relaxed);
        }
        if delay.is_some() {
            self.inner.delayed.fetch_add(1, Ordering::Relaxed);
        }
        Decision {
            fault: fired,
            roll,
            delay,
        }
    }

    fn injected_error(&self, op: OpKind, fault: Fault) -> StorageError {
        let source = match fault {
            Fault::Permanent => io::Error::other("injected fault"),
            Fault::Transient | Fault::Torn => {
                io::Error::new(io::ErrorKind::Interrupted, "injected fault")
            }
        };
        StorageError::io(op.op_name(), source)
    }
}

impl fmt::Debug for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultSchedule")
            .field("counters", &self.counters())
            .finish()
    }
}

/// A [`Store`] wrapper that injects faults from a [`FaultSchedule`]
/// before delegating to the inner store.
#[derive(Debug)]
pub struct FaultStore<S: Store> {
    inner: S,
    schedule: FaultSchedule,
}

impl<S: Store> FaultStore<S> {
    /// Wraps `inner`, driving faults from `schedule`.
    pub fn new(inner: S, schedule: FaultSchedule) -> Self {
        FaultStore { inner, schedule }
    }

    /// The driving schedule (clone it to keep control after handing the
    /// store to a registry).
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Consumes the wrapper, returning the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn gate(&self, op: OpKind) -> Result<(), StorageError> {
        let decision = self.schedule.decide(op);
        if let Some(delay) = decision.delay {
            std::thread::sleep(delay);
        }
        match decision.fault {
            Some(fault) => Err(self.schedule.injected_error(op, fault)),
            None => Ok(()),
        }
    }
}

impl<S: Store> Store for FaultStore<S> {
    fn append(&mut self, frame: &[u8]) -> Result<(), StorageError> {
        let decision = self.schedule.decide(OpKind::Append);
        if let Some(delay) = decision.delay {
            std::thread::sleep(delay);
        }
        match decision.fault {
            None => self.inner.append(frame),
            Some(Fault::Torn) if !frame.is_empty() => {
                // A torn write: a strict prefix reaches the store, then
                // the error surfaces. cut == 0 degenerates to a clean
                // failure, which is also a legitimate crash shape.
                let cut = (decision.roll % frame.len() as u64) as usize;
                if cut > 0 {
                    self.schedule
                        .inner
                        .torn_appends
                        .fetch_add(1, Ordering::Relaxed);
                    self.inner.append(&frame[..cut])?;
                }
                Err(self.schedule.injected_error(OpKind::Append, Fault::Torn))
            }
            Some(fault) => Err(self.schedule.injected_error(OpKind::Append, fault)),
        }
    }

    fn read_log(&mut self) -> Result<Vec<u8>, StorageError> {
        self.gate(OpKind::ReadLog)?;
        self.inner.read_log()
    }

    fn truncate_log(&mut self, len: u64) -> Result<(), StorageError> {
        self.gate(OpKind::TruncateLog)?;
        self.inner.truncate_log(len)
    }

    fn log_bytes(&self) -> Result<u64, StorageError> {
        self.gate(OpKind::LogBytes)?;
        self.inner.log_bytes()
    }

    fn write_snapshot(&mut self, generation: u64, image: &[u8]) -> Result<(), StorageError> {
        self.gate(OpKind::WriteSnapshot)?;
        self.inner.write_snapshot(generation, image)
    }

    fn read_snapshot(&mut self, generation: u64) -> Result<Vec<u8>, StorageError> {
        self.gate(OpKind::ReadSnapshot)?;
        self.inner.read_snapshot(generation)
    }

    fn list_snapshots(&mut self) -> Result<Vec<u64>, StorageError> {
        self.gate(OpKind::ListSnapshots)?;
        self.inner.list_snapshots()
    }

    fn remove_snapshot(&mut self, generation: u64) -> Result<(), StorageError> {
        self.gate(OpKind::RemoveSnapshot)?;
        self.inner.remove_snapshot(generation)
    }

    fn fault_counters(&self) -> Option<FaultCounters> {
        Some(self.schedule.counters())
    }
}

#[cfg(test)]
mod tests {
    use super::super::MemoryStore;
    use super::*;

    #[test]
    fn fail_nth_hits_exactly_the_nth_call() {
        let schedule = FaultSchedule::new(7).fail_nth(OpKind::Append, 2, Fault::Transient);
        let mut store = FaultStore::new(MemoryStore::new(), schedule);
        store.append(b"one").unwrap();
        let err = store.append(b"two").unwrap_err();
        assert!(err.is_transient());
        store.append(b"three").unwrap();
        let counters = store.fault_counters().unwrap();
        assert_eq!(counters.ops, 3);
        assert_eq!(counters.injected, 1);
    }

    #[test]
    fn always_after_k_fails_everything_past_the_threshold() {
        let schedule = FaultSchedule::new(7).always_after(OpKind::LogBytes, 1, Fault::Permanent);
        let store = FaultStore::new(MemoryStore::new(), schedule);
        assert!(store.log_bytes().is_ok());
        let err = store.log_bytes().unwrap_err();
        assert!(!err.is_transient());
        assert!(store.log_bytes().is_err());
    }

    #[test]
    fn intermittent_faults_are_reproducible_from_the_seed() {
        let outcomes = |seed: u64| -> Vec<bool> {
            let schedule =
                FaultSchedule::new(seed).intermittent(OpKind::Append, 400, Fault::Transient);
            let mut store = FaultStore::new(MemoryStore::new(), schedule);
            (0..32).map(|_| store.append(b"x").is_err()).collect()
        };
        let first = outcomes(99);
        assert_eq!(first, outcomes(99), "same seed must replay identically");
        assert!(first.iter().any(|fired| *fired));
        assert!(first.iter().any(|fired| !*fired));
        assert_ne!(first, outcomes(100), "different seed should diverge");
    }

    #[test]
    fn torn_append_leaves_a_strict_prefix_behind() {
        // Scan seeds until one produces a non-empty cut so the test
        // asserts the interesting shape deterministically.
        for seed in 0..64 {
            let schedule = FaultSchedule::new(seed).fail_nth(OpKind::Append, 1, Fault::Torn);
            let mut store = FaultStore::new(MemoryStore::new(), schedule);
            let frame = [0xABu8; 64];
            let err = store.append(&frame).unwrap_err();
            assert!(err.is_transient(), "torn writes are transient");
            let written = store.fault_counters().unwrap().torn_appends;
            let inner = store.into_inner();
            if written == 1 {
                // Header + a strict prefix of the frame, never the whole
                // frame.
                assert!(!inner.log_image().is_empty());
                assert!(inner.log_image().len() < super::super::wal::WAL_HEADER_LEN + frame.len());
                return;
            }
            assert!(inner.log_image().is_empty(), "cut of zero writes nothing");
        }
        panic!("no seed in 0..64 produced a torn prefix");
    }

    #[test]
    fn clear_heals_and_resets_call_counts() {
        let schedule = FaultSchedule::new(3).always_after(OpKind::Append, 0, Fault::Transient);
        let handle = schedule.clone();
        let mut store = FaultStore::new(MemoryStore::new(), schedule);
        assert!(store.append(b"x").is_err());
        handle.clear();
        store.append(b"x").unwrap();
        let counters = handle.counters();
        assert_eq!(counters.injected, 1);
        assert_eq!(counters.ops, 2);
    }

    #[test]
    fn latency_is_injected_and_counted() {
        let schedule = FaultSchedule::new(1).latency(OpKind::Append, Duration::from_millis(1));
        let mut store = FaultStore::new(MemoryStore::new(), schedule);
        let started = std::time::Instant::now();
        store.append(b"x").unwrap();
        assert!(started.elapsed() >= Duration::from_millis(1));
        assert_eq!(store.fault_counters().unwrap().delayed, 1);
    }
}
