//! Registry observability: one coherent snapshot of state and counters.

use std::fmt;

/// A point-in-time snapshot of the registry. The sizes and the merged
/// view's shape are read coherently (one read-lock acquisition, so they
/// describe the same generation); the engine counters are monotone
/// relaxed atomics sampled alongside — under concurrent writers they may
/// run slightly ahead of or behind the locked fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Monotone commit counter; bumped by every successful `put`/`delete`.
    pub generation: u64,
    /// Current member count.
    pub members: usize,
    /// Total immutable versions across all members.
    pub total_versions: usize,
    /// Classes in the merged proper schema.
    pub merged_classes: usize,
    /// Arrows (closed) in the merged proper schema.
    pub merged_arrows: usize,
    /// Strict specialization pairs in the merged proper schema.
    pub merged_specializations: usize,
    /// Implicit classes completion introduced in the merged view.
    pub implicit_classes: usize,
    /// Canonical content hash of the merged proper schema.
    pub merged_hash: u64,
    /// Commits that reused a cached rest-join (the incremental path).
    pub incremental_merges: u64,
    /// Commits that re-joined every member from scratch.
    pub full_merges: u64,
    /// Publishes dropped because the content hash was unchanged.
    pub noop_puts: u64,
    /// Publishes rejected as incompatible/inconsistent.
    pub rejected_puts: u64,
    /// Join-cache hits.
    pub cache_hits: u64,
    /// Join-cache misses.
    pub cache_misses: u64,
    /// Join-cache evictions.
    pub cache_evictions: u64,
    /// Join-cache resident entries.
    pub cache_entries: usize,
    /// Optimistic commit attempts that lost the generation race and
    /// retried.
    pub commit_retries: u64,
    /// Whole seconds since this registry instance was opened.
    pub uptime_secs: u64,
    /// Requests this registry has served, as noted by its front end
    /// ([`crate::Registry::note_request`]); monotone, zero when nothing
    /// calls it (e.g. embedded library use).
    pub requests_served: u64,
    /// Whether the registry has a persistence layer (a WAL + snapshot
    /// store). All fields below are zero when it does not.
    pub persistent: bool,
    /// Records currently in the write-ahead log (since the last
    /// compaction).
    pub wal_records: u64,
    /// Bytes currently in the write-ahead log.
    pub wal_bytes: u64,
    /// Generation captured by the newest snapshot (0 = none yet).
    pub snapshot_generation: u64,
    /// Bytes of the newest snapshot object.
    pub snapshot_bytes: u64,
    /// Snapshots written by this process (the session counter, like the
    /// merge counters; it restarts at zero on reopen).
    pub snapshots_written: u64,
    /// Whether the registry is in degraded read-only mode (storage
    /// failures exhausted the retry budget; writes rejected with
    /// `E-DEGRADED` until a probe heals the store).
    pub degraded: bool,
    /// Commit-path storage retries performed under the retry policy.
    pub storage_retries: u64,
}

impl RegistryStats {
    /// Renders the snapshot as one JSON object with a pinned field
    /// order (declaration order). Mirroring [`fmt::Display`], the
    /// durability fields are emitted only when `persistent` is true —
    /// an in-memory registry reports no WAL or snapshot numbers rather
    /// than a misleading row of zeros.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        out.push_str(&format!("\"generation\": {}", self.generation));
        out.push_str(&format!(", \"members\": {}", self.members));
        out.push_str(&format!(", \"total_versions\": {}", self.total_versions));
        out.push_str(&format!(", \"merged_classes\": {}", self.merged_classes));
        out.push_str(&format!(", \"merged_arrows\": {}", self.merged_arrows));
        out.push_str(&format!(
            ", \"merged_specializations\": {}",
            self.merged_specializations
        ));
        out.push_str(&format!(
            ", \"implicit_classes\": {}",
            self.implicit_classes
        ));
        out.push_str(&format!(", \"merged_hash\": \"{:016x}\"", self.merged_hash));
        out.push_str(&format!(
            ", \"incremental_merges\": {}",
            self.incremental_merges
        ));
        out.push_str(&format!(", \"full_merges\": {}", self.full_merges));
        out.push_str(&format!(", \"noop_puts\": {}", self.noop_puts));
        out.push_str(&format!(", \"rejected_puts\": {}", self.rejected_puts));
        out.push_str(&format!(", \"cache_hits\": {}", self.cache_hits));
        out.push_str(&format!(", \"cache_misses\": {}", self.cache_misses));
        out.push_str(&format!(", \"cache_evictions\": {}", self.cache_evictions));
        out.push_str(&format!(", \"cache_entries\": {}", self.cache_entries));
        out.push_str(&format!(", \"commit_retries\": {}", self.commit_retries));
        out.push_str(&format!(", \"uptime_secs\": {}", self.uptime_secs));
        out.push_str(&format!(", \"requests_served\": {}", self.requests_served));
        out.push_str(&format!(", \"persistent\": {}", self.persistent));
        if self.persistent {
            out.push_str(&format!(", \"wal_records\": {}", self.wal_records));
            out.push_str(&format!(", \"wal_bytes\": {}", self.wal_bytes));
            out.push_str(&format!(
                ", \"snapshot_generation\": {}",
                self.snapshot_generation
            ));
            out.push_str(&format!(", \"snapshot_bytes\": {}", self.snapshot_bytes));
            out.push_str(&format!(
                ", \"snapshots_written\": {}",
                self.snapshots_written
            ));
            out.push_str(&format!(", \"degraded\": {}", self.degraded));
            out.push_str(&format!(", \"storage_retries\": {}", self.storage_retries));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for RegistryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "generation {} | members {} | versions {}",
            self.generation, self.members, self.total_versions
        )?;
        writeln!(
            f,
            "merged: {} classes, {} arrows, {} specializations, {} implicit, hash {:016x}",
            self.merged_classes,
            self.merged_arrows,
            self.merged_specializations,
            self.implicit_classes,
            self.merged_hash,
        )?;
        writeln!(
            f,
            "merges: {} incremental, {} full, {} no-op, {} rejected, {} commit retries",
            self.incremental_merges,
            self.full_merges,
            self.noop_puts,
            self.rejected_puts,
            self.commit_retries,
        )?;
        writeln!(
            f,
            "join cache: {} entries, {} hits, {} misses, {} evictions",
            self.cache_entries, self.cache_hits, self.cache_misses, self.cache_evictions,
        )?;
        write!(
            f,
            "service: up {} s, {} requests served",
            self.uptime_secs, self.requests_served,
        )?;
        if self.persistent {
            write!(
                f,
                "\ndurability: wal {} records ({} B), snapshot gen {} ({} B), {} written this run",
                self.wal_records,
                self.wal_bytes,
                self.snapshot_generation,
                self.snapshot_bytes,
                self.snapshots_written,
            )?;
            write!(
                f,
                "\nhealth: {}, {} storage retries",
                if self.degraded {
                    "degraded (read-only)"
                } else {
                    "ok"
                },
                self.storage_retries,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RegistryStats {
        RegistryStats {
            generation: 7,
            members: 3,
            total_versions: 9,
            merged_classes: 11,
            merged_arrows: 13,
            merged_specializations: 2,
            implicit_classes: 1,
            merged_hash: 0x00ab_cdef_0123_4567,
            incremental_merges: 5,
            full_merges: 2,
            noop_puts: 1,
            rejected_puts: 0,
            cache_hits: 5,
            cache_misses: 2,
            cache_evictions: 0,
            cache_entries: 4,
            commit_retries: 1,
            uptime_secs: 42,
            requests_served: 100,
            persistent: false,
            wal_records: 0,
            wal_bytes: 0,
            snapshot_generation: 0,
            snapshot_bytes: 0,
            snapshots_written: 0,
            degraded: false,
            storage_retries: 0,
        }
    }

    /// The JSON field order is part of the wire contract: clients parse
    /// positionally at their peril, but goldens and diffs depend on it
    /// being stable, so it is pinned here verbatim.
    #[test]
    fn json_field_order_is_pinned() {
        let json = sample().to_json();
        assert_eq!(
            json,
            "{\"generation\": 7, \"members\": 3, \"total_versions\": 9, \
             \"merged_classes\": 11, \"merged_arrows\": 13, \
             \"merged_specializations\": 2, \"implicit_classes\": 1, \
             \"merged_hash\": \"00abcdef01234567\", \
             \"incremental_merges\": 5, \"full_merges\": 2, \
             \"noop_puts\": 1, \"rejected_puts\": 0, \"cache_hits\": 5, \
             \"cache_misses\": 2, \"cache_evictions\": 0, \
             \"cache_entries\": 4, \"commit_retries\": 1, \
             \"uptime_secs\": 42, \"requests_served\": 100, \
             \"persistent\": false}"
        );
    }

    /// Durability fields appear exactly when `persistent` — the JSON
    /// mirrors the Display gating instead of printing dead zeros.
    #[test]
    fn json_gates_durability_fields_on_persistent() {
        let mut stats = sample();
        assert!(!stats.to_json().contains("wal_records"));

        stats.persistent = true;
        stats.wal_records = 12;
        stats.wal_bytes = 3456;
        stats.snapshot_generation = 5;
        stats.snapshot_bytes = 789;
        stats.snapshots_written = 2;
        stats.storage_retries = 4;
        let json = stats.to_json();
        assert!(json.ends_with(
            "\"persistent\": true, \"wal_records\": 12, \"wal_bytes\": 3456, \
             \"snapshot_generation\": 5, \"snapshot_bytes\": 789, \
             \"snapshots_written\": 2, \"degraded\": false, \
             \"storage_retries\": 4}"
        ));
    }

    #[test]
    fn display_gates_durability_and_reports_service_line() {
        let mut stats = sample();
        let text = stats.to_string();
        assert!(text.contains("service: up 42 s, 100 requests served"));
        assert!(!text.contains("durability:"));
        stats.persistent = true;
        assert!(stats.to_string().contains("durability:"));
    }
}
