//! Registry observability: one coherent snapshot of state and counters.

use std::fmt;

/// A point-in-time snapshot of the registry. The sizes and the merged
/// view's shape are read coherently (one read-lock acquisition, so they
/// describe the same generation); the engine counters are monotone
/// relaxed atomics sampled alongside — under concurrent writers they may
/// run slightly ahead of or behind the locked fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Monotone commit counter; bumped by every successful `put`/`delete`.
    pub generation: u64,
    /// Current member count.
    pub members: usize,
    /// Total immutable versions across all members.
    pub total_versions: usize,
    /// Classes in the merged proper schema.
    pub merged_classes: usize,
    /// Arrows (closed) in the merged proper schema.
    pub merged_arrows: usize,
    /// Strict specialization pairs in the merged proper schema.
    pub merged_specializations: usize,
    /// Implicit classes completion introduced in the merged view.
    pub implicit_classes: usize,
    /// Canonical content hash of the merged proper schema.
    pub merged_hash: u64,
    /// Commits that reused a cached rest-join (the incremental path).
    pub incremental_merges: u64,
    /// Commits that re-joined every member from scratch.
    pub full_merges: u64,
    /// Publishes dropped because the content hash was unchanged.
    pub noop_puts: u64,
    /// Publishes rejected as incompatible/inconsistent.
    pub rejected_puts: u64,
    /// Join-cache hits.
    pub cache_hits: u64,
    /// Join-cache misses.
    pub cache_misses: u64,
    /// Join-cache evictions.
    pub cache_evictions: u64,
    /// Join-cache resident entries.
    pub cache_entries: usize,
    /// Optimistic commit attempts that lost the generation race and
    /// retried.
    pub commit_retries: u64,
    /// Whether the registry has a persistence layer (a WAL + snapshot
    /// store). All fields below are zero when it does not.
    pub persistent: bool,
    /// Records currently in the write-ahead log (since the last
    /// compaction).
    pub wal_records: u64,
    /// Bytes currently in the write-ahead log.
    pub wal_bytes: u64,
    /// Generation captured by the newest snapshot (0 = none yet).
    pub snapshot_generation: u64,
    /// Bytes of the newest snapshot object.
    pub snapshot_bytes: u64,
    /// Snapshots written by this process (the session counter, like the
    /// merge counters; it restarts at zero on reopen).
    pub snapshots_written: u64,
}

impl fmt::Display for RegistryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "generation {} | members {} | versions {}",
            self.generation, self.members, self.total_versions
        )?;
        writeln!(
            f,
            "merged: {} classes, {} arrows, {} specializations, {} implicit, hash {:016x}",
            self.merged_classes,
            self.merged_arrows,
            self.merged_specializations,
            self.implicit_classes,
            self.merged_hash,
        )?;
        writeln!(
            f,
            "merges: {} incremental, {} full, {} no-op, {} rejected, {} commit retries",
            self.incremental_merges,
            self.full_merges,
            self.noop_puts,
            self.rejected_puts,
            self.commit_retries,
        )?;
        write!(
            f,
            "join cache: {} entries, {} hits, {} misses, {} evictions",
            self.cache_entries, self.cache_hits, self.cache_misses, self.cache_evictions,
        )?;
        if self.persistent {
            write!(
                f,
                "\ndurability: wal {} records ({} B), snapshot gen {} ({} B), {} written this run",
                self.wal_records,
                self.wal_bytes,
                self.snapshot_generation,
                self.snapshot_bytes,
                self.snapshots_written,
            )?;
        }
        Ok(())
    }
}
