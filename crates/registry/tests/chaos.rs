//! Chaos differential suite: seeded fault schedules against a
//! never-faulted reference registry.
//!
//! Every scenario drives a faulty durable registry and an in-memory
//! reference with the same op stream, applying each commit to the
//! reference only when the faulty registry acknowledged it. The
//! invariants, checked after every op and again after a simulated
//! crash-and-reopen:
//!
//! * **No acked commit is lost** — the recovered registry equals the
//!   reference fed exactly the acked commits.
//! * **Storage failure degrades, never panics** — a registry that
//!   exhausts its retry budget turns read-only (`E-DEGRADED`) and keeps
//!   serving reads.
//! * **Healing restores service** — once the schedule is cleared, the
//!   probe brings the registry back and the post-heal merged view
//!   equals the reference.
//! * **`health()` reflects the transitions** — degrade/heal events and
//!   injected-fault counters are visible.
//!
//! Seeds are pinned (override with `SMERGE_CHAOS_SEEDS=1,2,3`), and
//! every assertion message carries the seed so CI failures are
//! replayable.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use schema_merge_core::WeakSchema;
use schema_merge_registry::storage::{
    Fault, FaultSchedule, FaultStore, MemoryStore, OpKind, StorageError, Store,
};
use schema_merge_registry::{Registry, RegistryError, RetryPolicy};
use schema_merge_workload::{schema_family, SchemaParams};

/// The default seed set the CI chaos job runs. Failures print the seed;
/// reproduce locally with `SMERGE_CHAOS_SEEDS=<seed> cargo test -p
/// schema-merge-registry --test chaos`.
const PINNED_SEEDS: [u64; 6] = [1, 7, 42, 1992, 0xC0FFEE, 0x5EED_5EED];

fn seeds() -> Vec<u64> {
    match std::env::var("SMERGE_CHAOS_SEEDS") {
        Ok(csv) => csv
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad seed in SMERGE_CHAOS_SEEDS: `{s}`"))
            })
            .collect(),
        Err(_) => PINNED_SEEDS.to_vec(),
    }
}

/// splitmix64 — the workload dice, independent of the schedule's PRNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`MemoryStore`] behind a shared handle: drop the registry (the
/// "crash"), keep the bytes (the "disk"), reopen on them.
#[derive(Clone, Default)]
struct SharedStore(Arc<Mutex<MemoryStore>>);

impl Store for SharedStore {
    fn append(&mut self, frame: &[u8]) -> Result<(), StorageError> {
        self.0.lock().unwrap().append(frame)
    }
    fn read_log(&mut self) -> Result<Vec<u8>, StorageError> {
        self.0.lock().unwrap().read_log()
    }
    fn truncate_log(&mut self, len: u64) -> Result<(), StorageError> {
        self.0.lock().unwrap().truncate_log(len)
    }
    fn log_bytes(&self) -> Result<u64, StorageError> {
        self.0.lock().unwrap().log_bytes()
    }
    fn write_snapshot(&mut self, generation: u64, image: &[u8]) -> Result<(), StorageError> {
        self.0.lock().unwrap().write_snapshot(generation, image)
    }
    fn read_snapshot(&mut self, generation: u64) -> Result<Vec<u8>, StorageError> {
        self.0.lock().unwrap().read_snapshot(generation)
    }
    fn list_snapshots(&mut self) -> Result<Vec<u64>, StorageError> {
        self.0.lock().unwrap().list_snapshots()
    }
    fn remove_snapshot(&mut self, generation: u64) -> Result<(), StorageError> {
        self.0.lock().unwrap().remove_snapshot(generation)
    }
}

const MEMBERS: usize = 4;
const VARIANTS: usize = 3;

fn pool(seed: u64) -> Vec<WeakSchema> {
    let params = SchemaParams {
        vocabulary: 14,
        classes: 6,
        labels: 4,
        arrows: 5,
        specializations: 2,
        seed,
    };
    schema_family(&params, MEMBERS * VARIANTS)
}

/// A fast retry policy: real backoff discipline, test-friendly waits.
fn test_policy(retries: u32) -> RetryPolicy {
    RetryPolicy::new(retries)
        .initial_backoff(Duration::from_millis(1))
        .max_backoff(Duration::from_millis(4))
}

/// Asserts the two registries expose the same observable state.
fn assert_same_view(seed: u64, faulty: &Registry, reference: &Registry) {
    let (a, b) = (faulty.merged(), reference.merged());
    assert_eq!(
        a.proper.as_ref(),
        b.proper.as_ref(),
        "seed {seed}: merged views diverged"
    );
    assert_eq!(
        a.generation, b.generation,
        "seed {seed}: generations diverged"
    );
    assert_eq!(faulty.list(), reference.list(), "seed {seed}: member lists");
}

/// One chaos run: a flaky-disk workload under retries, a permanent
/// outage that must degrade (not panic), a heal, and a crash-reopen.
fn run_chaos(seed: u64) {
    let schemas = pool(seed);
    let disk = SharedStore::default();
    let schedule = FaultSchedule::new(seed)
        .intermittent(OpKind::Append, 200, Fault::Transient)
        .intermittent(OpKind::Append, 100, Fault::Torn);
    let faulty = Registry::builder()
        .store(FaultStore::new(disk.clone(), schedule.clone()))
        .retry_policy(test_policy(6))
        .snapshot_every(0)
        .open()
        .unwrap_or_else(|err| panic!("seed {seed}: open failed: {err}"));
    let reference = Registry::new();

    // Phase A — flaky disk: transient and torn append faults under a
    // retry budget. Commits may still fail (a deterministic unlucky
    // streak); a failed commit is simply unacked and must be absent
    // from BOTH registries.
    let mut dice = seed ^ 0xD1CE;
    for step in 0..40u64 {
        let roll = splitmix64(&mut dice);
        let member = format!("member-{}", roll as usize % MEMBERS);
        let result = if roll % 5 == 4 {
            faulty.delete(&member).map(|_| ())
        } else {
            let variant = (roll >> 8) as usize % VARIANTS;
            let schema = schemas[(roll as usize % MEMBERS) * VARIANTS + variant].clone();
            match faulty.put(&member, schema.clone()) {
                Ok(_) => {
                    reference
                        .put(&member, schema)
                        .unwrap_or_else(|err| panic!("seed {seed} step {step}: {err}"));
                    assert_same_view(seed, &faulty, &reference);
                    continue;
                }
                Err(err) => Err(err),
            }
        };
        match result {
            Ok(()) => {
                reference
                    .delete(&member)
                    .unwrap_or_else(|err| panic!("seed {seed} step {step}: {err}"));
            }
            Err(RegistryError::Storage(_)) | Err(RegistryError::Degraded { .. }) => {
                // Unacked (or rejected while degraded): applies to
                // neither registry. Give the registry a chance to heal
                // for the next step — the disk is only *flaky*, so the
                // probe should succeed.
                faulty.probe_now();
            }
            Err(err) => {
                // Member-level errors (e.g. deleting an absent member)
                // must reproduce identically on the reference.
                let mirror = reference.delete(&member);
                assert_eq!(
                    mirror.unwrap_err().to_string(),
                    err.to_string(),
                    "seed {seed} step {step}: divergent non-storage error"
                );
            }
        }
        assert_same_view(seed, &faulty, &reference);
    }

    // Ensure at least one acked commit exists before the outage.
    schedule.clear();
    assert!(faulty.probe_now(), "seed {seed}: clean disk must heal");
    faulty.put("anchor", schemas[0].clone()).unwrap();
    reference.put("anchor", schemas[0].clone()).unwrap();
    let retries_before_outage = faulty.health().storage_retries;

    // Phase B — the disk goes away and stays away: degrade, don't
    // panic. LogBytes is faulted too so the heal probe keeps failing.
    let _ = schedule
        .clone()
        .always_after(OpKind::Append, 0, Fault::Permanent)
        .always_after(OpKind::LogBytes, 0, Fault::Permanent);
    let err = faulty
        .put("outage", schemas[1].clone())
        .expect_err("seed {seed}: append on a dead disk must fail");
    assert!(
        matches!(err, RegistryError::Storage(_)),
        "seed {seed}: expected a storage error, got {err}"
    );
    assert!(faulty.is_degraded(), "seed {seed}: must degrade");
    assert!(
        !faulty.probe_now(),
        "seed {seed}: probe must fail while dead"
    );

    // Reads keep serving; writes are rejected with the stable code.
    assert_same_view(seed, &faulty, &reference);
    let rejected = faulty.put("outage", schemas[1].clone()).unwrap_err();
    assert_eq!(rejected.code(), Some("E-DEGRADED"), "seed {seed}");
    assert!(
        rejected.to_string().contains("E-DEGRADED"),
        "seed {seed}: {rejected}"
    );
    assert!(
        matches!(rejected, RegistryError::Degraded { .. }),
        "seed {seed}"
    );

    let health = faulty.health();
    assert_eq!(health.state(), "degraded", "seed {seed}");
    assert!(health.degraded, "seed {seed}");
    assert!(health.degrade_events >= 1, "seed {seed}: {health:?}");
    assert!(health.last_storage_error.is_some(), "seed {seed}");
    let counters = health
        .fault_counters
        .unwrap_or_else(|| panic!("seed {seed}: fault store must expose counters"));
    assert!(counters.injected >= 1, "seed {seed}: {counters:?}");

    // Phase C — fix the disk: the probe heals, writes land again, and
    // the view converges with the reference.
    schedule.clear();
    assert!(faulty.probe_now(), "seed {seed}: probe must heal");
    assert!(!faulty.is_degraded(), "seed {seed}");
    faulty.put("outage", schemas[1].clone()).unwrap();
    reference.put("outage", schemas[1].clone()).unwrap();
    assert_same_view(seed, &faulty, &reference);

    let healed = faulty.health();
    assert_eq!(healed.state(), "ok", "seed {seed}");
    assert!(healed.heal_events >= 1, "seed {seed}: {healed:?}");
    assert!(
        healed.storage_retries >= retries_before_outage,
        "seed {seed}"
    );

    // Crash: drop all in-memory state; only the disk bytes survive.
    // Recovery must reproduce exactly the acked commits.
    drop(faulty);
    let recovered = Registry::builder()
        .store(disk)
        .open()
        .unwrap_or_else(|err| panic!("seed {seed}: recovery failed: {err}"));
    assert_same_view(seed, &recovered, &reference);
}

#[test]
fn chaos_differential_under_seeded_fault_schedules() {
    for seed in seeds() {
        run_chaos(seed);
    }
}

/// Faults *during recovery* retry under the same policy: a flaky (but
/// not dead) disk at boot still recovers every acked commit.
#[test]
fn recovery_retries_transient_read_faults() {
    for seed in seeds() {
        let disk = SharedStore::default();
        let reference = Registry::new();
        {
            let registry = Registry::builder()
                .store(disk.clone())
                .snapshot_every(2)
                .open()
                .unwrap();
            for (i, schema) in pool(seed).into_iter().take(6).enumerate() {
                registry.put(format!("m{i}"), schema.clone()).unwrap();
                reference.put(format!("m{i}"), schema).unwrap();
            }
        }

        // Every recovery-path read faults transiently a few times.
        let schedule = FaultSchedule::new(seed)
            .fail_nth(OpKind::ListSnapshots, 1, Fault::Transient)
            .fail_nth(OpKind::ReadSnapshot, 1, Fault::Transient)
            .fail_nth(OpKind::ReadLog, 1, Fault::Transient)
            .fail_nth(OpKind::ReadLog, 2, Fault::Transient);
        let recovered = Registry::builder()
            .store(FaultStore::new(disk.clone(), schedule.clone()))
            .retry_policy(test_policy(4))
            .open()
            .unwrap_or_else(|err| panic!("seed {seed}: faulty recovery failed: {err}"));
        assert_same_view(seed, &recovered, &reference);
        assert!(
            schedule.counters().injected >= 3,
            "seed {seed}: recovery reads were not exercised"
        );

        // Without a retry policy the same schedule is fatal — the
        // legacy fail-fast contract is untouched.
        let schedule = FaultSchedule::new(seed).fail_nth(OpKind::ReadLog, 1, Fault::Transient);
        let err = Registry::builder()
            .store(FaultStore::new(disk, schedule))
            .open()
            .unwrap_err();
        assert!(
            matches!(err, RegistryError::Storage(_)),
            "seed {seed}: {err}"
        );
    }
}

/// A torn append left by a retry-exhausted commit must not poison the
/// log: after healing, recovery sees only whole acked frames.
#[test]
fn torn_partial_append_is_repaired_before_the_next_commit() {
    let disk = SharedStore::default();
    let schedule = FaultSchedule::new(99)
        // Exhaust the budget with torn faults: every attempt tears.
        .always_after(OpKind::Append, 1, Fault::Torn);
    let faulty = Registry::builder()
        .store(FaultStore::new(disk.clone(), schedule.clone()))
        .retry_policy(test_policy(2))
        .snapshot_every(0)
        .open()
        .unwrap();
    let reference = Registry::new();

    let schemas = pool(99);
    faulty.put("good", schemas[0].clone()).unwrap();
    reference.put("good", schemas[0].clone()).unwrap();

    // This commit tears on every attempt and the registry degrades with
    // partial garbage at the log tail.
    let err = faulty.put("torn", schemas[1].clone()).unwrap_err();
    assert!(matches!(err, RegistryError::Storage(_)), "{err}");
    assert!(faulty.is_degraded());
    assert!(schedule.counters().torn_appends >= 1);

    // Heal: the probe truncates the torn tail, and the next commit
    // appends onto a clean log.
    schedule.clear();
    assert!(faulty.probe_now());
    faulty.put("after", schemas[2].clone()).unwrap();
    reference.put("after", schemas[2].clone()).unwrap();
    assert_same_view(99, &faulty, &reference);

    // The surviving bytes replay to exactly the acked commits.
    drop(faulty);
    let recovered = Registry::builder().store(disk).open().unwrap();
    assert_same_view(99, &recovered, &reference);
}
