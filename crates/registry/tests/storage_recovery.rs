//! Durability tests: WAL replay, torn tails, corrupt frames and
//! snapshots, compaction, and a differential property test that reopens
//! a durable registry after random workloads and compares it against a
//! never-persisted reference fed the same commits.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use proptest::collection::vec;
use proptest::prelude::*;

use schema_merge_core::WeakSchema;
use schema_merge_registry::storage::{MemoryStore, StorageError, Store};
use schema_merge_registry::{Registry, RegistryError};
use schema_merge_workload::{schema_family, SchemaParams};

fn schema(src: &str, label: &str, tgt: &str) -> WeakSchema {
    WeakSchema::builder()
        .arrow(src, label, tgt)
        .build()
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smerge-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Asserts two registries are observably identical: generation, merged
/// view (schema and completion report), member histories.
fn assert_same_registry(recovered: &Registry, reference: &Registry) {
    let (a, b) = (recovered.merged(), reference.merged());
    assert_eq!(a.generation, b.generation);
    assert_eq!(a.proper.as_ref(), b.proper.as_ref());
    assert_eq!(a.report.as_ref(), b.report.as_ref());
    let (la, lb) = (recovered.list(), reference.list());
    assert_eq!(la, lb);
    for m in &la {
        let (ha, hb) = (
            recovered.history(&m.name).unwrap(),
            reference.history(&m.name).unwrap(),
        );
        assert_eq!(ha.len(), hb.len(), "member {}", m.name);
        for (va, vb) in ha.iter().zip(&hb) {
            assert_eq!(va.hash, vb.hash);
            assert_eq!(va.sequence, vb.sequence);
            assert_eq!(va.generation, vb.generation);
            assert_eq!(va.schema.as_ref(), vb.schema.as_ref());
        }
    }
}

#[test]
fn reopen_recovers_state_and_continues_the_lineage() {
    let dir = temp_dir("reopen");
    let reference = Registry::new();
    {
        let registry = Registry::builder().data_dir(&dir).open().unwrap();
        for r in [&registry, &reference] {
            r.put("inv", schema("Part", "price", "money")).unwrap();
            r.put("orders", schema("Order", "item", "Part")).unwrap();
            r.put("inv", schema("Part", "weight", "kg")).unwrap();
            r.delete("orders").unwrap();
            r.put("orders", schema("Order", "qty", "int")).unwrap();
        }
    }

    let recovered = Registry::builder().data_dir(&dir).open().unwrap();
    assert_same_registry(&recovered, &reference);
    let stats = recovered.stats();
    assert!(stats.persistent);
    assert_eq!(stats.wal_records, 5);

    // Commits continue the generation lineage, durably.
    recovered
        .put("inv", schema("Part", "color", "str"))
        .unwrap();
    reference
        .put("inv", schema("Part", "color", "str"))
        .unwrap();
    drop(recovered);
    let again = Registry::builder().data_dir(&dir).open().unwrap();
    assert_same_registry(&again, &reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_drops_only_the_unacknowledged_commit() {
    let dir = temp_dir("torn");
    {
        let registry = Registry::builder()
            .data_dir(&dir)
            .snapshot_every(0)
            .open()
            .unwrap();
        registry.put("a", schema("A", "x", "T")).unwrap();
        registry.put("b", schema("B", "y", "U")).unwrap();
        registry.put("c", schema("C", "z", "V")).unwrap();
    }
    // Tear bytes off the log tail — as if the machine died mid-append of
    // the third record.
    let wal = dir.join("wal.log");
    let image = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &image[..image.len() - 10]).unwrap();

    let recovered = Registry::builder().data_dir(&dir).open().unwrap();
    let reference = Registry::new();
    reference.put("a", schema("A", "x", "T")).unwrap();
    reference.put("b", schema("B", "y", "U")).unwrap();
    assert_same_registry(&recovered, &reference);

    // The torn tail was truncated away: appends resume cleanly and a
    // further reopen sees the new commit.
    recovered.put("c", schema("C", "z", "V")).unwrap();
    reference.put("c", schema("C", "z", "V")).unwrap();
    drop(recovered);
    let again = Registry::builder().data_dir(&dir).open().unwrap();
    assert_same_registry(&again, &reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_wal_frame_stops_replay_at_the_last_good_commit() {
    let dir = temp_dir("corrupt-frame");
    {
        let registry = Registry::builder()
            .data_dir(&dir)
            .snapshot_every(0)
            .open()
            .unwrap();
        registry.put("a", schema("A", "x", "T")).unwrap();
        registry.put("b", schema("B", "y", "U")).unwrap();
    }
    // Flip a byte inside the last frame's payload: its checksum fails,
    // so replay keeps only the first commit.
    let wal = dir.join("wal.log");
    let mut image = std::fs::read(&wal).unwrap();
    let last = image.len() - 3;
    image[last] ^= 0xff;
    std::fs::write(&wal, &image).unwrap();

    let recovered = Registry::builder().data_dir(&dir).open().unwrap();
    let reference = Registry::new();
    reference.put("a", schema("A", "x", "T")).unwrap();
    assert_same_registry(&recovered, &reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_is_a_hard_error_not_a_fallback() {
    let dir = temp_dir("corrupt-snap");
    {
        let registry = Registry::builder().data_dir(&dir).open().unwrap();
        registry.put("a", schema("A", "x", "T")).unwrap();
        registry.snapshot().unwrap();
    }
    // Only the latest snapshot is usable (the log was truncated when it
    // was installed), so damage to it must refuse to open — falling back
    // to nothing would silently lose committed data.
    let snap = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|ext| ext == "snap"))
        .expect("snapshot object exists");
    let mut image = std::fs::read(&snap).unwrap();
    let mid = image.len() / 2;
    image[mid] ^= 0x01;
    std::fs::write(&snap, &image).unwrap();

    let err = Registry::builder().data_dir(&dir).open().unwrap_err();
    assert!(
        matches!(err, RegistryError::Storage(StorageError::Corrupt { .. })),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_and_replay_after_it_yield_identical_views() {
    let dir = temp_dir("compaction");
    let reference = Registry::new();
    {
        let registry = Registry::builder()
            .data_dir(&dir)
            .snapshot_every(0)
            .open()
            .unwrap();
        for r in [&registry, &reference] {
            r.put("a", schema("A", "x", "T")).unwrap();
            r.put("b", schema("B", "y", "U")).unwrap();
            r.put("a", schema("A", "z", "V")).unwrap();
        }
        let generation = registry.snapshot().unwrap();
        assert_eq!(generation, 3);
        let stats = registry.stats();
        assert_eq!(stats.wal_records, 0, "compaction truncated the log");
        assert_eq!(stats.snapshot_generation, 3);
        assert_eq!(stats.snapshots_written, 1);

        // Post-snapshot commits land in the fresh log.
        registry.put("c", schema("C", "w", "W")).unwrap();
        reference.put("c", schema("C", "w", "W")).unwrap();
    }

    // Recovery = snapshot + WAL suffix.
    let recovered = Registry::builder().data_dir(&dir).open().unwrap();
    assert_same_registry(&recovered, &reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auto_snapshot_cadence_compacts_during_commits() {
    let dir = temp_dir("cadence");
    let reference = Registry::new();
    {
        let registry = Registry::builder()
            .data_dir(&dir)
            .snapshot_every(4)
            .open()
            .unwrap();
        for i in 0..10 {
            let g = schema(&format!("C{i}"), "f", "T");
            registry.put(format!("m{i}"), g.clone()).unwrap();
            reference.put(format!("m{i}"), g).unwrap();
        }
        let stats = registry.stats();
        assert!(stats.snapshots_written >= 2, "{stats:?}");
        assert!(stats.wal_records < 10, "{stats:?}");
    }
    let recovered = Registry::builder().data_dir(&dir).open().unwrap();
    assert_same_registry(&recovered, &reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn content_hash_dedup_bounds_log_growth_under_flapping() {
    let registry = Registry::builder()
        .store(MemoryStore::new())
        .snapshot_every(0)
        .open()
        .unwrap();
    let v1 = schema("Part", "price", "money");
    let v2 = schema("Part", "weight", "kg");
    registry.put("flappy", v1.clone()).unwrap();
    registry.put("flappy", v2.clone()).unwrap();
    let after_bodies = registry.stats().wal_bytes;
    // Every further flap appends a by-reference record: a few dozen
    // bytes of framing and metadata, never another schema body.
    for _ in 0..10 {
        registry.put("flappy", v1.clone()).unwrap();
        registry.put("flappy", v2.clone()).unwrap();
    }
    let growth = registry.stats().wal_bytes - after_bodies;
    assert!(
        growth < 20 * 100,
        "20 by-reference flaps grew the log by {growth} B"
    );
}

/// A [`MemoryStore`] behind a shared handle, so a test can keep access
/// to the stored bytes after the registry takes ownership — the
/// in-process analogue of a machine crash: drop the registry (losing
/// all in-memory state), keep the "disk", reopen on it.
#[derive(Clone, Default)]
struct SharedStore(Arc<Mutex<MemoryStore>>);

impl Store for SharedStore {
    fn append(&mut self, frame: &[u8]) -> Result<(), StorageError> {
        self.0.lock().unwrap().append(frame)
    }
    fn read_log(&mut self) -> Result<Vec<u8>, StorageError> {
        self.0.lock().unwrap().read_log()
    }
    fn truncate_log(&mut self, len: u64) -> Result<(), StorageError> {
        self.0.lock().unwrap().truncate_log(len)
    }
    fn log_bytes(&self) -> Result<u64, StorageError> {
        self.0.lock().unwrap().log_bytes()
    }
    fn write_snapshot(&mut self, generation: u64, image: &[u8]) -> Result<(), StorageError> {
        self.0.lock().unwrap().write_snapshot(generation, image)
    }
    fn read_snapshot(&mut self, generation: u64) -> Result<Vec<u8>, StorageError> {
        self.0.lock().unwrap().read_snapshot(generation)
    }
    fn list_snapshots(&mut self) -> Result<Vec<u64>, StorageError> {
        self.0.lock().unwrap().list_snapshots()
    }
    fn remove_snapshot(&mut self, generation: u64) -> Result<(), StorageError> {
        self.0.lock().unwrap().remove_snapshot(generation)
    }
}

const MEMBERS: usize = 4;
const VARIANTS: usize = 3;

#[derive(Debug, Clone)]
enum Op {
    Put(usize, usize),
    Delete(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0usize..MEMBERS, 0usize..VARIANTS).prop_map(|(m, v)| Op::Put(m, v)),
        (0usize..MEMBERS).prop_map(Op::Delete),
    ];
    vec(op, 1..24)
}

fn pool(seed: u64) -> Vec<WeakSchema> {
    let params = SchemaParams {
        vocabulary: 14,
        classes: 6,
        labels: 4,
        arrows: 5,
        specializations: 2,
        seed,
    };
    schema_family(&params, MEMBERS * VARIANTS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance property, in-process: after any workload — with a
    /// small snapshot cadence so compaction happens mid-sequence — a
    /// registry reopened from its surviving bytes is observably
    /// identical to a never-persisted reference fed the same commits.
    #[test]
    fn reopened_registry_equals_in_memory_reference(
        ops in ops(),
        seed in 0u64..32,
        snapshot_every in 0u64..5,
    ) {
        let schemas = pool(seed);
        let disk = SharedStore::default();
        let durable = Registry::builder()
            .store(disk.clone())
            .snapshot_every(snapshot_every)
            .open()
            .unwrap();
        let reference = Registry::new();

        for op in &ops {
            match op {
                Op::Put(m, v) => {
                    let name = format!("member-{m}");
                    let schema = schemas[m * VARIANTS + v].clone();
                    durable.put(&name, schema.clone()).expect("family members are compatible");
                    reference.put(&name, schema).expect("family members are compatible");
                }
                Op::Delete(m) => {
                    let name = format!("member-{m}");
                    prop_assert_eq!(
                        durable.delete(&name).is_ok(),
                        reference.delete(&name).is_ok()
                    );
                }
            }
        }

        // "Crash": all in-memory state is dropped; only the store's
        // bytes survive.
        drop(durable);
        let recovered = Registry::builder().store(disk).open().unwrap();
        assert_same_registry(&recovered, &reference);
    }
}
