//! Differential property tests: the registry's incremental merged view
//! vs the one-shot engines.
//!
//! For random publish/delete sequences over workload-generated schema
//! families, the registry's view after every operation must equal the
//! one-shot [`merge_compiled`] of its current members — and, at the end
//! of each sequence, the fully symbolic [`reference::merge`] too
//! (schemas *and* completion reports). Rejected publishes must
//! correspond exactly to member sets the one-shot merge also rejects,
//! and must leave the view untouched.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;

use schema_merge_core::{reference, Merger, WeakSchema};
use schema_merge_registry::{MergeStrategy, Registry, RegistryError};
use schema_merge_workload::{schema_family, SchemaParams};

const MEMBERS: usize = 5;
const VARIANTS: usize = 4;

/// One step of a registry workload. `Put` publishes variant `v` of
/// member slot `m`; `PutHostile` publishes a reversed-specialization
/// schema that may be incompatible with the generated family; `Delete`
/// removes the member if present.
#[derive(Debug, Clone)]
enum Op {
    Put(usize, usize),
    PutHostile(usize),
    Delete(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0usize..MEMBERS, 0usize..VARIANTS).prop_map(|(m, v)| Op::Put(m, v)),
        (0usize..MEMBERS).prop_map(Op::PutHostile),
        (0usize..MEMBERS).prop_map(Op::Delete),
    ];
    vec(op, 1..20)
}

/// A pool of mutually compatible member schemas: `MEMBERS × VARIANTS`
/// draws from one workload family over a shared vocabulary (the
/// generator directs specializations along the vocabulary order, so any
/// subset merges).
fn pool(seed: u64) -> Vec<WeakSchema> {
    let params = SchemaParams {
        vocabulary: 18,
        classes: 8,
        labels: 4,
        arrows: 7,
        specializations: 3,
        seed,
    };
    schema_family(&params, MEMBERS * VARIANTS)
}

/// A schema that reverses the vocabulary order, making it incompatible
/// with any family member that specializes across `lo ⇒ hi` — sometimes
/// rejected, sometimes accepted, which is the point.
fn hostile() -> WeakSchema {
    WeakSchema::builder()
        .specialize("C017", "C000")
        .specialize("C016", "C001")
        .build()
        .expect("acyclic alone")
}

fn member_name(slot: usize) -> String {
    format!("member-{slot}")
}

fn assert_view_matches<'a>(
    registry: &Registry,
    model: impl Iterator<Item = &'a WeakSchema>,
) -> Result<(), TestCaseError> {
    let schemas: Vec<&WeakSchema> = model.collect();
    let oneshot = Merger::new()
        .schemas(schemas.iter().copied())
        .execute()
        .expect("model members are compatible");
    let view = registry.merged();
    prop_assert_eq!(view.proper.as_ref(), &oneshot.proper);
    prop_assert_eq!(view.report.as_ref(), &oneshot.implicit);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_view_equals_oneshot_merge(ops in ops(), seed in 0u64..64) {
        let schemas = pool(seed);
        let registry = Registry::new();
        let mut model: BTreeMap<String, WeakSchema> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Put(m, v) => {
                    let name = member_name(*m);
                    let schema = schemas[m * VARIANTS + v].clone();
                    let outcome = registry.put(&name, schema.clone()).expect("family members are compatible");
                    if model.get(&name) == Some(&schema) {
                        prop_assert_eq!(outcome.strategy, MergeStrategy::Noop);
                    }
                    model.insert(name, schema);
                }
                Op::PutHostile(m) => {
                    let name = member_name(*m);
                    let schema = hostile();
                    match registry.put(&name, schema.clone()) {
                        Ok(_) => {
                            model.insert(name, schema);
                        }
                        Err(RegistryError::Rejected { .. }) => {
                            // The one-shot merge over (model ∖ name) ∪ {schema}
                            // must reject the same set.
                            let mut attempted: Vec<&WeakSchema> = model
                                .iter()
                                .filter(|(n, _)| *n != &name)
                                .map(|(_, s)| s)
                                .collect();
                            attempted.push(&schema);
                            prop_assert!(Merger::new().schemas(attempted).execute().is_err());
                        }
                        Err(other) => prop_assert!(false, "unexpected error: {other}"),
                    }
                }
                Op::Delete(m) => {
                    let name = member_name(*m);
                    match registry.delete(&name) {
                        Ok(_) => {
                            prop_assert!(model.remove(&name).is_some());
                        }
                        Err(RegistryError::UnknownMember(_)) => {
                            prop_assert!(!model.contains_key(&name));
                        }
                        Err(other) => prop_assert!(false, "unexpected error: {other}"),
                    }
                }
            }
            // After every operation, the view is the one-shot compiled
            // merge of the current members.
            assert_view_matches(&registry, model.values())?;
        }

        // And at sequence end, the fully symbolic engine agrees too —
        // schemas and completion reports.
        let members: Vec<&WeakSchema> = model.values().collect();
        let symbolic = reference::merge(members.iter().copied())
            .expect("model members are compatible");
        let view = registry.merged();
        prop_assert_eq!(view.proper.as_ref(), &symbolic.proper);
        prop_assert_eq!(view.report.as_ref(), &symbolic.report);

        // Sanity on the bookkeeping: generation counts exactly the commits.
        let stats = registry.stats();
        prop_assert_eq!(stats.generation, stats.incremental_merges + stats.full_merges);
    }
}
