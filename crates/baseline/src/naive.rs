//! The naive stepwise merge (§3, Figs. 4–5).

use std::collections::BTreeMap;

use schema_merge_core::complete::complete_with_report;
use schema_merge_core::{Class, MergeError, Name, WeakSchema};

/// Whether a class is one of the baseline's opaque implicit stand-ins.
pub fn is_opaque(class: &Class) -> bool {
    class.name().is_some_and(|n| n.as_str().starts_with('?'))
}

/// A stepwise merger handing out opaque names for implicit classes.
///
/// After each binary weak join, the result is completed and every
/// implicit class is *renamed* to a fresh ordinary class (`?1`, `?2`, …).
/// From then on the class is indistinguishable from a user class, which
/// is exactly the §3 mistake: "if we were to give them the same status as
/// ordinary classes we would find that binary merges are not
/// associative."
#[derive(Debug, Default)]
pub struct NaiveMerger {
    counter: u64,
}

impl NaiveMerger {
    /// A fresh merger (opaque names restart at `?1`).
    pub fn new() -> Self {
        NaiveMerger::default()
    }

    fn fresh_name(&mut self) -> Name {
        self.counter += 1;
        Name::new(format!("?{}", self.counter))
    }

    /// One naive binary merge: weak join, complete, then strip the origin
    /// information off every implicit class by renaming it opaquely.
    pub fn merge_pair(
        &mut self,
        left: &WeakSchema,
        right: &WeakSchema,
    ) -> Result<WeakSchema, MergeError> {
        let joined = schema_merge_core::weak_join(left, right)?;
        let (proper, report) = complete_with_report(&joined)?;

        let mut rename: BTreeMap<Class, Class> = BTreeMap::new();
        for info in &report.implicit {
            rename.insert(info.class.clone(), Class::Named(self.fresh_name()));
        }
        if rename.is_empty() {
            return Ok(proper.into_weak());
        }

        let map = |class: &Class| -> Class {
            rename.get(class).cloned().unwrap_or_else(|| class.clone())
        };
        let source = proper.as_weak();
        let mut builder = WeakSchema::builder();
        for class in source.classes() {
            builder = builder.class(map(class));
        }
        for (sub, sup) in source.specialization_pairs() {
            builder = builder.specialize(map(sub), map(sup));
        }
        for (src, label, tgt) in source.arrow_triples() {
            builder = builder.arrow(map(src), label.clone(), map(tgt));
        }
        builder.build().map_err(MergeError::Schema)
    }

    /// Folds a sequence of schemas left to right with [`merge_pair`] —
    /// the protocol whose result depends on the sequence order.
    ///
    /// [`merge_pair`]: NaiveMerger::merge_pair
    pub fn merge_sequence<'a>(
        &mut self,
        schemas: impl IntoIterator<Item = &'a WeakSchema>,
    ) -> Result<WeakSchema, MergeError> {
        let mut iter = schemas.into_iter();
        let mut acc = match iter.next() {
            Some(first) => first.clone(),
            None => return Ok(WeakSchema::empty()),
        };
        for next in iter {
            acc = self.merge_pair(&acc, next)?;
        }
        Ok(acc)
    }
}

/// Convenience: a one-shot naive stepwise merge in the given order.
pub fn stepwise_merge<'a>(
    schemas: impl IntoIterator<Item = &'a WeakSchema>,
) -> Result<WeakSchema, MergeError> {
    NaiveMerger::new().merge_sequence(schemas)
}

/// An ad-hoc pairwise heuristic: classes merge by name, but when the two
/// schemas give one `(class, label)` pair *different* minimal arrow
/// targets, the left (earlier) schema's arrows win and the right schema's
/// are dropped. Order-dependent by construction; included as a second
/// baseline for the benchmark comparisons.
pub fn first_wins_merge(left: &WeakSchema, right: &WeakSchema) -> Result<WeakSchema, MergeError> {
    let mut builder = WeakSchema::builder();
    for schema in [left, right] {
        for class in schema.classes() {
            builder = builder.class(class.clone());
        }
        for (sub, sup) in schema.specialization_pairs() {
            builder = builder.specialize(sub.clone(), sup.clone());
        }
    }
    for (src, label, tgt) in left.arrow_triples() {
        builder = builder.arrow(src.clone(), label.clone(), tgt.clone());
    }
    for (src, label, tgt) in right.arrow_triples() {
        // Drop the arrow if the left schema already has this (src, label)
        // pair pointing somewhere else.
        let left_targets = left.arrow_targets(src, label);
        if left_targets.is_empty() || left_targets.contains(tgt) {
            builder = builder.arrow(src.clone(), label.clone(), tgt.clone());
        }
    }
    builder.build().map_err(MergeError::Schema)
}

/// The three schemas of Fig. 4. `G1` relates `A`, `B`, `C`, `H` with an
/// `a`-arrow to `D`; `G2` and `G3` add `a`-arrows to `E` and `F`.
pub fn figure_4_schemas() -> (WeakSchema, WeakSchema, WeakSchema) {
    let g1 = WeakSchema::builder()
        .classes(["H", "C"])
        .specialize("B", "A")
        .arrow("B", "a", "D")
        .build()
        .expect("figure 4 G1");
    let g2 = WeakSchema::builder()
        .arrow("B", "a", "E")
        .build()
        .expect("figure 4 G2");
    let g3 = WeakSchema::builder()
        .arrow("B", "a", "F")
        .build()
        .expect("figure 4 G3");
    (g1, g2, g3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_merge_core::iso::alpha_isomorphic;
    use schema_merge_core::Label;

    /// The paper's (order-independent) merge, through the façade.
    fn facade_proper<'a>(
        schemas: impl IntoIterator<Item = &'a WeakSchema>,
    ) -> schema_merge_core::ProperSchema {
        schema_merge_core::Merger::new()
            .schemas(schemas)
            .execute()
            .unwrap()
            .proper
    }

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn opaque_names_are_recognized() {
        assert!(is_opaque(&c("?1")));
        assert!(!is_opaque(&c("Dog")));
        assert!(!is_opaque(&Class::implicit([c("A"), c("B")])));
    }

    #[test]
    fn single_merge_mirrors_paper_completion_modulo_names() {
        let g1 = WeakSchema::builder().arrow("C", "a", "B1").build().unwrap();
        let g2 = WeakSchema::builder().arrow("C", "a", "B2").build().unwrap();
        let naive = NaiveMerger::new().merge_pair(&g1, &g2).unwrap();
        let ours = facade_proper([&g1, &g2]);
        // Alpha-equivalent: the only difference is the implicit class's
        // name.
        assert!(alpha_isomorphic(&naive, ours.as_weak(), |class| is_opaque(
            class
        ) || class
            .is_implicit()));
    }

    #[test]
    fn figure_5_non_associativity() {
        // Merging G1,G2 first and G3 last yields ?1 below {D,E} and ?2
        // below {?1,F}; the other order nests the other way. The results
        // are not isomorphic even with opaque renaming.
        let (g1, g2, g3) = figure_4_schemas();

        let order_a = stepwise_merge([&g1, &g2, &g3]).unwrap();
        let order_b = stepwise_merge([&g1, &g3, &g2]).unwrap();

        assert!(
            !alpha_isomorphic(&order_a, &order_b, is_opaque),
            "the naive merge must be order-dependent on Fig. 4"
        );

        // While the paper's merge is order-independent and produces the
        // single implicit class {D,E,F}.
        let ours_a = facade_proper([&g1, &g2, &g3]);
        let ours_b = facade_proper([&g1, &g3, &g2]);
        assert_eq!(ours_a, ours_b);
        let def = Class::implicit([c("D"), c("E"), c("F")]);
        assert!(ours_a.contains_class(&def));
    }

    #[test]
    fn naive_nesting_structure_matches_figure_5() {
        let (g1, g2, g3) = figure_4_schemas();
        let mut merger = NaiveMerger::new();
        let step1 = merger.merge_pair(&g1, &g2).unwrap();
        // ?1 sits below D and E.
        assert!(step1.specializes(&c("?1"), &c("D")));
        assert!(step1.specializes(&c("?1"), &c("E")));

        let step2 = merger.merge_pair(&step1, &g3).unwrap();
        // ?2 sits below ?1 and F — the nested chain of Fig. 5, instead of
        // one class below all three of D, E, F.
        assert!(step2.specializes(&c("?2"), &c("?1")));
        assert!(step2.specializes(&c("?2"), &c("F")));
        assert!(step2.specializes(&c("?2"), &c("D")), "transitively");
        assert!(
            !step2.contains_class(&Class::implicit([c("D"), c("E"), c("F")])),
            "the flat implicit class never appears"
        );
    }

    #[test]
    fn merge_sequence_of_zero_and_one() {
        let mut merger = NaiveMerger::new();
        assert_eq!(
            merger.merge_sequence(std::iter::empty()).unwrap(),
            WeakSchema::empty()
        );
        let g = WeakSchema::builder().arrow("A", "x", "B").build().unwrap();
        assert_eq!(merger.merge_sequence([&g]).unwrap(), g);
    }

    #[test]
    fn incompatibility_still_fails() {
        let g1 = WeakSchema::builder().specialize("A", "B").build().unwrap();
        let g2 = WeakSchema::builder().specialize("B", "A").build().unwrap();
        assert!(NaiveMerger::new().merge_pair(&g1, &g2).is_err());
    }

    #[test]
    fn first_wins_is_order_dependent() {
        let g1 = WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .arrow("Dog", "age", "years")
            .build()
            .unwrap();
        let a = first_wins_merge(&g1, &g2).unwrap();
        let b = first_wins_merge(&g2, &g1).unwrap();
        assert_ne!(a, b);
        assert!(a.has_arrow(&c("Dog"), &l("age"), &c("int")));
        assert!(!a.has_arrow(&c("Dog"), &l("age"), &c("years")));
        assert!(b.has_arrow(&c("Dog"), &l("age"), &c("years")));
    }

    #[test]
    fn first_wins_keeps_compatible_arrows() {
        let g1 = WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .arrow("Dog", "name", "text")
            .arrow("Dog", "age", "int")
            .build()
            .unwrap();
        let merged = first_wins_merge(&g1, &g2).unwrap();
        assert!(merged.has_arrow(&c("Dog"), &l("name"), &c("text")));
        assert!(merged.has_arrow(&c("Dog"), &l("age"), &c("int")));
    }

    #[test]
    fn opaque_classes_infect_subsequent_merges() {
        // Once an opaque class exists, re-merging with information that
        // would have changed the implicit class leaves the stale one in
        // place — the "cannot be readily identified" failure.
        let g1 = WeakSchema::builder().arrow("C", "a", "B1").build().unwrap();
        let g2 = WeakSchema::builder().arrow("C", "a", "B2").build().unwrap();
        let g3 = WeakSchema::builder()
            .specialize("B1", "B2")
            .build()
            .unwrap();

        let mut merger = NaiveMerger::new();
        let step1 = merger.merge_pair(&g1, &g2).unwrap();
        let step2 = merger.merge_pair(&step1, &g3).unwrap();
        // With B1 ⇒ B2 the merged schema needs no implicit class at all —
        // but the opaque ?1 lingers.
        assert!(step2.contains_class(&c("?1")));
        let ours = facade_proper([&g1, &g2, &g3]);
        assert_eq!(
            ours.classes().filter(|cl| cl.is_implicit()).count(),
            0,
            "the paper's merge leaves nothing behind"
        );
    }
}
