//! # schema-merge-baseline
//!
//! The *status quo* comparator the paper argues against (§3, Figs. 4–5):
//! a stepwise binary merge that completes after every step and gives the
//! implicit classes ordinary, opaque names (`?1`, `?2`, …). Because the
//! opaque classes carry no origin information, later merges cannot
//! recognize them, and the result depends on the merge order — the
//! non-associativity the paper's construction repairs.
//!
//! A second heuristic baseline ([`first_wins_merge`]) resolves conflicting
//! canonical arrow targets in favour of the earlier schema, which is
//! order-dependent even without implicit classes — representative of the
//! ad-hoc resolution rules in pre-1992 merging tools.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod naive;

pub use naive::{figure_4_schemas, first_wins_merge, is_opaque, stepwise_merge, NaiveMerger};
