//! `smerge serve` — the registry daemon.
//!
//! A `std`-only TCP server: one acceptor thread (the caller), a fixed
//! pool of worker threads draining a shared connection queue, and a
//! [`Registry`] shared by everyone. The wire protocol is the
//! line-oriented command/block format of [`schema_merge_text::protocol`];
//! `smerge client` (see [`crate::client`]) speaks the other side.
//!
//! The daemon announces `listening on 127.0.0.1:<port>` on stdout once
//! the socket is bound — with `--port 0` the kernel picks an ephemeral
//! port and the announcement is how callers (the e2e smoke test, shell
//! scripts) learn it. `SHUTDOWN` from any client stops accepting,
//! drains the worker pool and returns.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use schema_merge_core::Merger;
use schema_merge_registry::{MergedView, Registry, RetryPolicy};
use schema_merge_supergraph::{Supergraph, SupergraphError};
use schema_merge_telemetry::{self as telemetry, render_counter, render_gauge, Histogram};
use schema_merge_text::protocol::{status_line, BlockCollector, Command, Status};
use schema_merge_text::{encode_block, parse_document, print_schema, NamedSchema};

use crate::app::{parse_path_query, CliError};

/// How long a worker waits on an idle connection before dropping it —
/// keeps dead clients from pinning workers forever.
const READ_TIMEOUT: Duration = Duration::from_secs(120);

/// How long a worker blocks writing a response before giving up on the
/// connection — a stalled client that stops reading mid-MERGED must not
/// pin a worker forever either.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Wall-clock budget for collecting one PUT payload block. The per-line
/// read timeout alone would let a slow-drip client (one line every two
/// minutes) hold a worker indefinitely; the whole block must arrive
/// within this deadline.
const PUT_DEADLINE: Duration = Duration::from_secs(60);

/// Cadence of the background heal probe while the registry is degraded.
const PROBE_INTERVAL: Duration = Duration::from_millis(200);

/// The namespace the daemon's own registry is attached under. Bare
/// (slash-free) member names route here.
const DEFAULT_REGISTRY: &str = "default";

struct Options {
    port: u16,
    threads: usize,
    merge_threads: Option<usize>,
    data_dir: Option<String>,
    snapshot_every: Option<u64>,
    trace_log: Option<String>,
    preload: Vec<String>,
}

fn parse_options(args: &[&String]) -> Result<Options, CliError> {
    let mut options = Options {
        port: 7411,
        threads: 4,
        merge_threads: None,
        data_dir: None,
        snapshot_every: None,
        trace_log: None,
        preload: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--port" => {
                options.port = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| CliError::Usage("--port requires a port number".into()))?;
            }
            "--threads" => {
                options.threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError::Usage("--threads requires a positive count".into()))?;
            }
            "--merge-threads" => {
                options.merge_threads = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            CliError::Usage("--merge-threads requires a positive count".into())
                        })?,
                );
            }
            "--data-dir" => {
                options.data_dir = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--data-dir requires a path".into()))?
                        .to_string(),
                );
            }
            "--snapshot-every" => {
                options.snapshot_every =
                    Some(iter.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                        CliError::Usage("--snapshot-every requires a record count".into())
                    })?);
            }
            "--trace-log" => {
                options.trace_log = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--trace-log requires a path".into()))?
                        .to_string(),
                );
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown serve flag `{other}`")));
            }
            file => options.preload.push(file.to_string()),
        }
    }
    Ok(options)
}

/// Verbs the worker loop times individually. Connection-terminating
/// verbs (`QUIT`, `SHUTDOWN`) are excluded — their latency is the
/// teardown, not the service.
const TIMED_VERBS: [&str; 15] = [
    "put",
    "get",
    "delete",
    "merged",
    "stats",
    "metrics",
    "list",
    "query",
    "snapshot",
    "health",
    "ping",
    "attach",
    "detach",
    "compose",
    "supergraph",
];

/// Per-verb request-latency histograms, recorded by the worker loop
/// around every dispatched command.
struct RequestMetrics {
    verbs: [(&'static str, Histogram); TIMED_VERBS.len()],
}

impl RequestMetrics {
    fn new() -> Self {
        RequestMetrics {
            verbs: TIMED_VERBS.map(|verb| (verb, Histogram::new())),
        }
    }

    fn record(&self, verb: &str, elapsed: Duration) {
        if let Some((_, histogram)) = self.verbs.iter().find(|(name, _)| *name == verb) {
            histogram.record(elapsed);
        }
    }
}

/// The lower-case metrics label for a dispatched command, or `None` for
/// the connection-terminating verbs the loop does not time.
fn verb_label(command: &Command) -> Option<&'static str> {
    Some(match command {
        Command::Put(_) => "put",
        Command::Get(_) => "get",
        Command::Delete(_) => "delete",
        Command::Merged => "merged",
        Command::Stats => "stats",
        Command::Metrics => "metrics",
        Command::List => "list",
        Command::Query(_) => "query",
        Command::Snapshot => "snapshot",
        Command::Health => "health",
        Command::Ping => "ping",
        Command::Attach(_) => "attach",
        Command::Detach(_) => "detach",
        Command::Compose => "compose",
        Command::Supergraph => "supergraph",
        Command::Quit | Command::Shutdown => return None,
    })
}

/// The `--trace-log` sink: one Chrome trace-event JSON object per line
/// (loadable in `chrome://tracing` / Perfetto after wrapping in `[...]`,
/// or parsed as JSONL). Workers drain their thread-local span buffers
/// here after every request, so one mutex'd writer serializes the file
/// without serializing the traced work itself.
struct TraceSink {
    writer: Mutex<BufWriter<File>>,
}

impl TraceSink {
    fn open(path: &str) -> Result<TraceSink, CliError> {
        let file = File::create(path)
            .map_err(|err| CliError::Data(format!("opening trace log {path}: {err}")))?;
        Ok(TraceSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Drains the calling thread's finished spans into the log as
    /// worker `tid`.
    fn drain_thread(&self, tid: u64) {
        let spans = telemetry::drain_spans();
        if spans.is_empty() {
            return;
        }
        let mut writer = self.writer.lock().expect("trace log lock");
        for span in &spans {
            let _ = writeln!(writer, "{}", span.to_trace_event(tid));
        }
        let _ = writer.flush();
    }
}

/// Composes the METRICS exposition text: Prometheus-style counters,
/// gauges and latency summaries for the registry and the request loop.
fn render_metrics(
    registry: &Registry,
    supergraph: &Supergraph,
    requests: &RequestMetrics,
) -> String {
    let stats = registry.stats();
    let mut out = String::new();
    render_gauge(
        &mut out,
        "smerge_uptime_seconds",
        "Seconds since the registry instance was opened",
        i64::try_from(stats.uptime_secs).unwrap_or(i64::MAX),
    );
    render_counter(
        &mut out,
        "smerge_requests_total",
        "Protocol requests served",
        stats.requests_served,
    );
    render_counter(
        &mut out,
        "smerge_registry_generation",
        "Registry generation (successful commits)",
        stats.generation,
    );
    render_gauge(
        &mut out,
        "smerge_registry_members",
        "Current member count",
        i64::try_from(stats.members).unwrap_or(i64::MAX),
    );

    let health = registry.health();
    render_counter(
        &mut out,
        "smerge_storage_retry_total",
        "Commit-path storage retries under the retry policy",
        health.storage_retries,
    );
    render_gauge(
        &mut out,
        "smerge_degraded",
        "1 when the registry is in degraded read-only mode",
        i64::from(health.degraded),
    );
    if let Some(fault) = health.fault_counters {
        render_counter(
            &mut out,
            "smerge_fault_injected_total",
            "Storage faults injected by the live fault schedule",
            fault.injected,
        );
        render_counter(
            &mut out,
            "smerge_fault_torn_appends_total",
            "Injected append faults that left a torn partial frame",
            fault.torn_appends,
        );
    }

    let summary = |out: &mut String, name: &str, help: &str| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} summary\n"));
    };
    summary(
        &mut out,
        "smerge_registry_commit_seconds",
        "End-to-end latency of generation-spending commits",
    );
    registry
        .commit_latency()
        .render_prometheus(&mut out, "smerge_registry_commit_seconds", "");
    summary(
        &mut out,
        "smerge_registry_fsync_seconds",
        "Per-commit durability wait (WAL append + fsync)",
    );
    registry
        .fsync_latency()
        .render_prometheus(&mut out, "smerge_registry_fsync_seconds", "");
    summary(
        &mut out,
        "smerge_registry_recovery_seconds",
        "Boot-time recovery latency (one sample per durable open)",
    );
    registry
        .recovery_latency()
        .render_prometheus(&mut out, "smerge_registry_recovery_seconds", "");

    let sg = supergraph.stats();
    render_counter(
        &mut out,
        "smerge_supergraph_generation",
        "Supergraph generation (attach/detach/compose commits)",
        sg.generation,
    );
    render_gauge(
        &mut out,
        "smerge_supergraph_registries",
        "Member registries attached to the supergraph",
        i64::try_from(sg.registries).unwrap_or(i64::MAX),
    );
    render_counter(
        &mut out,
        "smerge_composes_full_total",
        "Supergraph composes that re-joined every registry",
        sg.full_composes,
    );
    render_counter(
        &mut out,
        "smerge_composes_incremental_total",
        "Supergraph composes that completed onto a cached rest-join",
        sg.incremental_composes,
    );
    render_counter(
        &mut out,
        "smerge_composes_noop_total",
        "Supergraph composes that found nothing changed",
        sg.noop_composes,
    );
    summary(
        &mut out,
        "smerge_compose_seconds",
        "End-to-end supergraph compose latency",
    );
    supergraph
        .compose_latency()
        .render_prometheus(&mut out, "smerge_compose_seconds", "");

    summary(
        &mut out,
        "smerge_request_seconds",
        "Request latency by protocol verb",
    );
    for (verb, histogram) in &requests.verbs {
        histogram.snapshot().render_prometheus(
            &mut out,
            "smerge_request_seconds",
            &format!("verb=\"{verb}\""),
        );
    }
    out
}

/// The blocking handoff between the acceptor and the workers.
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new() -> Self {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, stream: TcpStream) {
        let mut state = self.state.lock().expect("queue lock");
        state.conns.push_back(stream);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Blocks until a connection arrives; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(stream) = state.conns.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }
}

/// Runs the daemon. Returns once a client issues `SHUTDOWN`.
pub fn serve_command(args: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let options = parse_options(args)?;
    let mut builder = Registry::builder();
    if let Some(threads) = options.merge_threads {
        builder = builder.merge_threads(threads);
    }
    if let Some(dir) = &options.data_dir {
        // The daemon's durable registry runs with resilience on: flaky
        // fsyncs are retried, and exhaustion degrades to read-only (the
        // background probe below heals it) instead of erroring forever.
        builder = builder.data_dir(dir).retry_policy(RetryPolicy::new(3));
    }
    if let Some(every) = options.snapshot_every {
        builder = builder.snapshot_every(every);
    }
    let registry = Arc::new(
        builder
            .open()
            .map_err(|err| CliError::Data(format!("opening registry: {err}")))?,
    );
    if options.data_dir.is_some() {
        let stats = registry.stats();
        writeln!(
            out,
            "recovered generation {} ({} members) from {}",
            stats.generation,
            stats.members,
            options.data_dir.as_deref().unwrap_or_default()
        )?;
    }

    for path in &options.preload {
        let source = std::fs::read_to_string(path)
            .map_err(|err| CliError::Data(format!("{path}: {err}")))?;
        let docs =
            parse_document(&source).map_err(|err| CliError::Data(format!("{path}: {err}")))?;
        for doc in docs {
            registry
                .put(doc.name.clone(), doc.schema.schema().clone())
                .map_err(|err| CliError::Data(format!("{path}: preload failed: {err}")))?;
        }
    }

    // The federation layer: the daemon's own registry is attached under
    // the reserved `default` namespace, and `ATTACH` grows the
    // supergraph with fresh in-memory member registries at runtime.
    // Bare member names keep routing to the default registry; namespaced
    // `registry/member` names route to attached registries.
    let mut supergraph = Supergraph::new();
    if let Some(threads) = options.merge_threads {
        supergraph = Supergraph::with_threads(threads);
    }
    let supergraph = Arc::new(supergraph);
    supergraph
        .attach(DEFAULT_REGISTRY, Arc::clone(&registry))
        .expect("fresh supergraph accepts the default registry");

    let metrics = Arc::new(RequestMetrics::new());

    let listener = TcpListener::bind(("127.0.0.1", options.port))?;
    let addr = listener.local_addr()?;
    // The announcement line comes first — callers parsing stdout for the
    // ephemeral port (the smoke test, shell scripts) read it as line one.
    writeln!(out, "listening on {addr}")?;
    let trace = match &options.trace_log {
        Some(path) => {
            let sink = Arc::new(TraceSink::open(path)?);
            // Spans everywhere: the workers drain their thread buffers
            // into the sink after every request.
            telemetry::set_spans_enabled(true);
            writeln!(out, "tracing to {path}")?;
            Some(sink)
        }
        None => None,
    };
    out.flush()?;

    let queue = Arc::new(ConnQueue::new());
    let shutdown = Arc::new(AtomicBool::new(false));
    // Background heal probe: while the registry is degraded it
    // re-attempts the store on a short cadence and flips back to
    // writable as soon as the store responds (`Registry::probe_now`).
    let probe = {
        let registry = Arc::clone(&registry);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                registry.probe_now();
                std::thread::sleep(PROBE_INTERVAL);
            }
        })
    };
    let workers: Vec<_> = (0..options.threads)
        .map(|tid| {
            let queue = Arc::clone(&queue);
            let registry = Arc::clone(&registry);
            let supergraph = Arc::clone(&supergraph);
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            let trace = trace.clone();
            std::thread::spawn(move || {
                while let Some(stream) = queue.pop() {
                    // A broken connection only affects that client.
                    let _ = handle_connection(
                        stream,
                        &registry,
                        &supergraph,
                        &shutdown,
                        addr,
                        &metrics,
                        trace.as_deref(),
                        tid as u64,
                    );
                }
            })
        })
        .collect();

    for incoming in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match incoming {
            Ok(stream) => queue.push(stream),
            Err(err) => eprintln!("smerge serve: accept failed: {err}"),
        }
    }

    queue.close();
    for worker in workers {
        let _ = worker.join();
    }
    let _ = probe.join();
    if trace.is_some() {
        telemetry::set_spans_enabled(false);
    }
    writeln!(out, "shutdown complete")?;
    Ok(())
}

fn read_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<String>> {
    let mut buf = String::new();
    if reader.read_line(&mut buf)? == 0 {
        return Ok(None);
    }
    while buf.ends_with('\n') || buf.ends_with('\r') {
        buf.pop();
    }
    Ok(Some(buf))
}

/// Resolves a protocol member name to its registry: `registry/member`
/// routes to an attached supergraph registry, bare names to the daemon's
/// default registry.
fn route_member(
    registry: &Arc<Registry>,
    supergraph: &Supergraph,
    name: &str,
) -> Result<(Arc<Registry>, String), String> {
    match name.split_once('/') {
        None => Ok((Arc::clone(registry), name.to_string())),
        Some((namespace, member)) => {
            if namespace.is_empty() || member.is_empty() || member.contains('/') {
                return Err(format!(
                    "invalid member name `{name}`: expected `member` or `registry/member`"
                ));
            }
            match supergraph.registry(namespace) {
                Some(routed) => Ok((routed, member.to_string())),
                None => Err(format!(
                    "[{}] no registry `{namespace}` is attached",
                    SupergraphError::UnknownRegistry(namespace.to_string()).code()
                )),
            }
        }
    }
}

fn supergraph_err(err: &SupergraphError) -> String {
    status_line(Status::Err, &format!("[{}] {err}", err.code()))
}

/// Arms both socket deadlines on an accepted connection: a client that
/// stops sending (read) or stops receiving (write) must not pin a
/// worker forever.
fn configure_stream(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    registry: &Arc<Registry>,
    supergraph: &Supergraph,
    shutdown: &AtomicBool,
    addr: SocketAddr,
    metrics: &RequestMetrics,
    trace: Option<&TraceSink>,
    tid: u64,
) -> std::io::Result<()> {
    configure_stream(&stream)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    while let Some(line) = read_line(&mut reader)? {
        if line.trim().is_empty() {
            continue;
        }
        let command = match Command::parse(&line) {
            Ok(command) => command,
            Err(err) => {
                writeln!(writer, "{}", status_line(Status::Err, &err.to_string()))?;
                continue;
            }
        };
        registry.note_request();
        let verb = verb_label(&command);
        let started = Instant::now();
        // With `--trace-log` every request becomes a root span named
        // after its verb; the registry's commit/plan/execute spans nest
        // under it on this worker thread.
        let request_span = verb.map(telemetry::span);
        match command {
            Command::Quit => {
                writeln!(writer, "{}", status_line(Status::Ok, "bye"))?;
                return Ok(());
            }
            Command::Shutdown => {
                writeln!(writer, "{}", status_line(Status::Ok, "shutting down"))?;
                writer.flush()?;
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the acceptor with a throwaway connection.
                let _ = TcpStream::connect(addr);
                return Ok(());
            }
            Command::Ping => writeln!(writer, "{}", status_line(Status::Ok, "pong"))?,
            Command::Health => {
                let health = registry.health();
                let mut detail = format!(
                    "state={} retries={} degrade_events={} heal_events={}",
                    health.state(),
                    health.storage_retries,
                    health.degrade_events,
                    health.heal_events
                );
                if let Some(fault) = health.fault_counters {
                    detail.push_str(&format!(
                        " faults_injected={} torn_appends={}",
                        fault.injected, fault.torn_appends
                    ));
                }
                if let Some(err) = &health.last_storage_error {
                    // Free-form text goes last so the key=value fields
                    // stay machine-splittable.
                    detail.push_str(&format!(" last_error={err}"));
                }
                writeln!(writer, "{}", status_line(Status::Ok, &detail))?;
            }
            Command::Snapshot => match registry.snapshot() {
                Ok(generation) => writeln!(
                    writer,
                    "{}",
                    status_line(Status::Ok, &format!("generation={generation}"))
                )?,
                Err(err) => writeln!(writer, "{}", status_line(Status::Err, &err.to_string()))?,
            },
            Command::Put(name) => {
                let mut collector = BlockCollector::new();
                let mut complete = false;
                let block_started = Instant::now();
                while let Some(payload_line) = read_line(&mut reader)? {
                    if collector.push(&payload_line) {
                        complete = true;
                        break;
                    }
                    if block_started.elapsed() > PUT_DEADLINE {
                        // A slow-drip client: each line lands within the
                        // read timeout, but the block as a whole never
                        // finishes. Cut it loose.
                        writeln!(
                            writer,
                            "{}",
                            status_line(Status::Err, "payload deadline exceeded")
                        )?;
                        return Ok(());
                    }
                }
                if !complete {
                    // Connection died mid-block; nothing to answer.
                    return Ok(());
                }
                let response = match route_member(registry, supergraph, &name) {
                    Ok((routed, member)) => put_member(&routed, &member, &collector.finish()),
                    Err(detail) => status_line(Status::Err, &detail),
                };
                writeln!(writer, "{response}")?;
            }
            Command::Get(name) => match route_member(registry, supergraph, &name) {
                Err(detail) => writeln!(writer, "{}", status_line(Status::Err, &detail))?,
                Ok((routed, member)) => match routed.get(&member) {
                    Some(version) => {
                        let doc = NamedSchema {
                            name: member.clone(),
                            schema: schema_merge_core::AnnotatedSchema::all_required(
                                version.schema.as_ref().clone(),
                            ),
                            keys: schema_merge_core::KeyAssignment::new(),
                        };
                        let detail = format!(
                            "hash={:016x} sequence={} generation={}",
                            version.hash, version.sequence, version.generation
                        );
                        writeln!(writer, "{}", status_line(Status::Data, &detail))?;
                        write!(writer, "{}", encode_block(&print_schema(&doc)))?;
                    }
                    None => writeln!(
                        writer,
                        "{}",
                        status_line(Status::Err, &format!("no member named `{name}`"))
                    )?,
                },
            },
            Command::Delete(name) => match route_member(registry, supergraph, &name) {
                Err(detail) => writeln!(writer, "{}", status_line(Status::Err, &detail))?,
                Ok((routed, member)) => match routed.delete(&member) {
                    Ok(outcome) => {
                        let detail = format!(
                            "generation={} remaining={} strategy={}",
                            outcome.generation,
                            outcome.remaining,
                            outcome.strategy.as_str()
                        );
                        writeln!(writer, "{}", status_line(Status::Ok, &detail))?;
                    }
                    Err(err) => writeln!(writer, "{}", status_line(Status::Err, &err.to_string()))?,
                },
            },
            Command::Merged => {
                let view = registry.merged();
                let detail = merged_detail(&view);
                let doc = NamedSchema {
                    name: "merged".into(),
                    schema: schema_merge_core::AnnotatedSchema::all_required(
                        view.proper.as_weak().clone(),
                    ),
                    keys: schema_merge_core::KeyAssignment::new(),
                };
                let mut payload = print_schema(&doc);
                payload.push_str(&format!(
                    "// implicit classes: {}\n",
                    view.report.num_implicit()
                ));
                writeln!(writer, "{}", status_line(Status::Data, &detail))?;
                write!(writer, "{}", encode_block(&payload))?;
            }
            Command::Stats => {
                let stats = registry.stats();
                writeln!(
                    writer,
                    "{}",
                    status_line(Status::Data, &format!("generation={}", stats.generation))
                )?;
                write!(writer, "{}", encode_block(&format!("{stats}\n")))?;
            }
            Command::Metrics => {
                let payload = render_metrics(registry, supergraph, metrics);
                writeln!(
                    writer,
                    "{}",
                    status_line(Status::Data, &format!("bytes={}", payload.len()))
                )?;
                write!(writer, "{}", encode_block(&payload))?;
            }
            Command::List => {
                let members = registry.list();
                let mut payload = String::new();
                for m in &members {
                    payload.push_str(&format!(
                        "{} hash={:016x} v{} classes={} arrows={}\n",
                        m.name, m.hash, m.sequence, m.num_classes, m.num_arrows
                    ));
                }
                writeln!(
                    writer,
                    "{}",
                    status_line(Status::Data, &format!("members={}", members.len()))
                )?;
                write!(writer, "{}", encode_block(&payload))?;
            }
            Command::Attach(name) => match supergraph.attach_new(&name) {
                Ok(_) => {
                    let detail = format!("registry={name} registries={}", supergraph.len());
                    writeln!(writer, "{}", status_line(Status::Ok, &detail))?;
                }
                Err(err) => writeln!(writer, "{}", supergraph_err(&err))?,
            },
            Command::Detach(name) => match supergraph.detach(&name) {
                Ok(_) => {
                    let detail = format!("registry={name} registries={}", supergraph.len());
                    writeln!(writer, "{}", status_line(Status::Ok, &detail))?;
                }
                Err(err) => writeln!(writer, "{}", supergraph_err(&err))?,
            },
            Command::Compose => match supergraph.compose() {
                Ok(outcome) => {
                    let weak = outcome.view.proper().as_weak();
                    let detail = format!(
                        "generation={} strategy={} registries={} classes={} arrows={} hints={}",
                        outcome.generation,
                        outcome.strategy.as_str(),
                        outcome.view.members.len(),
                        weak.num_classes(),
                        weak.num_arrows(),
                        outcome.view.hints().count()
                    );
                    writeln!(writer, "{}", status_line(Status::Ok, &detail))?;
                }
                Err(err) => writeln!(writer, "{}", supergraph_err(&err))?,
            },
            Command::Supergraph => {
                let view = supergraph.composed();
                let weak = view.proper().as_weak();
                let detail = format!(
                    "generation={} registries={} classes={} arrows={} hints={} hash={:016x}",
                    view.generation,
                    view.members.len(),
                    weak.num_classes(),
                    weak.num_arrows(),
                    view.hints().count(),
                    view.hash()
                );
                let mut payload = String::new();
                for member in &view.members {
                    payload.push_str(&format!(
                        "registry {} generation={} members={}\n",
                        member.registry, member.generation, member.members
                    ));
                }
                for hint in view.hints() {
                    payload.push_str(&format!("hint[{}] {}\n", hint.code, hint.message));
                }
                let doc = NamedSchema {
                    name: "supergraph".into(),
                    schema: schema_merge_core::AnnotatedSchema::all_required(weak.clone()),
                    keys: schema_merge_core::KeyAssignment::new(),
                };
                payload.push_str(&print_schema(&doc));
                payload.push_str(&format!(
                    "// implicit classes: {}\n",
                    view.report.implicit.num_implicit()
                ));
                writeln!(writer, "{}", status_line(Status::Data, &detail))?;
                write!(writer, "{}", encode_block(&payload))?;
            }
            Command::Query(path) => match parse_path_query(&path) {
                Ok(query) => {
                    let classes = registry.query(&query);
                    let rendered: Vec<String> = classes.iter().map(|c| c.to_string()).collect();
                    let detail = format!("{} result(s): {}", rendered.len(), rendered.join(", "));
                    writeln!(writer, "{}", status_line(Status::Ok, detail.trim_end()))?;
                }
                Err(err) => writeln!(writer, "{}", status_line(Status::Err, &err.to_string()))?,
            },
        }
        drop(request_span);
        if let Some(verb) = verb {
            metrics.record(verb, started.elapsed());
        }
        if let Some(trace) = trace {
            trace.drain_thread(tid);
        }
        writer.flush()?;
    }
    Ok(())
}

fn merged_detail(view: &MergedView) -> String {
    let weak = view.proper.as_weak();
    format!(
        "generation={} hash={:016x} classes={} arrows={}",
        view.generation,
        view.hash(),
        weak.num_classes(),
        weak.num_arrows()
    )
}

/// Parses and publishes a `PUT` payload: every schema in the document is
/// weak-joined into the member's single published schema (publishing a
/// document *is* publishing its merge — associativity makes the grouping
/// irrelevant).
fn put_member(registry: &Registry, name: &str, payload: &str) -> String {
    let docs = match parse_document(payload) {
        Ok(docs) => docs,
        Err(err) => return status_line(Status::Err, &format!("parse failed: {err}")),
    };
    if docs.is_empty() {
        return status_line(Status::Err, "payload contains no schemas");
    }
    let joined = match Merger::new()
        .schemas(docs.iter().map(|d| d.schema.schema()))
        .join()
    {
        Ok(joined) => joined.into_weak(),
        Err(err) => {
            return status_line(
                Status::Err,
                &format!("payload does not merge [{}]: {err}", err.code()),
            )
        }
    };
    match registry.put(name, joined) {
        Ok(outcome) => status_line(
            Status::Ok,
            &format!(
                "hash={:016x} sequence={} generation={} strategy={}",
                outcome.hash,
                outcome.sequence,
                outcome.generation,
                outcome.strategy.as_str()
            ),
        ),
        Err(err) => status_line(Status::Err, &err.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Both socket deadlines are armed on every accepted connection —
    /// notably the write timeout, so a client that stops reading
    /// mid-response cannot pin a worker forever.
    #[test]
    fn configure_stream_arms_read_and_write_timeouts() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        assert_eq!(accepted.read_timeout().unwrap(), None);
        assert_eq!(accepted.write_timeout().unwrap(), None);
        configure_stream(&accepted).unwrap();
        assert_eq!(accepted.read_timeout().unwrap(), Some(READ_TIMEOUT));
        assert_eq!(accepted.write_timeout().unwrap(), Some(WRITE_TIMEOUT));
    }
}
