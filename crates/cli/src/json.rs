//! Hand-rolled JSON rendering for `--format json` output (std-only, no
//! serde): `smerge merge`, `stats` and `check` emit the façade's
//! [`MergeReport`]/[`Diagnostic`] structures with **stable field order**
//! so the daemon and CI can consume machine-readable output without
//! depending on incidental formatting.
//!
//! Only what the CLI needs is implemented: objects and arrays are
//! emitted in source order, strings are escaped per RFC 8259 (including
//! control characters), numbers are integers or the `%.2f` floats the
//! reports carry, and hashes are rendered as fixed-width hex strings
//! (JSON numbers cannot carry 64-bit hashes losslessly).

use schema_merge_core::{
    AnnotatedSchema, Diagnostic, KeyAssignment, MergeReport, Participation, WeakSchema,
};
use schema_merge_supergraph::ComposedView;
use schema_merge_text::NamedSchema;

/// Escapes a string for a JSON string literal (without the quotes).
pub(crate) fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn quoted(text: &str) -> String {
    format!("\"{}\"", escape(text))
}

fn string_array<I: IntoIterator<Item = String>>(items: I) -> String {
    let rendered: Vec<String> = items.into_iter().map(|s| quoted(&s)).collect();
    format!("[{}]", rendered.join(", "))
}

/// One diagnostic as a JSON object.
fn diagnostic(diag: &Diagnostic) -> String {
    let mut out = format!(
        "{{\"severity\": {}, \"code\": {}, \"message\": {}",
        quoted(diag.severity.as_str()),
        quoted(diag.code),
        quoted(&diag.message),
    );
    if !diag.origin.is_empty() {
        out.push_str(", \"origin\": {");
        let mut fields: Vec<String> = Vec::new();
        if let Some(index) = diag.origin.input {
            fields.push(format!("\"input\": {index}"));
        }
        if let Some(name) = &diag.origin.input_name {
            fields.push(format!("\"input_name\": {}", quoted(name)));
        }
        if !diag.origin.classes.is_empty() {
            fields.push(format!(
                "\"classes\": {}",
                string_array(diag.origin.classes.iter().map(|c| c.to_string()))
            ));
        }
        if !diag.origin.labels.is_empty() {
            fields.push(format!(
                "\"labels\": {}",
                string_array(diag.origin.labels.iter().map(|l| l.to_string()))
            ));
        }
        out.push_str(&fields.join(", "));
        out.push('}');
    }
    out.push('}');
    out
}

pub(crate) fn diagnostics_array(diags: &[Diagnostic]) -> String {
    let rendered: Vec<String> = diags.iter().map(diagnostic).collect();
    format!("[{}]", rendered.join(", "))
}

/// The merged schema's structure: classes, specializations, arrows with
/// participation, keys, content hash.
fn schema_object(
    weak: &WeakSchema,
    keys: &KeyAssignment,
    annotated: Option<&AnnotatedSchema>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "      \"classes\": {},\n",
        string_array(weak.classes().map(|c| c.to_string()))
    ));
    let specs: Vec<String> = weak
        .specialization_pairs()
        .map(|(sub, sup)| {
            format!(
                "[{}, {}]",
                quoted(&sub.to_string()),
                quoted(&sup.to_string())
            )
        })
        .collect();
    out.push_str(&format!(
        "      \"specializations\": [{}],\n",
        specs.join(", ")
    ));
    let arrows: Vec<String> = weak
        .arrow_triples()
        .map(|(src, label, tgt)| {
            let optional = annotated
                .is_some_and(|a| a.participation(src, label, tgt) == Participation::ZeroOrOne);
            format!(
                "[{}, {}, {}, {}]",
                quoted(&src.to_string()),
                quoted(label.as_ref()),
                quoted(&tgt.to_string()),
                quoted(if optional { "optional" } else { "required" }),
            )
        })
        .collect();
    out.push_str(&format!("      \"arrows\": [{}],\n", arrows.join(", ")));
    let key_objs: Vec<String> = keys
        .keyed_classes()
        .map(|class| {
            let families: Vec<String> = keys
                .family(class)
                .minimal_keys()
                .map(|key| string_array(key.labels().map(|l| l.to_string())))
                .collect();
            format!(
                "{{\"class\": {}, \"keys\": [{}]}}",
                quoted(&class.to_string()),
                families.join(", ")
            )
        })
        .collect();
    out.push_str(&format!("      \"keys\": [{}],\n", key_objs.join(", ")));
    out.push_str(&format!(
        "      \"content_hash\": \"{:016x}\"\n    }}",
        weak.content_hash()
    ));
    out
}

/// The full `smerge merge --format json` document.
pub(crate) fn merge_report(report: &MergeReport) -> String {
    let mut out = String::from("{\n  \"command\": \"merge\",\n");

    // Plan.
    let passes: Vec<String> = report.plan.passes.iter().map(|p| p.to_string()).collect();
    out.push_str(&format!(
        "  \"plan\": {{\"mode\": {}, \"engine\": {}, \"threads\": {}, \"passes\": {}, \
         \"inputs\": {}, \"assertions\": {}, \"reuses_base\": {}, \"estimated_classes\": {}, \
         \"estimated_arrows\": {}, \"estimated_spec_pairs\": {}, \"work_units\": {}}},\n",
        quoted(report.plan.mode.as_str()),
        quoted(report.plan.engine.as_str()),
        report.plan.threads,
        string_array(passes),
        report.plan.num_inputs,
        report.plan.num_assertions,
        report.plan.reuses_base,
        report.plan.estimated_classes,
        report.plan.estimated_arrows,
        report.plan.estimated_spec_pairs,
        report.plan.work_units(),
    ));

    // Result schema (with participation marks when the merge carried
    // annotations).
    let weak = report.proper.as_weak();
    out.push_str(&format!(
        "  \"result\": {},\n",
        schema_object(weak, &report.keys, report.annotated.as_ref())
    ));

    // Implicit classes.
    let implicit: Vec<String> = report
        .implicit
        .implicit
        .iter()
        .map(|info| {
            format!(
                "{{\"class\": {}, \"members\": {}, \"witness\": {}}}",
                quoted(&info.class.to_string()),
                string_array(info.members.iter().map(|m| m.to_string())),
                quoted(&info.witness.to_string()),
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"implicit_classes\": [{}],\n",
        implicit.join(", ")
    ));

    // Union classes (lower mode).
    if let Some(lower) = &report.lower {
        let unions: Vec<String> = lower
            .unions
            .iter()
            .map(|info| {
                format!(
                    "{{\"class\": {}, \"members\": {}, \"demanded_by\": [{}, {}]}}",
                    quoted(&info.class.to_string()),
                    string_array(info.members.iter().map(|m| m.to_string())),
                    quoted(&info.demanded_by.0.to_string()),
                    quoted(info.demanded_by.1.as_ref()),
                )
            })
            .collect();
        out.push_str(&format!("  \"union_classes\": [{}],\n", unions.join(", ")));
    }

    // Provenance.
    let provenance: Vec<String> = report
        .provenance
        .iter()
        .map(|p| {
            format!(
                "{{\"index\": {}, \"name\": {}, \"classes\": {}, \"arrows\": {}, \
                 \"specializations\": {}, \"optional_arrows\": {}, \"content_hash\": {}}}",
                p.index,
                p.name.as_deref().map_or("null".to_string(), quoted),
                p.classes,
                p.arrows,
                p.specializations,
                p.optional_arrows,
                p.content_hash
                    .map_or("null".to_string(), |h| format!("\"{h:016x}\"")),
            )
        })
        .collect();
    out.push_str(&format!("  \"provenance\": [{}],\n", provenance.join(", ")));

    // Phase-level spans (only when the merge ran with `--trace`).
    if let Some(trace) = &report.trace {
        let spans: Vec<String> = trace
            .spans
            .iter()
            .map(|span| {
                let attrs: Vec<String> = span
                    .attrs
                    .iter()
                    .map(|(key, value)| format!("\"{key}\": {value}"))
                    .collect();
                format!(
                    "{{\"name\": {}, \"id\": {}, \"parent\": {}, \"start_ns\": {}, \
                     \"duration_ns\": {}, \"attrs\": {{{}}}}}",
                    quoted(span.name),
                    span.id,
                    span.parent.map_or("null".to_string(), |p| p.to_string()),
                    span.start_ns,
                    span.duration_ns,
                    attrs.join(", "),
                )
            })
            .collect();
        out.push_str(&format!("  \"trace\": [{}],\n", spans.join(", ")));
    }

    out.push_str(&format!(
        "  \"diagnostics\": {}\n}}\n",
        diagnostics_array(&report.diagnostics)
    ));
    out
}

/// The `smerge stats --format json` document.
/// The `smerge compose --format json` document: the composed supergraph
/// view with per-registry contributions, cross-registry provenance and
/// the full diagnostics list (merger diagnostics plus `H-COMPOSE-*`
/// hints).
pub(crate) fn compose(view: &ComposedView) -> String {
    let report = &view.report;
    let weak = report.proper.as_weak();
    let mut out = String::from("{\n  \"command\": \"compose\",\n");
    out.push_str(&format!("  \"generation\": {},\n", view.generation));
    out.push_str(&format!(
        "  \"strategy\": {},\n",
        quoted(view.strategy.as_str())
    ));
    let registries: Vec<String> = view
        .members
        .iter()
        .map(|m| {
            format!(
                "{{\"registry\": {}, \"generation\": {}, \"members\": {}}}",
                quoted(&m.registry),
                m.generation,
                m.members
            )
        })
        .collect();
    out.push_str(&format!("  \"registries\": [{}],\n", registries.join(", ")));
    out.push_str(&format!(
        "  \"schema\": {},\n",
        schema_object(weak, &report.keys, None)
    ));

    let origins = view.origins();
    let classes: Vec<String> = origins
        .classes
        .iter()
        .map(|(class, labels)| {
            format!(
                "{{\"class\": {}, \"origins\": {}}}",
                quoted(&class.to_string()),
                string_array(labels.iter().cloned())
            )
        })
        .collect();
    let arrows: Vec<String> = origins
        .arrows
        .iter()
        .map(|((src, label, tgt), labels)| {
            format!(
                "{{\"arrow\": [{}, {}, {}], \"origins\": {}}}",
                quoted(&src.to_string()),
                quoted(label.as_ref()),
                quoted(&tgt.to_string()),
                string_array(labels.iter().cloned())
            )
        })
        .collect();
    let implicit: Vec<String> = origins
        .implicit
        .iter()
        .map(|(class, labels)| {
            format!(
                "{{\"class\": {}, \"origins\": {}}}",
                quoted(&class.to_string()),
                string_array(labels.iter().cloned())
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"origins\": {{\n    \"classes\": [{}],\n    \"arrows\": [{}],\n    \
         \"implicit\": [{}]\n  }},\n",
        classes.join(", "),
        arrows.join(", "),
        implicit.join(", ")
    ));
    out.push_str(&format!(
        "  \"diagnostics\": {}\n}}",
        diagnostics_array(&report.diagnostics)
    ));
    out
}

pub(crate) fn stats(docs: &[NamedSchema]) -> String {
    let rows: Vec<String> = docs
        .iter()
        .map(|doc| {
            let weak = doc.schema.schema();
            format!(
                "    {{\"name\": {}, \"classes\": {}, \"specializations\": {}, \"arrows\": {}, \
                 \"optional_arrows\": {}, \"keyed_classes\": {}, \"labels\": {}, \
                 \"content_hash\": \"{:016x}\"}}",
                quoted(&doc.name),
                weak.num_classes(),
                weak.num_specializations(),
                weak.num_arrows(),
                doc.schema.num_optional(),
                doc.keys.num_keyed_classes(),
                weak.all_labels().len(),
                weak.content_hash(),
            )
        })
        .collect();
    format!(
        "{{\n  \"command\": \"stats\",\n  \"schemas\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

/// One `smerge check --format json` row.
pub(crate) struct CheckRow {
    pub name: String,
    pub classes: usize,
    pub arrows: usize,
    pub specializations: usize,
    pub proper: bool,
    pub diagnostics: Vec<Diagnostic>,
}

/// The `smerge check --format json` document.
pub(crate) fn check(rows: &[&CheckRow]) -> String {
    let rendered: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "    {{\"name\": {}, \"classes\": {}, \"arrows\": {}, \"specializations\": {}, \
                 \"proper\": {}, \"diagnostics\": {}}}",
                quoted(&row.name),
                row.classes,
                row.arrows,
                row.specializations,
                row.proper,
                diagnostics_array(&row.diagnostics),
            )
        })
        .collect();
    format!(
        "{{\n  \"command\": \"check\",\n  \"schemas\": [\n{}\n  ]\n}}\n",
        rendered.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn diagnostics_render_origin_fields() {
        let diag = schema_merge_core::Diagnostic::warning("W-X", "msg").with_input(1, Some("a"));
        let json = diagnostics_array(&[diag]);
        assert!(json.contains("\"severity\": \"warning\""));
        assert!(json.contains("\"code\": \"W-X\""));
        assert!(json.contains("\"origin\": {\"input\": 1, \"input_name\": \"a\"}"));
    }
}
