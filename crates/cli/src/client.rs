//! `smerge client` — one-shot protocol client for a running
//! `smerge serve` daemon.
//!
//! ```text
//! smerge client 127.0.0.1:7411 put inventory schemas/inventory.sm
//! smerge client 127.0.0.1:7411 merged
//! smerge client 127.0.0.1:7411 query Dog.owner
//! smerge client 127.0.0.1:7411 shutdown
//! ```
//!
//! Prints the server's status detail (and block payload, if any) to
//! stdout. An `ERR` response becomes a nonzero exit code, so scripts
//! and CI can gate on it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use schema_merge_text::encode_block;
use schema_merge_text::protocol::{parse_status_line, BlockCollector, Command, Status};

use crate::app::CliError;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Builds the wire command (and payload block, for `put`) from argv.
fn build_request(words: &[&String]) -> Result<(Command, Option<String>), CliError> {
    let usage = || {
        CliError::Usage(
            "expected `client <addr> <put <name> <file> | get <name> | delete <name> | \
             merged | stats | metrics | list | query <path> | snapshot | ping | shutdown>`"
                .into(),
        )
    };
    let verb = words.first().ok_or_else(usage)?;
    match (verb.as_str(), &words[1..]) {
        ("put", [name, file]) => {
            let payload = std::fs::read_to_string(file.as_str())
                .map_err(|err| CliError::Data(format!("{file}: {err}")))?;
            Ok((Command::Put((*name).clone()), Some(payload)))
        }
        ("get", [name]) => Ok((Command::Get((*name).clone()), None)),
        ("delete", [name]) => Ok((Command::Delete((*name).clone()), None)),
        ("merged", []) => Ok((Command::Merged, None)),
        ("stats", []) => Ok((Command::Stats, None)),
        ("metrics", []) => Ok((Command::Metrics, None)),
        ("list", []) => Ok((Command::List, None)),
        ("query", [path]) => Ok((Command::Query((*path).clone()), None)),
        ("snapshot", []) => Ok((Command::Snapshot, None)),
        ("ping", []) => Ok((Command::Ping, None)),
        ("shutdown", []) => Ok((Command::Shutdown, None)),
        _ => Err(usage()),
    }
}

/// Connects, sends one command, prints the response.
pub fn client_command(args: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let (addr, words) = args
        .split_first()
        .ok_or_else(|| CliError::Usage("expected `client <addr> <command> [args]`".into()))?;
    let (command, payload) = build_request(words)?;

    let stream = TcpStream::connect(addr.as_str())
        .map_err(|err| CliError::Data(format!("{addr}: {err}")))?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    writeln!(writer, "{command}")?;
    if let Some(payload) = payload {
        write!(writer, "{}", encode_block(&payload))?;
    }
    writer.flush()?;

    let mut status = String::new();
    if reader.read_line(&mut status)? == 0 {
        return Err(CliError::Data("server closed the connection".into()));
    }
    let (status, detail) = parse_status_line(&status)
        .map_err(|err| CliError::Data(format!("malformed response: {err}")))?;
    match status {
        Status::Ok => {
            writeln!(out, "{detail}")?;
            Ok(())
        }
        Status::Data => {
            if !detail.is_empty() {
                writeln!(out, "// {detail}")?;
            }
            let mut collector = BlockCollector::new();
            loop {
                let mut line = String::new();
                if reader.read_line(&mut line)? == 0 {
                    return Err(CliError::Data("connection closed mid-block".into()));
                }
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                if collector.push(&line) {
                    break;
                }
            }
            write!(out, "{}", collector.finish())?;
            Ok(())
        }
        Status::Err => Err(CliError::Data(detail.to_string())),
    }
}
