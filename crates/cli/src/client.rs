//! `smerge client` — one-shot protocol client for a running
//! `smerge serve` daemon.
//!
//! ```text
//! smerge client 127.0.0.1:7411 put inventory schemas/inventory.sm
//! smerge client 127.0.0.1:7411 merged
//! smerge client 127.0.0.1:7411 attach billing
//! smerge client 127.0.0.1:7411 compose
//! smerge client 127.0.0.1:7411 shutdown
//! ```
//!
//! Prints the server's status detail (and block payload, if any) to
//! stdout. An `ERR` response becomes a nonzero exit code, so scripts
//! and CI can gate on it. A daemon that drops the connection mid-frame
//! (before the status line, or inside a dot-framed block) is reported
//! as a diagnosable `error[E-CLI-DATA]` — never a raw I/O failure.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::time::Duration;

use schema_merge_text::encode_block;
use schema_merge_text::protocol::{parse_status_line, BlockCollector, Command, Status};

use crate::app::CliError;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Builds the wire command (and payload block, for `put`) from argv.
fn build_request(words: &[&String]) -> Result<(Command, Option<String>), CliError> {
    let usage = || {
        CliError::Usage(
            "expected `client <addr> <put <name> <file> | get <name> | delete <name> | \
             merged | stats | metrics | list | query <path> | attach <registry> | \
             detach <registry> | compose | supergraph | snapshot | ping | shutdown>`"
                .into(),
        )
    };
    let verb = words.first().ok_or_else(usage)?;
    match (verb.as_str(), &words[1..]) {
        ("put", [name, file]) => {
            let payload = std::fs::read_to_string(file.as_str())
                .map_err(|err| CliError::Data(format!("{file}: {err}")))?;
            Ok((Command::Put((*name).clone()), Some(payload)))
        }
        ("get", [name]) => Ok((Command::Get((*name).clone()), None)),
        ("delete", [name]) => Ok((Command::Delete((*name).clone()), None)),
        ("merged", []) => Ok((Command::Merged, None)),
        ("stats", []) => Ok((Command::Stats, None)),
        ("metrics", []) => Ok((Command::Metrics, None)),
        ("list", []) => Ok((Command::List, None)),
        ("query", [path]) => Ok((Command::Query((*path).clone()), None)),
        ("attach", [name]) => Ok((Command::Attach((*name).clone()), None)),
        ("detach", [name]) => Ok((Command::Detach((*name).clone()), None)),
        ("compose", []) => Ok((Command::Compose, None)),
        ("supergraph", []) => Ok((Command::Supergraph, None)),
        ("snapshot", []) => Ok((Command::Snapshot, None)),
        ("ping", []) => Ok((Command::Ping, None)),
        ("shutdown", []) => Ok((Command::Shutdown, None)),
        _ => Err(usage()),
    }
}

/// The error reported when the daemon drops the connection partway
/// through a response frame.
fn closed(context: &str) -> CliError {
    CliError::Data(format!("connection closed {context}"))
}

/// Reads one line, translating both clean EOF (`Ok(0)`) and the
/// connection-teardown error kinds into the mid-frame error — a daemon
/// crash surfaces the same way regardless of how the socket died.
fn read_response_line(
    reader: &mut impl BufRead,
    buf: &mut String,
    context: &str,
) -> Result<(), CliError> {
    match reader.read_line(buf) {
        Ok(0) => Err(closed(context)),
        Ok(_) => Ok(()),
        Err(err)
            if matches!(
                err.kind(),
                ErrorKind::UnexpectedEof
                    | ErrorKind::ConnectionReset
                    | ErrorKind::ConnectionAborted
                    | ErrorKind::BrokenPipe
            ) =>
        {
            Err(closed(context))
        }
        Err(err) => Err(err.into()),
    }
}

/// Reads and prints one response (status line plus optional dot-framed
/// block). Generic over the reader so the mid-frame disconnect paths are
/// unit-testable without a socket.
fn read_response(reader: &mut impl BufRead, out: &mut dyn Write) -> Result<(), CliError> {
    let mut status = String::new();
    read_response_line(reader, &mut status, "before a response arrived")?;
    let (status, detail) = parse_status_line(&status)
        .map_err(|err| CliError::Data(format!("malformed response: {err}")))?;
    match status {
        Status::Ok => {
            writeln!(out, "{detail}")?;
            Ok(())
        }
        Status::Data => {
            if !detail.is_empty() {
                writeln!(out, "// {detail}")?;
            }
            let mut collector = BlockCollector::new();
            loop {
                let mut line = String::new();
                read_response_line(reader, &mut line, "mid-block")?;
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                if collector.push(&line) {
                    break;
                }
            }
            write!(out, "{}", collector.finish())?;
            Ok(())
        }
        Status::Err => Err(CliError::Data(detail.to_string())),
    }
}

/// Connects, sends one command, prints the response.
pub fn client_command(args: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let (addr, words) = args
        .split_first()
        .ok_or_else(|| CliError::Usage("expected `client <addr> <command> [args]`".into()))?;
    let (command, payload) = build_request(words)?;

    let stream = TcpStream::connect(addr.as_str())
        .map_err(|err| CliError::Data(format!("{addr}: {err}")))?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    writeln!(writer, "{command}")?;
    if let Some(payload) = payload {
        write!(writer, "{}", encode_block(&payload))?;
    }
    writer.flush()?;

    read_response(&mut reader, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn respond(wire: &str) -> Result<String, CliError> {
        let mut reader = Cursor::new(wire.as_bytes().to_vec());
        let mut out = Vec::new();
        read_response(&mut reader, &mut out).map(|()| String::from_utf8(out).unwrap())
    }

    #[test]
    fn ok_and_data_responses_print() {
        assert_eq!(respond("OK pong\n").unwrap(), "pong\n");
        assert_eq!(
            respond("DATA members=1\nshelf hash=1 v1\n.\n").unwrap(),
            "// members=1\nshelf hash=1 v1\n"
        );
    }

    #[test]
    fn err_response_is_a_data_error() {
        let err = respond("ERR no member named `x`\n").unwrap_err();
        assert_eq!(err.code(), "E-CLI-DATA");
        assert!(err.to_string().contains("no member named"), "{err}");
    }

    #[test]
    fn connection_dropped_before_any_response() {
        let err = respond("").unwrap_err();
        assert_eq!(err.code(), "E-CLI-DATA");
        assert!(
            err.to_string()
                .contains("connection closed before a response arrived"),
            "{err}"
        );
    }

    /// The daemon died after the `DATA` status line, half-way through the
    /// dot-framed block: the client must exit with a diagnosable
    /// `E-CLI-DATA` error, not a raw I/O failure or an endless wait.
    #[test]
    fn connection_dropped_mid_block_is_diagnosed() {
        let err =
            respond("DATA generation=3\nschema merged {\n    Dog --age--> int;\n").unwrap_err();
        assert_eq!(err.code(), "E-CLI-DATA");
        assert!(
            err.to_string().contains("connection closed mid-block"),
            "{err}"
        );
    }

    /// Teardown surfacing as an error (reset) diagnoses identically to a
    /// clean EOF.
    #[test]
    fn connection_reset_mid_block_is_diagnosed() {
        struct Reset<'a>(Cursor<&'a [u8]>);
        impl std::io::Read for Reset<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.read(buf) {
                    Ok(0) => Err(std::io::Error::from(ErrorKind::ConnectionReset)),
                    other => other,
                }
            }
        }
        impl BufRead for Reset<'_> {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                if self.0.position() >= self.0.get_ref().len() as u64 {
                    return Err(std::io::Error::from(ErrorKind::ConnectionReset));
                }
                self.0.fill_buf()
            }
            fn consume(&mut self, amt: usize) {
                self.0.consume(amt)
            }
        }
        let mut reader = Reset(Cursor::new(b"DATA bytes=512\npartial payload\n"));
        let mut out = Vec::new();
        let err = read_response(&mut reader, &mut out).unwrap_err();
        assert_eq!(err.code(), "E-CLI-DATA");
        assert!(
            err.to_string().contains("connection closed mid-block"),
            "{err}"
        );
    }

    #[test]
    fn new_verbs_build_requests() {
        let attach = "attach".to_string();
        let billing = "billing".to_string();
        let words = [&attach, &billing];
        let (command, payload) = build_request(&words).unwrap();
        assert_eq!(command, Command::Attach("billing".into()));
        assert!(payload.is_none());

        let compose = "compose".to_string();
        let (command, _) = build_request(&[&compose]).unwrap();
        assert_eq!(command, Command::Compose);

        let supergraph = "supergraph".to_string();
        let (command, _) = build_request(&[&supergraph]).unwrap();
        assert_eq!(command, Command::Supergraph);

        // Trailing junk on a bare verb is a usage error.
        let err = build_request(&[&compose, &billing]).unwrap_err();
        assert_eq!(err.code(), "E-CLI-USAGE");
    }
}
