//! `smerge client` — one-shot protocol client for a running
//! `smerge serve` daemon.
//!
//! ```text
//! smerge client 127.0.0.1:7411 put inventory schemas/inventory.sm
//! smerge client 127.0.0.1:7411 merged
//! smerge client 127.0.0.1:7411 attach billing
//! smerge client 127.0.0.1:7411 --retries 3 health
//! smerge client 127.0.0.1:7411 shutdown
//! ```
//!
//! Prints the server's status detail (and block payload, if any) to
//! stdout. Failures are classified into distinct stable codes so
//! scripts and CI can gate on them:
//!
//! - `E-CLI-CONNECT` — the daemon was never reached (refused,
//!   unreachable, or no response before the timeout). Transient:
//!   `--retries N` re-sends idempotent read verbs with exponential
//!   backoff (`--retry-backoff-ms`, default 100).
//! - `E-CLI-PROTOCOL` — the peer answered, but not in our protocol
//!   (malformed status line). Permanent; never retried.
//! - `E-CLI-DATA` — the daemon rejected the request (`ERR …`), or
//!   dropped the connection mid-frame (before the status line, or
//!   inside a dot-framed block). Permanent; never retried, because
//!   the daemon may already have acted on the request.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::time::Duration;

use schema_merge_text::encode_block;
use schema_merge_text::protocol::{parse_status_line, BlockCollector, Command, Status};

use crate::app::CliError;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Default backoff before the first retry; doubled per attempt.
const DEFAULT_RETRY_BACKOFF: Duration = Duration::from_millis(100);

/// Builds the wire command (and payload block, for `put`) from argv.
fn build_request(words: &[&String]) -> Result<(Command, Option<String>), CliError> {
    let usage = || {
        CliError::Usage(
            "expected `client <addr> [--retries N] [--retry-backoff-ms M] \
             <put <name> <file> | get <name> | delete <name> | \
             merged | stats | metrics | list | query <path> | attach <registry> | \
             detach <registry> | compose | supergraph | snapshot | ping | health | \
             shutdown>`"
                .into(),
        )
    };
    let verb = words.first().ok_or_else(usage)?;
    match (verb.as_str(), &words[1..]) {
        ("put", [name, file]) => {
            let payload = std::fs::read_to_string(file.as_str())
                .map_err(|err| CliError::Data(format!("{file}: {err}")))?;
            Ok((Command::Put((*name).clone()), Some(payload)))
        }
        ("get", [name]) => Ok((Command::Get((*name).clone()), None)),
        ("delete", [name]) => Ok((Command::Delete((*name).clone()), None)),
        ("merged", []) => Ok((Command::Merged, None)),
        ("stats", []) => Ok((Command::Stats, None)),
        ("metrics", []) => Ok((Command::Metrics, None)),
        ("list", []) => Ok((Command::List, None)),
        ("query", [path]) => Ok((Command::Query((*path).clone()), None)),
        ("attach", [name]) => Ok((Command::Attach((*name).clone()), None)),
        ("detach", [name]) => Ok((Command::Detach((*name).clone()), None)),
        ("compose", []) => Ok((Command::Compose, None)),
        ("supergraph", []) => Ok((Command::Supergraph, None)),
        ("snapshot", []) => Ok((Command::Snapshot, None)),
        ("ping", []) => Ok((Command::Ping, None)),
        ("health", []) => Ok((Command::Health, None)),
        ("shutdown", []) => Ok((Command::Shutdown, None)),
        _ => Err(usage()),
    }
}

/// Verbs safe to re-send after a connection-level failure: pure reads
/// whose repetition cannot double-apply anything. `put`/`delete`/
/// `snapshot`/`compose` mutate daemon state, `shutdown` is one-shot.
fn is_idempotent(command: &Command) -> bool {
    matches!(
        command,
        Command::Get(_)
            | Command::Merged
            | Command::Stats
            | Command::Metrics
            | Command::List
            | Command::Query(_)
            | Command::Supergraph
            | Command::Ping
            | Command::Health
    )
}

/// Retry knobs stripped from argv by [`split_retry_opts`].
#[derive(Debug)]
struct RetryOpts {
    retries: u32,
    backoff: Duration,
}

/// Strips `--retries N` and `--retry-backoff-ms M` out of the argument
/// list (they may appear anywhere after `client`).
fn split_retry_opts<'a>(args: &[&'a String]) -> Result<(RetryOpts, Vec<&'a String>), CliError> {
    let mut opts = RetryOpts {
        retries: 0,
        backoff: DEFAULT_RETRY_BACKOFF,
    };
    let mut rest: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--retries" => {
                opts.retries = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| CliError::Usage("--retries requires a count".into()))?;
            }
            "--retry-backoff-ms" => {
                opts.backoff = iter
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(Duration::from_millis)
                    .ok_or_else(|| {
                        CliError::Usage("--retry-backoff-ms requires milliseconds".into())
                    })?;
            }
            _ => rest.push(arg),
        }
    }
    Ok((opts, rest))
}

/// The error reported when the daemon drops the connection partway
/// through a response frame.
fn closed(context: &str) -> CliError {
    CliError::Data(format!("connection closed {context}"))
}

/// Reads one line, translating both clean EOF (`Ok(0)`) and the
/// connection-teardown error kinds into the mid-frame error — a daemon
/// crash surfaces the same way regardless of how the socket died. A
/// read timeout means no byte ever arrived, so it is classified as a
/// transient connection failure rather than a mid-frame drop.
fn read_response_line(
    reader: &mut impl BufRead,
    buf: &mut String,
    context: &str,
) -> Result<(), CliError> {
    match reader.read_line(buf) {
        Ok(0) => Err(closed(context)),
        Ok(_) => Ok(()),
        Err(err)
            if matches!(
                err.kind(),
                ErrorKind::UnexpectedEof
                    | ErrorKind::ConnectionReset
                    | ErrorKind::ConnectionAborted
                    | ErrorKind::BrokenPipe
            ) =>
        {
            Err(closed(context))
        }
        Err(err) if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => Err(
            CliError::Connect(format!("timed out waiting for a response {context}")),
        ),
        Err(err) => Err(err.into()),
    }
}

/// Reads and prints one response (status line plus optional dot-framed
/// block). Generic over the reader so the mid-frame disconnect paths are
/// unit-testable without a socket.
fn read_response(reader: &mut impl BufRead, out: &mut dyn Write) -> Result<(), CliError> {
    let mut status = String::new();
    read_response_line(reader, &mut status, "before a response arrived")?;
    let (status, detail) = parse_status_line(&status)
        .map_err(|err| CliError::Protocol(format!("malformed response: {err}")))?;
    match status {
        Status::Ok => {
            writeln!(out, "{detail}")?;
            Ok(())
        }
        Status::Data => {
            if !detail.is_empty() {
                writeln!(out, "// {detail}")?;
            }
            let mut collector = BlockCollector::new();
            loop {
                let mut line = String::new();
                read_response_line(reader, &mut line, "mid-block")?;
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                if collector.push(&line) {
                    break;
                }
            }
            write!(out, "{}", collector.finish())?;
            Ok(())
        }
        Status::Err => Err(CliError::Data(detail.to_string())),
    }
}

/// One connect-send-read round trip. The response is buffered rather
/// than streamed to `out`, so a retried attempt never leaves a partial
/// response in the output.
fn send_once(addr: &str, command: &Command, payload: Option<&str>) -> Result<Vec<u8>, CliError> {
    let stream =
        TcpStream::connect(addr).map_err(|err| CliError::Connect(format!("{addr}: {err}")))?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    writeln!(writer, "{command}")?;
    if let Some(payload) = payload {
        write!(writer, "{}", encode_block(payload))?;
    }
    writer.flush()?;

    let mut buf = Vec::new();
    read_response(&mut reader, &mut buf)?;
    Ok(buf)
}

/// Connects, sends one command, prints the response. With `--retries`,
/// transient connection failures on idempotent verbs are re-sent with
/// exponential backoff.
pub fn client_command(args: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let (opts, rest) = split_retry_opts(args)?;
    let (addr, words) = rest
        .split_first()
        .ok_or_else(|| CliError::Usage("expected `client <addr> <command> [args]`".into()))?;
    let (command, payload) = build_request(words)?;
    let retryable = opts.retries > 0 && is_idempotent(&command);

    let mut attempt: u32 = 0;
    loop {
        match send_once(addr, &command, payload.as_deref()) {
            Ok(buf) => {
                out.write_all(&buf)?;
                return Ok(());
            }
            Err(err) if retryable && err.is_transient() && attempt < opts.retries => {
                attempt += 1;
                std::thread::sleep(opts.backoff * 2u32.pow((attempt - 1).min(16)));
            }
            Err(err) => return Err(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn respond(wire: &str) -> Result<String, CliError> {
        let mut reader = Cursor::new(wire.as_bytes().to_vec());
        let mut out = Vec::new();
        read_response(&mut reader, &mut out).map(|()| String::from_utf8(out).unwrap())
    }

    #[test]
    fn ok_and_data_responses_print() {
        assert_eq!(respond("OK pong\n").unwrap(), "pong\n");
        assert_eq!(
            respond("DATA members=1\nshelf hash=1 v1\n.\n").unwrap(),
            "// members=1\nshelf hash=1 v1\n"
        );
    }

    #[test]
    fn err_response_is_a_data_error() {
        let err = respond("ERR no member named `x`\n").unwrap_err();
        assert_eq!(err.code(), "E-CLI-DATA");
        assert!(err.to_string().contains("no member named"), "{err}");
        assert!(!err.is_transient());
    }

    /// A peer that talks a different protocol (no OK/DATA/ERR status
    /// word) is a permanent `E-CLI-PROTOCOL` error, distinct from a
    /// daemon-side rejection.
    #[test]
    fn malformed_status_line_is_a_protocol_error() {
        let err = respond("HTTP/1.1 400 Bad Request\n").unwrap_err();
        assert_eq!(err.code(), "E-CLI-PROTOCOL");
        assert!(err.to_string().contains("malformed response"), "{err}");
        assert!(!err.is_transient());
    }

    #[test]
    fn connection_dropped_before_any_response() {
        let err = respond("").unwrap_err();
        assert_eq!(err.code(), "E-CLI-DATA");
        assert!(
            err.to_string()
                .contains("connection closed before a response arrived"),
            "{err}"
        );
    }

    /// The daemon died after the `DATA` status line, half-way through the
    /// dot-framed block: the client must exit with a diagnosable
    /// `E-CLI-DATA` error, not a raw I/O failure or an endless wait.
    #[test]
    fn connection_dropped_mid_block_is_diagnosed() {
        let err =
            respond("DATA generation=3\nschema merged {\n    Dog --age--> int;\n").unwrap_err();
        assert_eq!(err.code(), "E-CLI-DATA");
        assert!(
            err.to_string().contains("connection closed mid-block"),
            "{err}"
        );
        assert!(!err.is_transient(), "mid-frame drops must not be retried");
    }

    /// Teardown surfacing as an error (reset) diagnoses identically to a
    /// clean EOF.
    #[test]
    fn connection_reset_mid_block_is_diagnosed() {
        struct Reset<'a>(Cursor<&'a [u8]>);
        impl std::io::Read for Reset<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.read(buf) {
                    Ok(0) => Err(std::io::Error::from(ErrorKind::ConnectionReset)),
                    other => other,
                }
            }
        }
        impl BufRead for Reset<'_> {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                if self.0.position() >= self.0.get_ref().len() as u64 {
                    return Err(std::io::Error::from(ErrorKind::ConnectionReset));
                }
                self.0.fill_buf()
            }
            fn consume(&mut self, amt: usize) {
                self.0.consume(amt)
            }
        }
        let mut reader = Reset(Cursor::new(b"DATA bytes=512\npartial payload\n"));
        let mut out = Vec::new();
        let err = read_response(&mut reader, &mut out).unwrap_err();
        assert_eq!(err.code(), "E-CLI-DATA");
        assert!(
            err.to_string().contains("connection closed mid-block"),
            "{err}"
        );
    }

    /// A read timeout (no byte ever arrived) is transient — the request
    /// may never have reached the daemon — unlike a mid-frame drop.
    #[test]
    fn read_timeout_is_a_transient_connect_error() {
        struct TimedOut;
        impl std::io::Read for TimedOut {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(ErrorKind::TimedOut))
            }
        }
        impl BufRead for TimedOut {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                Err(std::io::Error::from(ErrorKind::TimedOut))
            }
            fn consume(&mut self, _amt: usize) {}
        }
        let mut out = Vec::new();
        let err = read_response(&mut TimedOut, &mut out).unwrap_err();
        assert_eq!(err.code(), "E-CLI-CONNECT");
        assert!(err.is_transient());
    }

    /// Refused connections classify as `E-CLI-CONNECT`, and `--retries`
    /// re-attempts them for idempotent verbs (still failing here, but
    /// with the transient code and no partial output).
    #[test]
    fn refused_connection_is_a_connect_error_and_retries() {
        // Bind then drop a listener so the port is (briefly) refusing.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let addr = addr.to_string();
        let retries = "--retries".to_string();
        let two = "2".to_string();
        let backoff = "--retry-backoff-ms".to_string();
        let one_ms = "1".to_string();
        let ping = "ping".to_string();
        let args = [&addr, &retries, &two, &backoff, &one_ms, &ping];
        let mut out = Vec::new();
        let err = client_command(&args, &mut out).unwrap_err();
        assert_eq!(err.code(), "E-CLI-CONNECT");
        assert!(err.is_transient());
        assert!(out.is_empty(), "failed attempts must not emit output");
    }

    #[test]
    fn retry_flags_parse_and_strip() {
        let a = "--retries".to_string();
        let b = "5".to_string();
        let c = "--retry-backoff-ms".to_string();
        let d = "250".to_string();
        let addr = "127.0.0.1:7411".to_string();
        let verb = "health".to_string();
        let (opts, rest) = split_retry_opts(&[&addr, &a, &b, &c, &d, &verb]).unwrap();
        assert_eq!(opts.retries, 5);
        assert_eq!(opts.backoff, Duration::from_millis(250));
        assert_eq!(rest, [&addr, &verb]);

        let err = split_retry_opts(&[&a]).unwrap_err();
        assert_eq!(err.code(), "E-CLI-USAGE");
    }

    #[test]
    fn health_is_an_idempotent_verb() {
        let health = "health".to_string();
        let (command, payload) = build_request(&[&health]).unwrap();
        assert_eq!(command, Command::Health);
        assert!(payload.is_none());
        assert!(is_idempotent(&command));
        assert!(!is_idempotent(&Command::Put("x".into())));
        assert!(!is_idempotent(&Command::Shutdown));
        assert!(!is_idempotent(&Command::Compose));
    }

    #[test]
    fn new_verbs_build_requests() {
        let attach = "attach".to_string();
        let billing = "billing".to_string();
        let words = [&attach, &billing];
        let (command, payload) = build_request(&words).unwrap();
        assert_eq!(command, Command::Attach("billing".into()));
        assert!(payload.is_none());

        let compose = "compose".to_string();
        let (command, _) = build_request(&[&compose]).unwrap();
        assert_eq!(command, Command::Compose);

        let supergraph = "supergraph".to_string();
        let (command, _) = build_request(&[&supergraph]).unwrap();
        assert_eq!(command, Command::Supergraph);

        // Trailing junk on a bare verb is a usage error.
        let err = build_request(&[&compose, &billing]).unwrap_err();
        assert_eq!(err.code(), "E-CLI-USAGE");
    }
}
