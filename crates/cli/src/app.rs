//! The `smerge` subcommands.
//!
//! Every merging command builds a [`Merger`] from its parsed documents
//! and CLI flags, so the CLI, the daemon and the library all exercise
//! the same code path; `--format json` on `merge`, `stats` and `check`
//! emits the façade's `MergeReport`/`Diagnostic` structures through the
//! hand-rolled serializer in [`crate::json`].

use std::fmt;
use std::io::Write;

use schema_merge_core::{KeyAssignment, MergeError, Merger, SuperkeyFamily};
use schema_merge_text::{
    parse_document, print_schema, render_ascii, to_dot, DotOptions, NamedSchema,
};

use crate::json;

/// A CLI failure: message plus a hint at fault (usage vs data).
///
/// Marked `#[non_exhaustive]`; each variant carries a stable
/// [`code`](CliError::code) surfaced in the CLI's error output.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad invocation.
    Usage(String),
    /// I/O problems.
    Io(std::io::Error),
    /// Parsing or merging failed.
    Data(String),
    /// Could not reach the daemon (refused, timed out, unreachable).
    /// Transient: the client retries these for idempotent verbs.
    Connect(String),
    /// The daemon answered, but not in the dot-framed protocol we
    /// speak (malformed status line). Permanent: never retried.
    Protocol(String),
}

impl CliError {
    /// The stable machine-readable code for this error (`E-CLI-…`).
    pub fn code(&self) -> &'static str {
        match self {
            CliError::Usage(_) => "E-CLI-USAGE",
            CliError::Io(_) => "E-CLI-IO",
            CliError::Data(_) => "E-CLI-DATA",
            CliError::Connect(_) => "E-CLI-CONNECT",
            CliError::Protocol(_) => "E-CLI-PROTOCOL",
        }
    }

    /// Whether retrying the same request might succeed. Only
    /// connection-level failures qualify: a daemon that answered —
    /// even with garbage — has made a durable decision about the
    /// request, so `Data`/`Protocol` errors are permanent.
    pub fn is_transient(&self) -> bool {
        matches!(self, CliError::Connect(_))
    }

    /// Wraps a merge failure, embedding its stable code in the message.
    fn merge(context: &str, err: &MergeError) -> CliError {
        CliError::Data(format!("{context} [{}]: {err}", err.code()))
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Io(err) => write!(f, "{err}"),
            CliError::Data(msg) => write!(f, "{msg}"),
            CliError::Connect(msg) => write!(f, "{msg}"),
            CliError::Protocol(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(err: std::io::Error) -> Self {
        CliError::Io(err)
    }
}

/// Output format selected with `--format` (merge, stats and check).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Format {
    #[default]
    Text,
    Json,
}

/// Strips a `--format <text|json>` flag out of the argument list.
fn split_format<'a>(args: &[&'a String]) -> Result<(Format, Vec<&'a String>), CliError> {
    let mut format = Format::Text;
    let mut rest: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg.as_str() == "--format" {
            format = match iter.next().map(|v| v.as_str()) {
                Some("text") => Format::Text,
                Some("json") => Format::Json,
                other => {
                    return Err(CliError::Usage(format!(
                        "--format expects `text` or `json`, got {}",
                        other.map_or_else(|| "nothing".to_string(), |v| format!("`{v}`"))
                    )))
                }
            };
        } else {
            rest.push(arg);
        }
    }
    Ok((format, rest))
}

/// Strips a `--threads N` flag out of the argument list — the merge
/// engine's worker budget ([`Merger::threads`]).
fn split_threads<'a>(args: &[&'a String]) -> Result<(Option<usize>, Vec<&'a String>), CliError> {
    let mut threads = None;
    let mut rest: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg.as_str() == "--threads" {
            threads = Some(
                iter.next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| CliError::Usage("--threads requires a positive count".into()))?,
            );
        } else {
            rest.push(arg);
        }
    }
    Ok((threads, rest))
}

/// Strips a bare `--trace` flag out of the argument list — phase-level
/// span capture ([`Merger::trace`]).
fn split_trace<'a>(args: &[&'a String]) -> (bool, Vec<&'a String>) {
    let mut trace = false;
    let mut rest: Vec<&String> = Vec::new();
    for arg in args {
        if arg.as_str() == "--trace" {
            trace = true;
        } else {
            rest.push(arg);
        }
    }
    (trace, rest)
}

const USAGE: &str = "\
usage: smerge <command> [args]

commands:
  merge <file>... [--format text|json] [--threads N] [--trace]
                       upper-merge every schema in the files; print the
                       merged schema, its keys and the implicit classes
                       (json: the full MergeReport with plan, provenance
                       and diagnostics; --threads fixes the merge
                       engine's worker budget; --trace appends one timed
                       span per executed merge pass)
  diff <file>          print the symmetric difference of two schemas
                       (the file must contain exactly two)
  lower <file>...      lower-merge every schema (federated view); print
                       the completed result with participation marks
  check <file>... [--format text|json]
                       validate schemas; report whether each is proper
  explain <file>...    like merge, but print only the implicit-class
                       provenance report
  dot <file> [name]    print Graphviz DOT for one schema (default: first)
  ascii <file> [name]  print an ASCII rendering of one schema
  stats <file>... [--format text|json]
                       print size statistics per schema
  bench <file>... [--iters N]
                       time the symbolic vs compiled merge of the given
                       schemas (median of N runs, default 9) and print
                       the speedup
  suggest <file>...    propose synonym unifications and flag homonym
                       clashes between the first two schemas (§3)
  rename <map>... -- <file>...
                       apply renames (Old=New for classes, .old=.new for
                       labels) to every schema and print the results
  functional <file>... print the merged schema's functional-model view
                       (canonical arrows p.a ⇀ q, §2)
  ddl <file>...        merge the schemas and emit SQL CREATE TABLE
                       statements (1NF-stratifiable schemas only)
  conform <schema-file> <instance-file>
                       check every instance against the merged schema
  query <schema-file> <instance-file> <path>
                       evaluate a path query (Start.label[Class].label)
                       against an instance of the merged schema
  compose <file>... [--format text|json] [--threads N]
                       federate: each file becomes one member registry
                       (named by its file stem, each document a member)
                       and the supergraph composes them all; prints the
                       composed schema with per-registry contributions,
                       cross-registry `registry/member@vN` origins and
                       H-COMPOSE-* hints (json: the full composed view)
  serve [--port P] [--threads N] [--merge-threads M]
        [--data-dir DIR] [--snapshot-every K] [--trace-log FILE] [file...]
                       run the registry daemon: members publish schema
                       versions over TCP and the canonical merged view
                       is maintained incrementally (files preload
                       members; --port 0 picks an ephemeral port;
                       --merge-threads fixes the worker budget of the
                       registry's merge plans; --data-dir makes the
                       registry durable — commits are WAL'd and
                       snapshotted there, and restart recovers them;
                       --snapshot-every sets the compaction cadence in
                       records, 0 = manual SNAPSHOT only; --trace-log
                       appends Chrome trace-event JSONL spans for every
                       request the daemon serves)
  client <addr> [--retries N] [--retry-backoff-ms M] <cmd> [args]
                       drive a running daemon: put <name> <file>,
                       get <name>, delete <name>, merged, stats,
                       metrics, list, query <path>, attach <registry>,
                       detach <registry>, compose, supergraph,
                       snapshot, ping, health, shutdown (member names
                       may be namespaced `registry/member` to route to
                       an attached registry; --retries re-sends
                       idempotent reads after connection-level
                       failures, backing off M ms doubled per attempt)
  help                 this message";

/// Entry point shared by `main` and the tests.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut iter = args.iter();
    let command = iter.next().map(String::as_str).unwrap_or("help");
    let rest: Vec<&String> = iter.collect();
    match command {
        "merge" => merge_command(&rest, out, false),
        "diff" => diff_command(&rest, out),
        "explain" => merge_command(&rest, out, true),
        "lower" => lower_command(&rest, out),
        "check" => check_command(&rest, out),
        "dot" => render_command(&rest, out, Renderer::Dot),
        "ascii" => render_command(&rest, out, Renderer::Ascii),
        "stats" => stats_command(&rest, out),
        "bench" => bench_command(&rest, out),
        "suggest" => suggest_command(&rest, out),
        "rename" => rename_command(&rest, out),
        "functional" => functional_command(&rest, out),
        "ddl" => ddl_command(&rest, out),
        "conform" => conform_command(&rest, out),
        "query" => query_command(&rest, out),
        "compose" => compose_command(&rest, out),
        "serve" => crate::serve::serve_command(&rest, out),
        "client" => crate::client::client_command(&rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn load_documents(paths: &[&String]) -> Result<Vec<NamedSchema>, CliError> {
    if paths.is_empty() {
        return Err(CliError::Usage("expected at least one schema file".into()));
    }
    let mut docs = Vec::new();
    for path in paths {
        let source = std::fs::read_to_string(path.as_str())
            .map_err(|err| CliError::Data(format!("{path}: {err}")))?;
        let parsed =
            parse_document(&source).map_err(|err| CliError::Data(format!("{path}: {err}")))?;
        docs.extend(parsed);
    }
    if docs.is_empty() {
        return Err(CliError::Data("no schemas found in the input files".into()));
    }
    Ok(docs)
}

/// Wraps a supergraph failure, embedding its stable `E-SG-…` code.
fn supergraph_error(context: &str, err: &schema_merge_supergraph::SupergraphError) -> CliError {
    CliError::Data(format!("{context} [{}]: {err}", err.code()))
}

/// `smerge compose` — offline federation: each file becomes one member
/// registry (named by its file stem), each document in it a member, and
/// the supergraph composes them all. The same engine the daemon serves
/// behind `ATTACH`/`COMPOSE`, without a socket.
fn compose_command(args: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let (format, rest) = split_format(args)?;
    let (threads, rest) = split_threads(&rest)?;
    if rest.is_empty() {
        return Err(CliError::Usage(
            "expected at least one schema file (one member registry per file)".into(),
        ));
    }
    let supergraph = match threads {
        Some(threads) => schema_merge_supergraph::Supergraph::with_threads(threads),
        None => schema_merge_supergraph::Supergraph::new(),
    };
    for path in &rest {
        let name = std::path::Path::new(path.as_str())
            .file_stem()
            .and_then(|stem| stem.to_str())
            .unwrap_or(path.as_str())
            .to_string();
        let registry = supergraph
            .attach_new(&name)
            .map_err(|err| supergraph_error(path, &err))?;
        let source = std::fs::read_to_string(path.as_str())
            .map_err(|err| CliError::Data(format!("{path}: {err}")))?;
        let docs =
            parse_document(&source).map_err(|err| CliError::Data(format!("{path}: {err}")))?;
        if docs.is_empty() {
            return Err(CliError::Data(format!("{path}: contains no schemas")));
        }
        for doc in docs {
            registry
                .put(doc.name.clone(), doc.schema.schema().clone())
                .map_err(|err| {
                    CliError::Data(format!("{path}: publishing `{}`: {err}", doc.name))
                })?;
        }
    }
    let outcome = supergraph
        .compose()
        .map_err(|err| supergraph_error("compose", &err))?;
    let view = outcome.view;

    if format == Format::Json {
        writeln!(out, "{}", json::compose(&view))?;
        return Ok(());
    }

    let weak = view.proper().as_weak();
    writeln!(
        out,
        "generation={} strategy={} registries={} classes={} arrows={} hints={}",
        view.generation,
        outcome.strategy.as_str(),
        view.members.len(),
        weak.num_classes(),
        weak.num_arrows(),
        view.hints().count()
    )?;
    for member in &view.members {
        writeln!(
            out,
            "registry {} generation={} members={}",
            member.registry, member.generation, member.members
        )?;
    }
    for hint in view.hints() {
        writeln!(out, "hint[{}] {}", hint.code, hint.message)?;
    }
    let doc = NamedSchema {
        name: "supergraph".into(),
        schema: schema_merge_core::AnnotatedSchema::all_required(weak.clone()),
        keys: KeyAssignment::new(),
    };
    write!(out, "{}", print_schema(&doc))?;
    writeln!(out, "// origins:")?;
    for (class, labels) in &view.origins().classes {
        writeln!(out, "//   {class}: {}", labels.join(", "))?;
    }
    Ok(())
}

/// The standard CLI merger: every parsed document is a named annotated
/// input, and every document's key families are contributed to the §5
/// key pass. This is THE code path — `merge`, `explain`, `functional`,
/// `ddl`, `conform` and `query` all build their merges here.
fn build_merger(docs: &[NamedSchema]) -> Merger<'_> {
    let mut merger = Merger::new();
    for doc in docs {
        merger = merger.with_participation_named(doc.name.clone(), &doc.schema);
        for class in doc.keys.keyed_classes() {
            merger = merger.with_keys(class.clone(), doc.keys.family(class));
        }
    }
    merger
}

fn merge_command(
    paths: &[&String],
    out: &mut dyn Write,
    explain_only: bool,
) -> Result<(), CliError> {
    let (format, paths) = split_format(paths)?;
    let (threads, paths) = split_threads(&paths)?;
    let (trace, paths) = split_trace(&paths);
    if explain_only && format == Format::Json {
        // `merge --format json` already carries the full implicit-class
        // table; a second, differently-shaped document would fragment the
        // machine-readable surface.
        return Err(CliError::Usage(
            "explain has no JSON form; use `merge --format json` (its \
             `implicit_classes` field is the explain report)"
                .into(),
        ));
    }
    let docs = load_documents(&paths)?;
    let mut merger = build_merger(&docs);
    if let Some(threads) = threads {
        merger = merger.threads(threads);
    }
    if trace {
        merger = merger.trace(true);
    }
    let report = merger
        .execute()
        .map_err(|err| CliError::merge("merge failed", &err))?;

    if format == Format::Json {
        write!(out, "{}", json::merge_report(&report))?;
        return Ok(());
    }

    if !explain_only {
        let merged = NamedSchema {
            name: "merged".into(),
            schema: schema_merge_core::AnnotatedSchema::all_required(
                report.proper.as_weak().clone(),
            ),
            keys: report.keys.clone(),
        };
        write!(out, "{}", print_schema(&merged))?;
        writeln!(out)?;
    }
    writeln!(
        out,
        "// implicit classes: {}",
        report.implicit.num_implicit()
    )?;
    for info in &report.implicit.implicit {
        writeln!(out, "//   {} introduced below {{", info.class)?;
        for member in &info.members {
            writeln!(out, "//     {member}")?;
        }
        writeln!(out, "//   }} demanded by {}", info.witness)?;
    }
    if let Some(trace) = &report.trace {
        writeln!(out, "// trace:")?;
        for line in trace.render().lines() {
            writeln!(out, "//   {line}")?;
        }
    }
    Ok(())
}

fn diff_command(paths: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let docs = load_documents(paths)?;
    if docs.len() != 2 {
        return Err(CliError::Data(format!(
            "diff needs exactly two schemas, found {}",
            docs.len()
        )));
    }
    let d = schema_merge_core::diff(docs[0].schema.schema(), docs[1].schema.schema());
    writeln!(
        out,
        "// - only in {}; + only in {}",
        docs[0].name, docs[1].name
    )?;
    if d.is_empty() {
        writeln!(out, "// schemas are information-equal")?;
    } else {
        write!(out, "{d}")?;
        if d.left_is_subschema() {
            writeln!(out, "// {} ⊑ {}", docs[0].name, docs[1].name)?;
        } else if d.right_is_subschema() {
            writeln!(out, "// {} ⊑ {}", docs[1].name, docs[0].name)?;
        }
    }
    Ok(())
}

fn lower_command(paths: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let docs = load_documents(paths)?;
    let mut merger = Merger::new().lower();
    for doc in &docs {
        merger = merger.with_participation_named(doc.name.clone(), &doc.schema);
    }
    let report = merger
        .execute()
        .map_err(|err| CliError::merge("lower completion failed", &err))?;
    let lower = report.lower.expect("lower mode fills the union report");
    let named = NamedSchema {
        name: "lower-merged".into(),
        schema: report.annotated.expect("lower mode returns annotations"),
        keys: KeyAssignment::new(),
    };
    write!(out, "{}", print_schema(&named))?;
    writeln!(out)?;
    writeln!(out, "// union classes: {}", lower.unions.len())?;
    for info in &lower.unions {
        writeln!(
            out,
            "//   {} demanded by ({}, {})",
            info.class, info.demanded_by.0, info.demanded_by.1
        )?;
    }
    if !lower.meet_classes.is_empty() {
        writeln!(
            out,
            "// meet fallback classes: {}",
            lower.meet_classes.len()
        )?;
    }
    Ok(())
}

/// One validated document: the JSON row plus the text path's pre-rendered
/// error details, so every validation runs exactly once.
struct CheckedDoc {
    row: json::CheckRow,
    proper_error: Option<String>,
    key_error: Option<String>,
}

fn check_command(paths: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let (format, paths) = split_format(paths)?;
    let docs = load_documents(&paths)?;
    let checked: Vec<CheckedDoc> = docs
        .iter()
        .map(|doc| {
            let weak = doc.schema.schema();
            let mut diagnostics = Vec::new();
            let proper_error = match schema_merge_core::ProperSchema::try_new(weak.clone()) {
                Ok(_) => None,
                Err(err) => {
                    diagnostics.push(schema_merge_core::Diagnostic::from(&err));
                    Some(err.to_string())
                }
            };
            let key_error = match doc.keys.validate(weak) {
                Ok(()) => None,
                Err(err) => {
                    let rendered = format!("; keys invalid [{}]: {err}", err.code());
                    diagnostics.push(schema_merge_core::Diagnostic::from(&err));
                    Some(rendered)
                }
            };
            CheckedDoc {
                row: json::CheckRow {
                    name: doc.name.clone(),
                    classes: weak.num_classes(),
                    arrows: weak.num_arrows(),
                    specializations: weak.num_specializations(),
                    proper: proper_error.is_none(),
                    diagnostics,
                },
                proper_error,
                key_error,
            }
        })
        .collect();

    if format == Format::Json {
        let rows: Vec<&json::CheckRow> = checked.iter().map(|c| &c.row).collect();
        write!(out, "{}", json::check(&rows))?;
        return Ok(());
    }
    for doc in &checked {
        let status = match &doc.proper_error {
            None => "proper".to_string(),
            Some(detail) => format!("weak only ({detail})"),
        };
        writeln!(
            out,
            "{}: {} classes, {} arrows, {} — {status}{}",
            doc.row.name,
            doc.row.classes,
            doc.row.arrows,
            plural(doc.row.specializations, "specialization"),
            doc.key_error.as_deref().unwrap_or(""),
        )?;
    }
    Ok(())
}

enum Renderer {
    Dot,
    Ascii,
}

fn render_command(
    paths: &[&String],
    out: &mut dyn Write,
    renderer: Renderer,
) -> Result<(), CliError> {
    let (file, wanted) = match paths {
        [file] => (*file, None),
        [file, name] => (*file, Some(name.as_str())),
        _ => return Err(CliError::Usage("expected <file> [schema-name]".into())),
    };
    let docs = load_documents(&[file])?;
    let doc = match wanted {
        None => &docs[0],
        Some(name) => docs
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| CliError::Data(format!("no schema named {name} in {file}")))?,
    };
    match renderer {
        Renderer::Dot => write!(out, "{}", to_dot(doc, &DotOptions::default()))?,
        Renderer::Ascii => write!(out, "{}", render_ascii(doc))?,
    }
    Ok(())
}

fn stats_command(paths: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let (format, paths) = split_format(paths)?;
    let docs = load_documents(&paths)?;
    if format == Format::Json {
        write!(out, "{}", json::stats(&docs))?;
        return Ok(());
    }
    writeln!(
        out,
        "{:<20} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>17}",
        "schema", "classes", "isa", "arrows", "opt", "keys", "labels", "hash"
    )?;
    for doc in &docs {
        let weak = doc.schema.schema();
        writeln!(
            out,
            "{:<20} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}  {:016x}",
            doc.name,
            weak.num_classes(),
            weak.num_specializations(),
            weak.num_arrows(),
            doc.schema.num_optional(),
            doc.keys.num_keyed_classes(),
            weak.all_labels().len(),
            weak.content_hash(),
        )?;
    }
    Ok(())
}

fn bench_command(paths: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut iters: usize = 9;
    let mut files: Vec<&String> = Vec::new();
    let mut iter = paths.iter();
    while let Some(arg) = iter.next() {
        if arg.as_str() == "--iters" {
            iters = iter
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .ok_or_else(|| CliError::Usage("--iters requires a positive number".into()))?;
        } else {
            files.push(arg);
        }
    }
    let docs = load_documents(&files)?;
    let schemas: Vec<&schema_merge_core::WeakSchema> =
        docs.iter().map(|d| d.schema.schema()).collect();
    // Surface incompatibility up front — timing error construction would
    // print meaningless numbers with exit code 0.
    Merger::new()
        .schemas(schemas.iter().copied())
        .execute()
        .map_err(|err| CliError::merge("merge failed", &err))?;

    fn median_ns(iters: usize, mut routine: impl FnMut()) -> u128 {
        routine(); // warmup
        let mut samples: Vec<u128> = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = std::time::Instant::now();
            routine();
            samples.push(start.elapsed().as_nanos());
        }
        samples.sort_unstable();
        samples[samples.len() / 2]
    }
    let symbolic = median_ns(iters, || {
        let _ = std::hint::black_box(
            Merger::new()
                .schemas(schemas.iter().copied())
                .engine(schema_merge_core::EnginePreference::Symbolic)
                .execute(),
        );
    });
    let compiled = median_ns(iters, || {
        let _ = std::hint::black_box(Merger::new().schemas(schemas.iter().copied()).execute());
    });

    writeln!(out, "// merge of {} schemas, median of {iters}", docs.len())?;
    writeln!(out, "symbolic: {:>12.1} us", symbolic as f64 / 1e3)?;
    writeln!(out, "compiled: {:>12.1} us", compiled as f64 / 1e3)?;
    writeln!(
        out,
        "speedup:  {:>12.2}x",
        symbolic as f64 / compiled.max(1) as f64
    )?;
    Ok(())
}

fn suggest_command(paths: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let docs = load_documents(paths)?;
    if docs.len() < 2 {
        return Err(CliError::Data(format!(
            "suggest needs at least two schemas, found {}",
            docs.len()
        )));
    }
    let (left, right) = (&docs[0], &docs[1]);
    let synonyms =
        schema_merge_core::synonym_candidates(left.schema.schema(), right.schema.schema(), 0.25);
    let homonyms =
        schema_merge_core::homonym_candidates(left.schema.schema(), right.schema.schema(), 0.25);
    writeln!(out, "// comparing {} with {}", left.name, right.name)?;
    if synonyms.is_empty() && homonyms.is_empty() {
        writeln!(out, "// no naming conflicts suggested")?;
        return Ok(());
    }
    for s in &synonyms {
        writeln!(
            out,
            "synonym? {} ~ {} (similarity {:.2}; shared: {})",
            s.left,
            s.right,
            s.similarity,
            s.shared_labels
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        )?;
        writeln!(
            out,
            "  fix: smerge rename {}={} -- <right-file>",
            s.right, s.left
        )?;
    }
    for h in &homonyms {
        writeln!(
            out,
            "homonym? {} (similarity {:.2}; left-only: {}; right-only: {})",
            h.name,
            h.similarity,
            h.left_only
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            h.right_only
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        )?;
        writeln!(
            out,
            "  fix: smerge rename {}={}-2 -- <right-file>",
            h.name, h.name
        )?;
    }
    Ok(())
}

fn rename_command(args: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let split = args
        .iter()
        .position(|a| a.as_str() == "--")
        .ok_or_else(|| CliError::Usage("expected `rename <map>... -- <file>...`".into()))?;
    let (maps, files) = args.split_at(split);
    let files = &files[1..];
    if maps.is_empty() {
        return Err(CliError::Usage(
            "expected at least one Old=New mapping".into(),
        ));
    }
    let mut renaming = schema_merge_core::Renaming::new();
    for map in maps {
        let (from, to) = map
            .split_once('=')
            .ok_or_else(|| CliError::Usage(format!("bad mapping `{map}`: expected Old=New")))?;
        if from.is_empty() || to.is_empty() {
            return Err(CliError::Usage(format!("bad mapping `{map}`: empty side")));
        }
        match (from.strip_prefix('.'), to.strip_prefix('.')) {
            (Some(from_label), Some(to_label)) => {
                renaming = renaming.label(from_label, to_label);
            }
            (None, None) => {
                renaming = renaming.class(from, to);
            }
            _ => {
                return Err(CliError::Usage(format!(
                    "bad mapping `{map}`: mixing a class with a .label"
                )))
            }
        }
    }
    let docs = load_documents(files)?;
    for doc in &docs {
        let (renamed, report) = renaming
            .apply(doc.schema.schema())
            .map_err(|err| CliError::Data(format!("{}: rename failed: {err}", doc.name)))?;
        // Keys follow their classes and labels through the renaming.
        let mut keys = KeyAssignment::new();
        for class in doc.keys.keyed_classes() {
            let family = doc.keys.family(class);
            let mapped = SuperkeyFamily::from_keys(family.minimal_keys().map(|key| {
                schema_merge_core::KeySet::new(key.labels().map(|l| renaming.map_label(l)))
            }));
            let target = renaming.map_class(class);
            let existing = keys.family(&target);
            keys.set(target, existing.union(&mapped));
        }
        let named = NamedSchema {
            name: doc.name.clone(),
            schema: schema_merge_core::AnnotatedSchema::all_required(renamed),
            keys,
        };
        write!(out, "{}", print_schema(&named))?;
        writeln!(out)?;
        if !report.unified_classes.is_empty() {
            for group in &report.unified_classes {
                let names: Vec<String> = group.iter().map(|n| n.to_string()).collect();
                writeln!(out, "// unified classes: {}", names.join(" = "))?;
            }
        }
    }
    Ok(())
}

/// Merges every schema in the files into one completed proper schema
/// with its minimal satisfactory key assignment — shared by the
/// `functional`, `ddl`, `conform` and `query` commands.
fn merged_proper(
    paths: &[&String],
) -> Result<(schema_merge_core::ProperSchema, KeyAssignment), CliError> {
    let docs = load_documents(paths)?;
    let report = build_merger(&docs)
        .execute()
        .map_err(|err| CliError::merge("merge failed", &err))?;
    Ok((report.proper, report.keys))
}

fn functional_command(paths: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let (proper, _) = merged_proper(paths)?;
    let functional = schema_merge_core::FunctionalSchema::from_proper(&proper);
    writeln!(out, "{functional}")?;
    Ok(())
}

fn ddl_command(paths: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let (proper, keys) = merged_proper(paths)?;
    // Infer the 1NF stratification: classes with outgoing arrows are
    // relations, arrow-less classes are attribute domains.
    let weak = proper.as_weak();
    let mut strata = schema_merge_relational::RelStrata::new();
    for class in weak.classes() {
        let stratum = if weak.labels_of(class).is_empty() {
            schema_merge_relational::RelStratum::Domain
        } else {
            schema_merge_relational::RelStratum::Relation
        };
        strata.insert(schema_merge_core::Name::new(class.to_string()), stratum);
    }
    let rel = schema_merge_relational::from_core(weak, &strata)
        .map_err(|err| CliError::Data(format!("schema is not 1NF-stratifiable: {err}")))?
        .with_key_assignment(&keys);
    let types = schema_merge_relational::TypeMap::default();
    write!(out, "{}", schema_merge_relational::to_sql(&rel, &types))?;
    Ok(())
}

fn load_instances(path: &String) -> Result<Vec<schema_merge_text::NamedInstance>, CliError> {
    let source = std::fs::read_to_string(path.as_str())
        .map_err(|err| CliError::Data(format!("{path}: {err}")))?;
    let instances = schema_merge_text::parse_instances(&source)
        .map_err(|err| CliError::Data(format!("{path}: {err}")))?;
    if instances.is_empty() {
        return Err(CliError::Data(format!("{path}: no instances found")));
    }
    Ok(instances)
}

fn conform_command(paths: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let [schema_file, instance_file] = paths else {
        return Err(CliError::Usage(
            "expected <schema-file> <instance-file>".into(),
        ));
    };
    let docs = load_documents(&[schema_file])?;
    let report = build_merger(&docs)
        .execute()
        .map_err(|err| CliError::merge("merge failed", &err))?;
    let (proper, keys) = (report.proper, report.keys);
    // The merger transferred the joined participation onto the completed
    // schema, so optional arrows stay optional through completion.
    let completed_annotated = report
        .annotated
        .expect("annotated inputs produce an annotated result");

    let mut failures = 0;
    for named in load_instances(instance_file)? {
        let filled = named.instance.populate_implicit_extents(proper.as_weak());
        let verdict = filled
            .conforms_annotated(&completed_annotated, &proper)
            .and_then(|()| filled.satisfies_keys(&keys));
        match verdict {
            Ok(()) => writeln!(out, "{}: conforms", named.name)?,
            Err(err) => {
                failures += 1;
                writeln!(out, "{}: FAILS — {err}", named.name)?;
            }
        }
    }
    if failures > 0 {
        return Err(CliError::Data(format!(
            "{failures} instance(s) do not conform"
        )));
    }
    Ok(())
}

/// Parses `Start.label[Class].label…` into a path query. Labels and
/// class restrictions must not contain `.` or `[` (use the library API
/// for exotic names). Shared with the daemon's `QUERY` command.
pub(crate) fn parse_path_query(text: &str) -> Result<schema_merge_instance::PathQuery, CliError> {
    let bad = |msg: &str| CliError::Usage(format!("bad path `{text}`: {msg}"));
    let mut rest = text;
    let start_end = rest.find(['.', '[', ']']).unwrap_or(rest.len());
    let start = &rest[..start_end];
    if start.is_empty() {
        return Err(bad("empty starting class"));
    }
    let mut query = schema_merge_instance::PathQuery::extent(
        schema_merge_core::Class::from_origin_syntax(start),
    );
    rest = &rest[start_end..];
    while !rest.is_empty() {
        if let Some(after) = rest.strip_prefix('.') {
            let end = after.find(['.', '[', ']']).unwrap_or(after.len());
            let label = &after[..end];
            if label.is_empty() {
                return Err(bad("empty label after `.`"));
            }
            query = query.follow(label);
            rest = &after[end..];
        } else if let Some(after) = rest.strip_prefix('[') {
            let end = after
                .find(']')
                .ok_or_else(|| bad("unterminated `[` restriction"))?;
            let class = &after[..end];
            if class.is_empty() {
                return Err(bad("empty class in `[]`"));
            }
            query = query.restrict(schema_merge_core::Class::from_origin_syntax(class));
            rest = &after[end + 1..];
        } else {
            return Err(bad("expected `.label` or `[Class]`"));
        }
    }
    Ok(query)
}

fn query_command(paths: &[&String], out: &mut dyn Write) -> Result<(), CliError> {
    let [schema_file, instance_file, path_text] = paths else {
        return Err(CliError::Usage(
            "expected <schema-file> <instance-file> <path>".into(),
        ));
    };
    let (proper, _) = merged_proper(&[schema_file])?;
    let query = parse_path_query(path_text)?;
    for named in load_instances(instance_file)? {
        let filled = named.instance.populate_implicit_extents(proper.as_weak());
        let result = query.eval(&filled);
        let rendered = named.render_objects(result.iter());
        writeln!(
            out,
            "{} ({} result(s)): {}",
            named.name,
            rendered.len(),
            rendered.join(", ")
        )?;
    }
    Ok(())
}

fn plural(n: usize, word: &str) -> String {
    if n == 1 {
        format!("{n} {word}")
    } else {
        format!("{n} {word}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("smerge-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn run_ok(args: &[String]) -> String {
        let mut out = Vec::new();
        run(args, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    fn args(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn compose_federates_files_as_registries() {
        let f1 = write_temp(
            "compose-inventory.sm",
            "schema parts { Part --price--> money; }",
        );
        let f2 = write_temp(
            "compose-sales.sm",
            "schema orders { Order --item--> Part; }",
        );
        let text = run_ok(&args(&["compose", &f1, &f2]));
        assert!(
            text.contains("strategy=full registries=2 classes=3"),
            "{text}"
        );
        assert!(
            text.contains("registry compose-inventory generation=1 members=1"),
            "{text}"
        );
        assert!(text.contains("schema supergraph {"), "{text}");
        assert!(
            text.contains("//   Part: compose-inventory/parts@v1, compose-sales/orders@v1"),
            "{text}"
        );
    }

    #[test]
    fn compose_json_carries_origins_and_hints() {
        let f1 = write_temp("compose-a.sm", "schema shared { Dog --age--> int; }");
        let f2 = write_temp("compose-b.sm", "schema shared { Dog --name--> str; }");
        let text = run_ok(&args(&["compose", &f1, &f2, "--format", "json"]));
        assert!(text.contains("\"command\": \"compose\""), "{text}");
        assert!(text.contains("\"strategy\": \"full\""), "{text}");
        assert!(
            text.contains("\"origins\": [\"compose-a/shared@v1\", \"compose-b/shared@v1\"]"),
            "{text}"
        );
        // Both registries publish a member named `shared` — the
        // collision hint fires and rides in the diagnostics array.
        assert!(text.contains("\"code\": \"H-COMPOSE-COLLISION\""), "{text}");
        assert!(text.contains("\"severity\": \"hint\""), "{text}");
    }

    #[test]
    fn compose_requires_input_files() {
        let mut out = Vec::new();
        let err = run(&args(&["compose"]), &mut out).unwrap_err();
        assert_eq!(err.code(), "E-CLI-USAGE");
    }

    #[test]
    fn help_prints_usage() {
        let text = run_ok(&args(&["help"]));
        assert!(text.contains("usage: smerge"));
        let default = run_ok(&[]);
        assert!(default.contains("usage: smerge"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let mut out = Vec::new();
        let err = run(&args(&["frobnicate"]), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn bench_reports_both_engines() {
        let f1 = write_temp("bench1.sm", "schema A { C --a--> B1; }");
        let f2 = write_temp("bench2.sm", "schema B { C --a--> B2; }");
        let text = run_ok(&args(&["bench", &f1, &f2, "--iters", "3"]));
        assert!(text.contains("merge of 2 schemas"), "{text}");
        assert!(text.contains("symbolic:"));
        assert!(text.contains("compiled:"));
        assert!(text.contains("speedup:"));
    }

    #[test]
    fn bench_rejects_incompatible_schemas() {
        let f1 = write_temp("bench4.sm", "schema A { X => Y; }");
        let f2 = write_temp("bench5.sm", "schema B { Y => X; }");
        let mut out = Vec::new();
        let err = run(&args(&["bench", &f1, &f2]), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Data(_)), "{err}");
    }

    #[test]
    fn bench_rejects_bad_iters() {
        let f1 = write_temp("bench3.sm", "schema A { C --a--> B1; }");
        let mut out = Vec::new();
        let err = run(&args(&["bench", &f1, "--iters", "zero"]), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn merge_two_files() {
        let f1 = write_temp("m1.sm", "schema A { C --a--> B1; }");
        let f2 = write_temp("m2.sm", "schema B { C --a--> B2; key C {a}; }");
        let text = run_ok(&args(&["merge", &f1, &f2]));
        assert!(text.contains("{B1,B2}"), "implicit class appears: {text}");
        assert!(text.contains("// implicit classes: 1"));
        assert!(text.contains("key C {a};"));
    }

    #[test]
    fn merge_accepts_a_threads_budget() {
        let f1 = write_temp("mt1.sm", "schema A { C --a--> B1; }");
        let f2 = write_temp("mt2.sm", "schema B { C --a--> B2; }");
        let plain = run_ok(&args(&["merge", &f1, &f2]));
        let threaded = run_ok(&args(&["merge", "--threads", "4", &f1, &f2]));
        assert_eq!(plain, threaded, "thread budgets never change results");
        let mut out = Vec::new();
        let err = run(&args(&["merge", "--threads", "zero", &f1]), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn merge_trace_prints_one_span_per_pass() {
        let f1 = write_temp("tr1.sm", "schema A { C --a--> B1; }");
        let f2 = write_temp("tr2.sm", "schema B { C --a--> B2; }");
        let plain = run_ok(&args(&["merge", &f1, &f2]));
        let traced = run_ok(&args(&["merge", "--trace", &f1, &f2]));
        let (body, trace) = traced.split_once("// trace:\n").expect("trace section");
        assert_eq!(plain, body, "tracing never changes the merge output");
        assert!(trace.contains("//   merge "), "root span: {trace}");
        assert!(trace.contains("//     join "), "join pass: {trace}");
        assert!(
            trace.contains("//     completion "),
            "completion pass: {trace}"
        );
        assert!(trace.contains("//     participation-transfer "));
    }

    #[test]
    fn merge_trace_rides_in_the_json_report() {
        let f1 = write_temp("trj1.sm", "schema A { C --a--> B1; }");
        let f2 = write_temp("trj2.sm", "schema B { C --a--> B2; }");
        let traced = run_ok(&args(&["merge", "--trace", "--format", "json", &f1, &f2]));
        assert!(traced.contains("\"trace\": ["));
        assert!(traced.contains("\"name\": \"merge\""));
        assert!(traced.contains("\"name\": \"join\""));
        assert!(traced.contains("\"duration_ns\": "));
        let plain = run_ok(&args(&["merge", "--format", "json", &f1, &f2]));
        assert!(
            !plain.contains("\"trace\""),
            "no trace field without --trace"
        );
    }

    #[test]
    fn explain_only_prints_report() {
        let f1 = write_temp("e1.sm", "schema A { C --a--> B1; }");
        let f2 = write_temp("e2.sm", "schema B { C --a--> B2; }");
        let text = run_ok(&args(&["explain", &f1, &f2]));
        assert!(!text.contains("schema merged"));
        assert!(text.contains("demanded by C --a-->"));
    }

    #[test]
    fn merge_format_json_emits_the_report() {
        let f1 = write_temp("mj1.sm", "schema A { C --a--> B1; }");
        let f2 = write_temp("mj2.sm", "schema B { C --a--> B2; key C {a}; }");
        let text = run_ok(&args(&["merge", "--format", "json", &f1, &f2]));
        assert!(text.contains("\"command\": \"merge\""), "{text}");
        assert!(text.contains("\"engine\": \"compiled\""), "{text}");
        assert!(
            text.contains("\"passes\": [\"join\", \"completion\", \"key-assignment\", \"participation-transfer\"]"),
            "{text}"
        );
        assert!(text.contains("\"class\": \"{B1,B2}\""), "{text}");
        assert!(text.contains("\"members\": [\"B1\", \"B2\"]"), "{text}");
        assert!(text.contains("\"name\": \"A\""), "{text}");
        assert!(text.contains("\"code\": \"I-IMPLICIT-CLASSES\""), "{text}");
        assert!(text.contains("\"keys\": [{\"class\": \"C\""), "{text}");
        // Balanced braces/brackets: crude structural sanity ({B1,B2}
        // class names inside string literals are themselves balanced).
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "{text}"
        );
        assert_eq!(
            text.matches('[').count(),
            text.matches(']').count(),
            "{text}"
        );
    }

    #[test]
    fn stats_format_json_emits_rows() {
        let f = write_temp("sj1.sm", "schema S { Dog --age--> int; key Dog {age}; }");
        let text = run_ok(&args(&["stats", "--format", "json", &f]));
        assert!(text.contains("\"command\": \"stats\""), "{text}");
        assert!(text.contains("\"name\": \"S\""), "{text}");
        assert!(text.contains("\"keyed_classes\": 1"), "{text}");
        let expected = schema_merge_core::WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .build()
            .unwrap()
            .content_hash();
        assert!(
            text.contains(&format!("\"content_hash\": \"{expected:016x}\"")),
            "{text}"
        );
    }

    #[test]
    fn check_format_json_carries_diagnostic_codes() {
        let f = write_temp(
            "cj1.sm",
            "schema Good { Dog --age--> int; }\nschema Bad { C --a--> B1; C --a--> B2; }",
        );
        let text = run_ok(&args(&["check", "--format", "json", &f]));
        assert!(text.contains("\"command\": \"check\""), "{text}");
        assert!(text.contains("\"proper\": true"), "{text}");
        assert!(text.contains("\"proper\": false"), "{text}");
        assert!(
            text.contains("\"code\": \"E-SCHEMA-NO-CANONICAL\""),
            "{text}"
        );
    }

    #[test]
    fn explain_rejects_json_format() {
        let f = write_temp("ej1.sm", "schema A { class X; }");
        let mut out = Vec::new();
        let err = run(&args(&["explain", "--format", "json", &f]), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("merge --format json"), "{err}");
    }

    #[test]
    fn bad_format_value_is_a_usage_error() {
        let f = write_temp("bf1.sm", "schema A { class X; }");
        let mut out = Vec::new();
        let err = run(&args(&["merge", "--format", "yaml", &f]), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert_eq!(err.code(), "E-CLI-USAGE");
    }

    #[test]
    fn merge_errors_carry_stable_codes() {
        let f1 = write_temp("ec1.sm", "schema A { X => Y; }");
        let f2 = write_temp("ec2.sm", "schema B { Y => X; }");
        let mut out = Vec::new();
        let err = run(&args(&["merge", &f1, &f2]), &mut out).unwrap_err();
        assert_eq!(err.code(), "E-CLI-DATA");
        assert!(err.to_string().contains("[E-MERGE-INCOMPATIBLE]"), "{err}");
    }

    #[test]
    fn merge_incompatible_files_fails() {
        let f1 = write_temp("i1.sm", "schema A { X => Y; }");
        let f2 = write_temp("i2.sm", "schema B { Y => X; }");
        let mut out = Vec::new();
        let err = run(&args(&["merge", &f1, &f2]), &mut out).unwrap_err();
        assert!(err.to_string().contains("incompatible"));
    }

    #[test]
    fn lower_merge_two_files() {
        let f1 = write_temp("l1.sm", "schema A { Pet --home--> House; }");
        let f2 = write_temp("l2.sm", "schema B { Pet --home--> Kennel; }");
        let text = run_ok(&args(&["lower", &f1, &f2]));
        assert!(text.contains("{House|Kennel}"), "{text}");
        assert!(text.contains("// union classes: 1"));
        assert!(text.contains("--home?-->") || text.contains("--home-->"));
    }

    #[test]
    fn check_reports_properness() {
        let f = write_temp(
            "c1.sm",
            "schema Good { Dog --age--> int; }\nschema Bad { C --a--> B1; C --a--> B2; }",
        );
        let text = run_ok(&args(&["check", &f]));
        assert!(text.contains("Good: "));
        assert!(text.contains("proper"));
        assert!(text.contains("weak only"));
    }

    #[test]
    fn dot_and_ascii_render() {
        let f = write_temp("d1.sm", "schema S { Guide-dog => Dog; Dog --age--> int; }");
        let dot = run_ok(&args(&["dot", &f]));
        assert!(dot.starts_with("digraph"));
        let ascii = run_ok(&args(&["ascii", &f, "S"]));
        assert!(ascii.contains("== schema S =="));

        let mut out = Vec::new();
        let err = run(&args(&["dot", &f, "Nope"]), &mut out).unwrap_err();
        assert!(err.to_string().contains("no schema named"));
    }

    #[test]
    fn stats_formats_table_with_content_hash() {
        let f = write_temp("s1.sm", "schema S { Dog --age--> int; key Dog {age}; }");
        let text = run_ok(&args(&["stats", &f]));
        assert!(text.contains("schema"));
        assert!(text.contains("S"));
        assert!(text.contains("hash"), "{text}");
        // The canonical content hash appears, and is stable across runs
        // and declaration orders.
        let expected = schema_merge_core::WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .build()
            .unwrap()
            .content_hash();
        assert!(text.contains(&format!("{expected:016x}")), "{text}");
    }

    #[test]
    fn diff_two_schemas() {
        let f = write_temp(
            "diff1.sm",
            "schema A { Dog --age--> int; }\nschema B { Dog --age--> int; Dog --name--> text; }",
        );
        let text = run_ok(&args(&["diff", &f]));
        assert!(text.contains("+ Dog --name--> text;"), "{text}");
        assert!(text.contains("A ⊑ B"));

        let g = write_temp("diff2.sm", "schema A { class X; }");
        let mut out = Vec::new();
        let err = run(&args(&["diff", &g]), &mut out).unwrap_err();
        assert!(err.to_string().contains("exactly two"));
    }

    #[test]
    fn missing_file_is_reported() {
        let mut out = Vec::new();
        let err = run(&args(&["merge", "/nonexistent/xyz.sm"]), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Data(_)));
    }

    #[test]
    fn suggest_finds_synonyms_and_homonyms() {
        let f = write_temp(
            "sg1.sm",
            "schema A { Dog --owner--> Person; Dog --kind--> breed; \
             Chip --implanted-in--> Dog; }\n\
             schema B { Hound --owner--> Person; Hound --kind--> breed; \
             Chip --fried-at--> Temp; }",
        );
        let text = run_ok(&args(&["suggest", &f]));
        assert!(text.contains("synonym? Dog ~ Hound"), "{text}");
        assert!(text.contains("homonym? Chip"), "{text}");
        assert!(text.contains("smerge rename Hound=Dog"), "{text}");
    }

    #[test]
    fn suggest_reports_clean_pairs() {
        let f = write_temp(
            "sg2.sm",
            "schema A { Dog --age--> int; }\nschema B { Dog --age--> int; }",
        );
        let text = run_ok(&args(&["suggest", &f]));
        assert!(text.contains("no naming conflicts suggested"), "{text}");

        let single = write_temp("sg3.sm", "schema A { class X; }");
        let mut out = Vec::new();
        let err = run(&args(&["suggest", &single]), &mut out).unwrap_err();
        assert!(err.to_string().contains("at least two"));
    }

    #[test]
    fn rename_applies_class_and_label_maps() {
        let f = write_temp(
            "rn1.sm",
            "schema A { Hound --called--> text; key Hound {called}; }",
        );
        let text = run_ok(&args(&["rename", "Hound=Dog", ".called=.name", "--", &f]));
        assert!(text.contains("Dog --name--> text;"), "{text}");
        assert!(text.contains("key Dog {name};"), "{text}");
        assert!(!text.contains("Hound"), "{text}");
    }

    #[test]
    fn rename_reports_unifications() {
        let f = write_temp(
            "rn2.sm",
            "schema A { GS --advisor--> Faculty; Student --name--> text; }",
        );
        let text = run_ok(&args(&["rename", "GS=Student", "--", &f]));
        assert!(text.contains("// unified classes: GS = Student"), "{text}");
        assert!(text.contains("Student --advisor--> Faculty;"), "{text}");
    }

    #[test]
    fn functional_prints_canonical_arrows() {
        let f = write_temp(
            "fn1.sm",
            "schema A { Dog --age--> int; }\nschema B { Dog --kind--> breed; }",
        );
        let text = run_ok(&args(&["functional", &f]));
        assert!(text.contains("Dog.age ⇀ int"), "{text}");
        assert!(text.contains("Dog.kind ⇀ breed"), "{text}");
    }

    #[test]
    fn ddl_emits_create_tables_with_keys() {
        let f = write_temp(
            "ddl1.sm",
            "schema A { Person --SS#--> int; Person --name--> string; key Person {SS#}; }",
        );
        let text = run_ok(&args(&["ddl", &f]));
        assert!(text.contains("CREATE TABLE \"Person\""), "{text}");
        assert!(text.contains("\"SS#\" INTEGER"), "{text}");
        assert!(text.contains("PRIMARY KEY (\"SS#\")"), "{text}");
    }

    #[test]
    fn ddl_rejects_non_1nf_schemas() {
        // A relation-to-relation arrow is not first normal form.
        let f = write_temp(
            "ddl2.sm",
            "schema A { Dog --owner--> Person; Person --name--> s; }",
        );
        let mut out = Vec::new();
        let err = run(&args(&["ddl", &f]), &mut out).unwrap_err();
        assert!(err.to_string().contains("not 1NF-stratifiable"), "{err}");
    }

    #[test]
    fn conform_checks_instances() {
        let schema = write_temp(
            "cf1.sm",
            "schema S { Dog --name--> string; Guide-dog => Dog; }",
        );
        let good = write_temp(
            "cf1.smi",
            "instance ok { n => string; rex => Dog; rex --name--> n; }",
        );
        let text = run_ok(&args(&["conform", &schema, &good]));
        assert!(text.contains("ok: conforms"), "{text}");

        // A guide dog missing the required name fails.
        let bad = write_temp("cf2.smi", "instance bad { rex => Guide-dog; rex => Dog; }");
        let mut out = Vec::new();
        let err = run(&args(&["conform", &schema, &bad]), &mut out).unwrap_err();
        let printed = String::from_utf8(out).unwrap();
        assert!(printed.contains("bad: FAILS"), "{printed}");
        assert!(err.to_string().contains("do not conform"));
    }

    #[test]
    fn query_evaluates_paths_and_prints_names() {
        let schema = write_temp(
            "q1.sm",
            "schema S { Dog --owner--> Person; Guide-dog => Dog; }",
        );
        let inst = write_temp(
            "q1.smi",
            "instance shelter { ann => Person; rex => Dog; rex => Guide-dog; \
             fido => Dog; rex --owner--> ann; }",
        );
        let text = run_ok(&args(&["query", &schema, &inst, "Dog.owner"]));
        assert!(text.contains("shelter (1 result(s)): ann"), "{text}");
        let text = run_ok(&args(&["query", &schema, &inst, "Dog[Guide-dog]"]));
        assert!(text.contains("rex"), "{text}");
        assert!(!text.contains("fido"), "{text}");
    }

    #[test]
    fn query_reaches_implicit_class_extents() {
        // Merged schema with an implicit class: the query can restrict
        // to {B1,B2} and the extent is populated from the origins.
        let schema = write_temp(
            "q2.sm",
            "schema A { C => A1; C => A2; }\nschema B { A1 --a--> B1; A2 --a--> B2; }",
        );
        let inst = write_temp(
            "q2.smi",
            "instance i { v => B1; v => B2; c => C; c => A1; c => A2; c --a--> v; }",
        );
        let text = run_ok(&args(&["query", &schema, &inst, "C.a[{B1,B2}]"]));
        assert!(text.contains("v"), "{text}");
    }

    #[test]
    fn path_parse_errors() {
        for bad in ["", ".x", "Dog.", "Dog[", "Dog[]", "Dog]x"] {
            assert!(parse_path_query(bad).is_err(), "`{bad}` should fail");
        }
        let q = parse_path_query("Dog.owner[Person].home").unwrap();
        assert_eq!(q.to_string(), "Dog.owner[Person].home");
    }

    #[test]
    fn rename_usage_errors() {
        let f = write_temp("rn3.sm", "schema A { class X; }");
        for bad in [
            args(&["rename", "A=B", &f]),        // missing --
            args(&["rename", "--", &f]),         // no mappings
            args(&["rename", "A-B", "--", &f]),  // malformed
            args(&["rename", ".a=B", "--", &f]), // mixed
            args(&["rename", "=B", "--", &f]),   // empty side
        ] {
            let mut out = Vec::new();
            let err = run(&bad, &mut out).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?}");
        }
    }
}
