//! `smerge` — command-line schema merging.
//!
//! See `smerge help` for usage. All logic lives in [`app`] so the
//! integration tests can drive it without spawning processes.

#![forbid(unsafe_code)]

mod app;
mod client;
mod json;
mod serve;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match app::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("smerge: error[{}]: {err}", err.code());
            ExitCode::FAILURE
        }
    }
}
