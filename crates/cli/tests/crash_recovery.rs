//! Kill-mid-publish-storm crash test: spawns the real daemon with a
//! data dir, hammers it with concurrent publishes, SIGKILLs it with
//! commits in flight, restarts on the same dir, and differentially
//! asserts the recovered registry against a never-crashed in-process
//! reference — every acknowledged commit must survive, and the served
//! merged view must equal the one-shot merge of the recovered members.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use schema_merge_registry::Registry;
use schema_merge_text::{encode_block, parse_document};

struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `smerge serve --data-dir <dir>`, reading stdout lines until
/// the listen announcement (a recovery line precedes it on restart).
fn spawn_daemon(dir: &Path, snapshot_every: &str) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_smerge"))
        .args(["serve", "--port", "0", "--threads", "4"])
        .args(["--data-dir", dir.to_str().unwrap()])
        .args(["--snapshot-every", snapshot_every])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            reader.read_line(&mut line).expect("daemon stdout"),
            0,
            "daemon exited before announcing"
        );
        if let Some(addr) = line.trim().strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout so the daemon never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = std::io::Read::read_to_string(&mut reader, &mut sink);
    });
    Daemon { child, addr }
}

/// One protocol exchange on an open connection; the schema text is sent
/// as a dot-framed block. Returns the status line.
fn put(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    member: &str,
    payload: &str,
) -> std::io::Result<String> {
    write!(writer, "PUT {member}\n{}", encode_block(payload))?;
    writer.flush()?;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed",
        ));
    }
    Ok(line.trim().to_string())
}

fn command(addr: &str, line: &str) -> (String, String) {
    let stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    let status = status.trim().to_string();
    let mut block = String::new();
    if status.starts_with("DATA") {
        loop {
            let mut l = String::new();
            assert_ne!(reader.read_line(&mut l).unwrap(), 0, "mid-block EOF");
            let l = l.trim_end_matches(['\n', '\r']);
            if l == "." {
                break;
            }
            let unstuffed = l.strip_prefix('.').unwrap_or(l);
            block.push_str(unstuffed);
            block.push('\n');
        }
    }
    (status, block)
}

fn schema_text(member: &str, version: usize) -> String {
    format!(
        "schema {member} {{ C{member} --attr{version}--> T{version}; Shared --s{version}--> U; }}"
    )
}

#[test]
fn sigkill_mid_storm_recovers_every_acknowledged_commit() {
    let dir = std::env::temp_dir().join(format!("smerge-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Small snapshot cadence so the storm crosses several compactions —
    // the crash can land before, during or after one.
    let mut daemon = spawn_daemon(&dir, "7");
    let addr = daemon.addr.clone();

    // Phase 1: a fully acknowledged, deterministic history.
    {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for round in 0..3 {
            for member in ["alpha", "beta", "gamma"] {
                let status = put(
                    &mut writer,
                    &mut reader,
                    member,
                    &schema_text(member, round),
                )
                .expect("phase-1 put");
                assert!(status.starts_with("OK"), "{status}");
            }
        }
        writeln!(writer, "DELETE beta").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK"), "{line}");
    }

    // Phase 2: four threads storm distinct members with fresh content
    // per round while the main thread pulls the plug. Acks are counted;
    // errors after the kill are expected and ignored.
    const STORMERS: usize = 4;
    let acked: Vec<AtomicUsize> = (0..STORMERS).map(|_| AtomicUsize::new(0)).collect();
    std::thread::scope(|scope| {
        for (t, acked) in acked.iter().enumerate() {
            let addr = addr.clone();
            scope.spawn(move || {
                let Ok(stream) = TcpStream::connect(&addr) else {
                    return;
                };
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let member = format!("storm-{t}");
                for round in 0..10_000 {
                    match put(
                        &mut writer,
                        &mut reader,
                        &member,
                        &schema_text(&member, round),
                    ) {
                        Ok(status) if status.starts_with("OK") => {
                            acked.fetch_add(1, Ordering::SeqCst);
                        }
                        _ => return, // killed under us
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(300));
        daemon.child.kill().expect("SIGKILL");
        let _ = daemon.child.wait();
    });
    drop(daemon);

    // Restart on the same directory.
    let daemon = spawn_daemon(&dir, "7");
    let addr = daemon.addr.clone();

    // Every acknowledged storm commit survived: content is fresh per
    // round, so the member's recovered sequence counts its commits.
    let (_, list) = command(&addr, "LIST");
    for (t, acked) in acked.iter().enumerate() {
        let acked = acked.load(Ordering::SeqCst);
        let member = format!("storm-{t}");
        let row = list.lines().find(|l| l.starts_with(&format!("{member} ")));
        let sequence = row
            .and_then(|l| l.split_whitespace().find_map(|w| w.strip_prefix('v')))
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        assert!(
            sequence >= acked,
            "{member}: {acked} acked commits but recovered sequence {sequence}"
        );
        // And nothing was invented: at most one in-flight commit (fsync'd
        // but killed before its ack was written) beyond the acked count.
        assert!(
            sequence <= acked + 1,
            "{member}: sequence {sequence} vs {acked} acked"
        );
    }
    assert!(!list.contains("beta"), "deleted member resurrected: {list}");

    // Differential view check: feed a never-crashed in-process registry
    // the recovered members' schemas; its merged view must match what
    // the restarted daemon serves, hash for hash.
    let reference = Registry::new();
    for row in list.lines().filter(|l| !l.trim().is_empty()) {
        let member = row.split_whitespace().next().unwrap();
        let (status, body) = command(&addr, &format!("GET {member}"));
        assert!(status.starts_with("DATA"), "{status}");
        let docs = parse_document(&body).expect("served schema parses back");
        for doc in docs {
            reference
                .put(member.to_string(), doc.schema.schema().clone())
                .expect("recovered members merge");
        }
    }
    let (merged_status, merged_body) = command(&addr, "MERGED");
    let view = reference.merged();
    let expected_hash = format!("hash={:016x}", view.hash());
    assert!(
        merged_status.contains(&expected_hash),
        "recovered daemon serves {merged_status}, reference computes {expected_hash}"
    );
    assert!(
        merged_body.contains(&format!(
            "// implicit classes: {}",
            view.report.num_implicit()
        )),
        "{merged_body}"
    );

    // Phase-1 members kept their exact histories (alpha/gamma at v3).
    for member in ["alpha", "gamma"] {
        assert!(
            list.lines()
                .any(|l| l.starts_with(&format!("{member} ")) && l.contains(" v3 ")),
            "{member} history damaged: {list}"
        );
    }

    // The recovered daemon is live: it accepts new commits and shuts
    // down cleanly.
    let (status, _) = command(&addr, "PING");
    assert_eq!(status, "OK pong");
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGKILL + fault-on-recovery: the daemon is killed mid-commit, and
/// the surviving directory is then recovered through a fault-injecting
/// store whose recovery-path reads fail transiently a few times. Under
/// a retry policy the recovery must still reproduce every acknowledged
/// commit; without one, the same faults are fatal (the legacy
/// fail-fast contract).
#[test]
fn sigkill_then_recovery_retries_transient_storage_faults() {
    use schema_merge_registry::storage::{Fault, FaultSchedule, FaultStore, LocalStore, OpKind};
    use schema_merge_registry::RetryPolicy;

    let dir = std::env::temp_dir().join(format!("smerge-crash-faulty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Acked history, then a storm thread with the plug pulled under it.
    let mut daemon = spawn_daemon(&dir, "5");
    let addr = daemon.addr.clone();
    {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for round in 0..4 {
            for member in ["alpha", "beta"] {
                let status = put(
                    &mut writer,
                    &mut reader,
                    member,
                    &schema_text(member, round),
                )
                .expect("acked put");
                assert!(status.starts_with("OK"), "{status}");
            }
        }
    }
    let acked = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let Ok(stream) = TcpStream::connect(&addr) else {
                return;
            };
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            for round in 0..10_000 {
                match put(
                    &mut writer,
                    &mut reader,
                    "storm",
                    &schema_text("storm", round),
                ) {
                    Ok(status) if status.starts_with("OK") => {
                        acked.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => return,
                }
            }
        });
        std::thread::sleep(Duration::from_millis(150));
        daemon.child.kill().expect("SIGKILL");
        let _ = daemon.child.wait();
    });
    drop(daemon);

    // Recover in-process through a flaky store: the first attempt of
    // every recovery read faults transiently.
    let flaky_schedule = || {
        FaultSchedule::new(7)
            .fail_nth(OpKind::ListSnapshots, 1, Fault::Transient)
            .fail_nth(OpKind::ReadSnapshot, 1, Fault::Transient)
            .fail_nth(OpKind::ReadLog, 1, Fault::Transient)
    };
    let store = FaultStore::new(LocalStore::open(&dir).unwrap(), flaky_schedule());
    let recovered = Registry::builder()
        .store(store)
        .retry_policy(
            RetryPolicy::new(3)
                .initial_backoff(Duration::from_millis(1))
                .max_backoff(Duration::from_millis(4)),
        )
        .open()
        .expect("recovery retries transient read faults");

    // Every acked commit survived the kill and the flaky recovery.
    let acked = acked.load(Ordering::SeqCst);
    let storm_sequence = recovered.history("storm").map(|h| h.len()).unwrap_or(0);
    assert!(
        storm_sequence >= acked,
        "{acked} acked storm commits but recovered {storm_sequence}"
    );
    assert!(storm_sequence <= acked + 1, "{storm_sequence} vs {acked}");
    assert_eq!(recovered.history("alpha").unwrap().len(), 4);
    assert_eq!(recovered.history("beta").unwrap().len(), 4);
    assert_eq!(recovered.health().state(), "ok");
    drop(recovered);

    // The same schedule without a retry policy is fatal.
    let store = FaultStore::new(LocalStore::open(&dir).unwrap(), flaky_schedule());
    let err = Registry::builder().store(store).open().unwrap_err();
    assert!(
        matches!(err, schema_merge_registry::RegistryError::Storage(_)),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
