//! Process-level regression tests: `smerge bench` and `smerge stats`
//! must *fail with a nonzero exit code* — never panic, never exit 0 —
//! on unreadable or unparseable input files, and say which file was at
//! fault.

use std::process::Command;

fn run(args: &[&str]) -> (std::process::ExitStatus, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_smerge"))
        .args(args)
        .output()
        .expect("smerge runs");
    let mut text = String::from_utf8_lossy(&output.stderr).into_owned();
    text.push_str(&String::from_utf8_lossy(&output.stdout));
    (output.status, text)
}

fn write_temp(name: &str, contents: &str) -> String {
    let dir = std::env::temp_dir().join("smerge-exit-codes");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path.to_string_lossy().into_owned()
}

/// The failure contract: exit code 1 (a controlled error, not a 101
/// panic abort), and the offending path named on stderr.
fn assert_controlled_failure(args: &[&str], path: &str) {
    let (status, text) = run(args);
    assert!(!status.success(), "`{args:?}` must fail: {text}");
    assert_eq!(
        status.code(),
        Some(1),
        "controlled exit, not a panic: {text}"
    );
    assert!(
        !text.contains("panicked"),
        "`{args:?}` panicked instead of erroring: {text}"
    );
    assert!(text.contains(path), "error names the file: {text}");
}

#[test]
fn bench_fails_cleanly_on_missing_file() {
    assert_controlled_failure(&["bench", "/nonexistent/xyz.sm"], "/nonexistent/xyz.sm");
}

#[test]
fn bench_fails_cleanly_on_unparseable_file() {
    let bad = write_temp("bad-bench.sm", "schema Broken {{{");
    assert_controlled_failure(&["bench", &bad], &bad);
}

#[test]
fn bench_fails_cleanly_on_directory_input() {
    let dir = std::env::temp_dir().join("smerge-exit-codes");
    std::fs::create_dir_all(&dir).unwrap();
    let dir = dir.to_string_lossy().into_owned();
    assert_controlled_failure(&["bench", &dir], &dir);
}

#[test]
fn bench_fails_cleanly_on_empty_document() {
    let empty = write_temp("empty-bench.sm", "");
    let (status, text) = run(&["bench", &empty]);
    assert_eq!(status.code(), Some(1), "{text}");
    assert!(text.contains("no schemas"), "{text}");
}

#[test]
fn stats_fails_cleanly_on_missing_file() {
    assert_controlled_failure(&["stats", "/nonexistent/xyz.sm"], "/nonexistent/xyz.sm");
}

#[test]
fn stats_fails_cleanly_on_unparseable_file() {
    let bad = write_temp("bad-stats.sm", "schema Broken { C --a-> }");
    assert_controlled_failure(&["stats", &bad], &bad);
}

#[test]
fn stats_fails_cleanly_on_directory_input() {
    let dir = std::env::temp_dir().join("smerge-exit-codes");
    std::fs::create_dir_all(&dir).unwrap();
    let dir = dir.to_string_lossy().into_owned();
    assert_controlled_failure(&["stats", &dir], &dir);
}

#[test]
fn good_files_still_exit_zero() {
    let good = write_temp("good.sm", "schema G { Dog --age--> int; }");
    let (status, text) = run(&["stats", &good]);
    assert!(status.success(), "{text}");
    let (status, text) = run(&["bench", &good, "--iters", "1"]);
    assert!(status.success(), "{text}");
}

#[test]
fn one_bad_file_among_good_ones_fails_the_whole_run() {
    let good = write_temp("good2.sm", "schema G { Dog --age--> int; }");
    assert_controlled_failure(
        &["bench", &good, "/nonexistent/other.sm"],
        "/nonexistent/other.sm",
    );
}

#[test]
fn errors_carry_stable_codes_on_stderr() {
    // Every CLI failure names its stable code — scripts match on
    // `error[E-CLI-…]`, and merge failures embed the merge code too.
    let (_, text) = run(&["merge", "/nonexistent/xyz.sm"]);
    assert!(text.contains("error[E-CLI-DATA]"), "{text}");

    let up = write_temp("code-up.sm", "schema A { X => Y; }");
    let down = write_temp("code-down.sm", "schema B { Y => X; }");
    let (status, text) = run(&["merge", &up, &down]);
    assert!(!status.success());
    assert!(text.contains("error[E-CLI-DATA]"), "{text}");
    assert!(text.contains("[E-MERGE-INCOMPATIBLE]"), "{text}");

    let (_, text) = run(&["frobnicate"]);
    assert!(text.contains("error[E-CLI-USAGE]"), "{text}");
}

/// Client-side failure classification at the process level: a daemon
/// that cannot be reached is `E-CLI-CONNECT` (transient — `--retries`
/// applies), and both spellings exit 1 without panicking.
#[test]
fn client_connect_failures_carry_the_connect_code() {
    // Bind then drop a listener: the port is refusing connections.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };

    let (status, text) = run(&["client", &addr, "ping"]);
    assert_eq!(status.code(), Some(1), "{text}");
    assert!(text.contains("error[E-CLI-CONNECT]"), "{text}");
    assert!(!text.contains("panicked"), "{text}");

    // With retries armed the classification is unchanged — still the
    // transient connect code after the budget runs out.
    let (status, text) = run(&[
        "client",
        &addr,
        "--retries",
        "2",
        "--retry-backoff-ms",
        "1",
        "health",
    ]);
    assert_eq!(status.code(), Some(1), "{text}");
    assert!(text.contains("error[E-CLI-CONNECT]"), "{text}");
}
