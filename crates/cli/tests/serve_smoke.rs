//! End-to-end smoke test of the registry daemon: spawns the real
//! `smerge serve` binary on an ephemeral port, drives PUT / MERGED /
//! QUERY / STATS through the real `smerge client` binary, hammers the
//! daemon with ≥4 *simultaneously open* raw connections, and shuts it
//! down cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Kills the daemon on panic so failed tests don't leak processes.
struct Daemon {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(preload: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_smerge"))
        .args(["serve", "--port", "0", "--threads", "4"])
        .args(preload)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("announcement line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line}"))
        .to_string();
    Daemon {
        child,
        stdout: reader,
        addr,
    }
}

/// Runs `smerge client <addr> <args…>`, returning (success, combined output).
fn client(addr: &str, args: &[&str]) -> (bool, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_smerge"))
        .arg("client")
        .arg(addr)
        .args(args)
        .output()
        .expect("client runs");
    let mut text = String::from_utf8_lossy(&output.stdout).into_owned();
    text.push_str(&String::from_utf8_lossy(&output.stderr));
    (output.status.success(), text)
}

fn write_temp(name: &str, contents: &str) -> String {
    let dir = std::env::temp_dir().join("smerge-serve-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path.to_string_lossy().into_owned()
}

fn wait_for_exit(child: &mut Child, limit: Duration) -> Option<std::process::ExitStatus> {
    let deadline = Instant::now() + limit;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return Some(status);
        }
        if Instant::now() > deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn daemon_serves_puts_merges_queries_and_shuts_down() {
    let f1 = write_temp("one.sm", "schema one { C --a--> B1; }");
    let f2 = write_temp("two.sm", "schema two { C --a--> B2; Guide => C; }");
    let bad = write_temp("bad.sm", "schema broken {{{");

    let mut daemon = spawn_daemon(&[]);
    let addr = daemon.addr.clone();

    // PUT two members through the real client binary.
    let (ok, text) = client(&addr, &["put", "alpha", &f1]);
    assert!(ok, "{text}");
    assert!(
        text.contains("hash=") && text.contains("sequence=1"),
        "{text}"
    );
    let (ok, text) = client(&addr, &["put", "beta", &f2]);
    assert!(ok, "{text}");
    assert!(text.contains("generation=2"), "{text}");

    // Republishing identical content is a no-op.
    let (ok, text) = client(&addr, &["put", "alpha", &f1]);
    assert!(ok, "{text}");
    assert!(text.contains("strategy=noop"), "{text}");

    // An unparseable payload is an ERR → nonzero client exit.
    let (ok, text) = client(&addr, &["put", "gamma", &bad]);
    assert!(!ok, "{text}");
    assert!(text.contains("parse failed"), "{text}");

    // MERGED carries the canonical view with the implicit class.
    let (ok, text) = client(&addr, &["merged"]);
    assert!(ok, "{text}");
    assert!(text.contains("schema merged {"), "{text}");
    assert!(text.contains("{B1,B2}"), "{text}");
    assert!(text.contains("// implicit classes: 1"), "{text}");

    // QUERY answers in schema space: C.a reaches the implicit meet.
    let (ok, text) = client(&addr, &["query", "C.a"]);
    assert!(ok, "{text}");
    assert!(text.contains("{B1,B2}"), "{text}");

    // STATS reflects the commits and the service uptime/request line.
    let (ok, text) = client(&addr, &["stats"]);
    assert!(ok, "{text}");
    assert!(text.contains("generation 2 | members 2"), "{text}");
    assert!(text.contains("merges:"), "{text}");
    assert!(text.contains("requests served"), "{text}");

    // METRICS exposes Prometheus-style text: commit-latency and per-verb
    // request-latency summaries with quantile lines.
    let (ok, text) = client(&addr, &["metrics"]);
    assert!(ok, "{text}");
    assert!(
        text.contains("# TYPE smerge_registry_commit_seconds summary"),
        "{text}"
    );
    assert!(
        text.contains("smerge_registry_commit_seconds{quantile=\"0.5\"}"),
        "{text}"
    );
    assert!(
        text.contains("smerge_registry_commit_seconds{quantile=\"0.99\"}"),
        "{text}"
    );
    assert!(
        text.contains("smerge_registry_commit_seconds_count 2"),
        "{text}"
    );
    assert!(
        text.contains("smerge_request_seconds{verb=\"put\",quantile=\"0.5\"}"),
        "{text}"
    );
    assert!(
        text.contains("smerge_request_seconds{verb=\"stats\",quantile=\"0.99\"}"),
        "{text}"
    );
    assert!(text.contains("smerge_requests_total"), "{text}");
    assert!(text.contains("smerge_uptime_seconds"), "{text}");
    assert!(text.contains("smerge_registry_generation 2"), "{text}");
    assert!(text.contains("smerge_registry_members 2"), "{text}");
    assert!(text.contains("smerge_storage_retry_total 0"), "{text}");
    assert!(text.contains("smerge_degraded 0"), "{text}");

    // HEALTH reports the resilience state: healthy, no retries, no
    // degrade/heal transitions yet.
    let (ok, text) = client(&addr, &["health"]);
    assert!(ok, "{text}");
    assert!(text.contains("state=ok"), "{text}");
    assert!(text.contains("retries=0"), "{text}");
    assert!(
        text.contains("degrade_events=0") && text.contains("heal_events=0"),
        "{text}"
    );

    // GET / LIST / DELETE round out the surface.
    let (ok, text) = client(&addr, &["get", "alpha"]);
    assert!(ok, "{text}");
    assert!(text.contains("schema alpha {"), "{text}");
    let (ok, text) = client(&addr, &["list"]);
    assert!(ok, "{text}");
    assert!(text.contains("alpha") && text.contains("beta"), "{text}");
    let (ok, text) = client(&addr, &["delete", "beta"]);
    assert!(ok, "{text}");
    let (ok, text) = client(&addr, &["query", "C.a"]);
    assert!(ok, "{text}");
    assert!(
        !text.contains("{B1,B2}"),
        "beta's contribution gone: {text}"
    );
    let (ok, _) = client(&addr, &["put", "beta", &f2]);
    assert!(ok);

    // ≥4 connections held open and served simultaneously: every thread
    // must receive its response while all four connections are up.
    let barrier = Arc::new(Barrier::new(4));
    std::thread::scope(|scope| {
        for i in 0..4 {
            let barrier = Arc::clone(&barrier);
            let addr = addr.clone();
            scope.spawn(move || {
                let stream = TcpStream::connect(&addr).expect("connects");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                barrier.wait(); // all four connections open
                writeln!(writer, "PING").unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                assert_eq!(line.trim(), "OK pong", "connection {i}");
                // Hold the connection open until everyone has been served:
                // with a pool of 4 threads this proves 4-way concurrency.
                barrier.wait();
                writeln!(writer, "QUIT").unwrap();
                line.clear();
                reader.read_line(&mut line).unwrap();
                assert_eq!(line.trim(), "OK bye", "connection {i}");
            });
        }
    });

    // Concurrent publishes from several client processes converge.
    std::thread::scope(|scope| {
        for i in 0..4 {
            let addr = addr.clone();
            scope.spawn(move || {
                let file = write_temp(
                    &format!("extra-{i}.sm"),
                    &format!("schema extra {{ Extra{i} --f--> T; }}"),
                );
                let (ok, text) = client(&addr, &["put", &format!("extra-{i}"), &file]);
                assert!(ok, "{text}");
            });
        }
    });
    let (ok, text) = client(&addr, &["merged"]);
    assert!(ok, "{text}");
    for i in 0..4 {
        assert!(text.contains(&format!("Extra{i}")), "{text}");
    }

    // Clean shutdown: the client call succeeds, the daemon exits 0 and
    // prints its closing line.
    let (ok, text) = client(&addr, &["shutdown"]);
    assert!(ok, "{text}");
    let status = wait_for_exit(&mut daemon.child, Duration::from_secs(30))
        .expect("daemon exits after SHUTDOWN");
    assert!(status.success(), "daemon exit: {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut daemon.stdout, &mut rest).unwrap();
    assert!(rest.contains("shutdown complete"), "{rest}");
}

#[test]
fn daemon_preloads_members_and_rejects_incompatible_publish() {
    let seed = write_temp(
        "seed.sm",
        "schema pets { Dog --owner--> Person; }\nschema kinds { Guide-dog => Dog; }",
    );
    let hostile = write_temp("hostile.sm", "schema h { Dog => Guide-dog; }");

    let mut daemon = spawn_daemon(&[&seed]);
    let addr = daemon.addr.clone();

    let (ok, text) = client(&addr, &["list"]);
    assert!(ok, "{text}");
    assert!(text.contains("pets") && text.contains("kinds"), "{text}");

    // A publish that would create a specialization cycle is rejected and
    // the view stays intact.
    let (ok, text) = client(&addr, &["put", "rogue", &hostile]);
    assert!(!ok, "{text}");
    assert!(text.contains("rejected"), "{text}");
    let (ok, text) = client(&addr, &["stats"]);
    assert!(ok, "{text}");
    assert!(text.contains("1 rejected"), "{text}");
    let (ok, text) = client(&addr, &["query", "Dog.owner"]);
    assert!(ok, "{text}");
    assert!(text.contains("Person"), "{text}");

    let (ok, _) = client(&addr, &["shutdown"]);
    assert!(ok);
    let status = wait_for_exit(&mut daemon.child, Duration::from_secs(30))
        .expect("daemon exits after SHUTDOWN");
    assert!(status.success());
}

#[test]
fn daemon_trace_log_captures_request_and_commit_spans() {
    let f1 = write_temp("trace-one.sm", "schema one { C --a--> B1; }");
    let trace_path = std::env::temp_dir()
        .join("smerge-serve-smoke")
        .join("trace.jsonl");
    let _ = std::fs::remove_file(&trace_path);
    let trace_arg = trace_path.to_string_lossy().into_owned();

    let mut daemon = spawn_daemon(&["--trace-log", &trace_arg]);
    let addr = daemon.addr.clone();

    let (ok, text) = client(&addr, &["put", "alpha", &f1]);
    assert!(ok, "{text}");
    let (ok, text) = client(&addr, &["merged"]);
    assert!(ok, "{text}");

    let (ok, _) = client(&addr, &["shutdown"]);
    assert!(ok);
    let status = wait_for_exit(&mut daemon.child, Duration::from_secs(30))
        .expect("daemon exits after SHUTDOWN");
    assert!(status.success());

    // One Chrome trace-event JSON line per span: the per-request root
    // spans plus the registry's nested commit phases.
    let log = std::fs::read_to_string(&trace_path).expect("trace log written");
    assert!(!log.trim().is_empty(), "trace log has events");
    for line in log.lines() {
        assert!(line.starts_with("{\"name\":\""), "JSONL line: {line}");
        assert!(line.contains("\"ph\":\"X\""), "complete event: {line}");
    }
    assert!(log.contains("\"name\":\"put\""), "{log}");
    assert!(log.contains("\"name\":\"commit\""), "{log}");
    assert!(log.contains("\"name\":\"plan\""), "{log}");
    assert!(log.contains("\"name\":\"execute\""), "{log}");
    assert!(log.contains("\"name\":\"merged\""), "{log}");
}

#[test]
fn daemon_federates_attach_compose_supergraph_and_detach() {
    let inventory = write_temp(
        "fed-inventory.sm",
        "schema parts { Part --price--> money; }",
    );
    let orders = write_temp("fed-orders.sm", "schema orders { Order --item--> Part; }");

    let mut daemon = spawn_daemon(&[]);
    let addr = daemon.addr.clone();

    // A bare PUT routes to the daemon's default registry, which is
    // attached to the supergraph from the start.
    let (ok, text) = client(&addr, &["put", "parts", &inventory]);
    assert!(ok, "{text}");

    // ATTACH a second registry and publish into it with namespaced
    // `registry/member` routing.
    let (ok, text) = client(&addr, &["attach", "sales"]);
    assert!(ok, "{text}");
    assert!(text.contains("registry=sales registries=2"), "{text}");
    let (ok, text) = client(&addr, &["put", "sales/orders", &orders]);
    assert!(ok, "{text}");
    assert!(text.contains("sequence=1"), "{text}");

    // A PUT naming an unattached registry is a protocol error with the
    // stable supergraph code.
    let (ok, text) = client(&addr, &["put", "billing/invoices", &orders]);
    assert!(!ok, "{text}");
    assert!(text.contains("E-SG-UNKNOWN"), "{text}");
    assert!(text.contains("no registry `billing`"), "{text}");

    // COMPOSE merges both registries' views.
    let (ok, text) = client(&addr, &["compose"]);
    assert!(ok, "{text}");
    assert!(text.contains("strategy=full"), "{text}");
    assert!(text.contains("registries=2 classes=3 arrows=2"), "{text}");

    // SUPERGRAPH dumps the composed view: contributions + schema.
    let (ok, text) = client(&addr, &["supergraph"]);
    assert!(ok, "{text}");
    assert!(
        text.contains("registry default generation=1 members=1"),
        "{text}"
    );
    assert!(
        text.contains("registry sales generation=1 members=1"),
        "{text}"
    );
    assert!(text.contains("Order --item--> Part;"), "{text}");
    assert!(text.contains("Part --price--> money;"), "{text}");

    // Composing again with nothing changed is a noop.
    let (ok, text) = client(&addr, &["compose"]);
    assert!(ok, "{text}");
    assert!(text.contains("strategy=noop"), "{text}");

    // ATTACH of a duplicate name is rejected.
    let (ok, text) = client(&addr, &["attach", "sales"]);
    assert!(!ok, "{text}");
    assert!(text.contains("E-SG-DUPLICATE"), "{text}");

    // DETACH drops the registry's contribution from the next compose…
    let (ok, text) = client(&addr, &["detach", "sales"]);
    assert!(ok, "{text}");
    assert!(text.contains("registries=1"), "{text}");
    let (ok, text) = client(&addr, &["compose"]);
    assert!(ok, "{text}");
    assert!(text.contains("classes=2 arrows=1"), "{text}");

    // …and a detached namespace no longer routes.
    let (ok, text) = client(&addr, &["put", "sales/orders", &orders]);
    assert!(!ok, "{text}");
    assert!(text.contains("E-SG-UNKNOWN"), "{text}");
    let (ok, text) = client(&addr, &["detach", "sales"]);
    assert!(!ok, "{text}");
    assert!(text.contains("E-SG-UNKNOWN"), "{text}");

    // The compose latency histogram rides in METRICS.
    let (ok, text) = client(&addr, &["metrics"]);
    assert!(ok, "{text}");
    assert!(text.contains("smerge_compose_seconds"), "{text}");
    assert!(text.contains("smerge_supergraph_registries 1"), "{text}");
    assert!(text.contains("smerge_composes_noop_total 1"), "{text}");

    let (ok, _) = client(&addr, &["shutdown"]);
    assert!(ok);
    let status = wait_for_exit(&mut daemon.child, Duration::from_secs(30))
        .expect("daemon exits after SHUTDOWN");
    assert!(status.success());
}
