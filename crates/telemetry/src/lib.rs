//! Std-only telemetry primitives for the schema-merge workspace.
//!
//! The merge pipeline (join → closure → Imp fixpoint → assembly), the
//! durable registry and the TCP daemon all need the same three signals:
//!
//! * **monotone counters and gauges** — cheap relaxed atomics, safe to
//!   bump from any thread ([`Counter`], [`Gauge`]);
//! * **latency distributions** — fixed-bucket log2 histograms with
//!   p50/p90/p99 extraction and cross-thread merge ([`Histogram`]);
//! * **structured spans** — a thread-local span stack producing
//!   `(name, parent, start, duration, key=value attrs)` records for
//!   phase-level attribution of a merge or a commit ([`span`],
//!   [`SpanRecord`]).
//!
//! Everything is `std`-only (the workspace builds without network access
//! to crates.io, so this crate matches the vendored-stand-ins policy: no
//! external dependencies at all) and `#![forbid(unsafe_code)]`.
//!
//! ## The disabled path is (near) free
//!
//! Span collection is off by default. [`span`] starts by checking one
//! relaxed atomic plus one thread-local flag; when both are off it
//! returns an inert guard without touching the clock, allocating, or
//! pushing anything — a merge run with tracing disabled does the same
//! work it did before this crate existed. Collection is enabled either
//! process-wide ([`set_spans_enabled`], what `smerge serve --trace-log`
//! uses) or for the current thread only ([`thread_span_scope`], what
//! `Merger::trace(true)` uses so one traced merge does not force
//! tracing onto unrelated threads).
//!
//! Counters and histograms are *always* live: a handful of relaxed
//! atomic adds per event, which is the same order of cost as the
//! existing registry counters.
//!
//! ## Exposition
//!
//! [`HistogramSnapshot::render_prometheus`] and
//! [`render_counter`]/[`render_gauge`] produce Prometheus-style text
//! (the `METRICS` protocol verb), and [`SpanRecord::to_trace_event`]
//! produces Chrome `trace_event`-compatible JSON objects (the daemon's
//! `--trace-log` JSONL sink, loadable in `chrome://tracing` / Perfetto).

#![forbid(unsafe_code)]

mod metrics;
mod span;

pub use metrics::{
    render_counter, render_gauge, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS,
};
pub use span::{
    drain_spans, drain_spans_since, now_ns, set_spans_enabled, span, span_mark, spans_enabled,
    thread_span_scope, Span, SpanRecord, ThreadSpanScope,
};
