//! Counters, gauges and log2 latency histograms.
//!
//! All types are plain structs of relaxed atomics: share them behind an
//! `Arc` (or a `static`) and bump from any thread. None of them ever
//! block, allocate after construction, or panic on overflow — counts
//! saturate at `u64::MAX` instead of wrapping, so a histogram that has
//! run for years degrades to "pegged" rather than lying.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: one per power of two of a `u64`
/// nanosecond value, so bucket `i` covers `[2^i, 2^(i+1))` ns (bucket 0
/// also absorbs 0) and the last bucket absorbs everything ≥ 2^63.
pub const BUCKETS: usize = 64;

/// Saturating increment of an atomic counter cell: the count pins at
/// `u64::MAX` instead of wrapping back to zero.
fn saturating_add(cell: &AtomicU64, delta: u64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(delta);
        if next == current {
            return; // already pegged
        }
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter (`const`, so counters can be `static`).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `delta` (saturating).
    pub fn add(&self, delta: u64) {
        saturating_add(&self.0, delta);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed up/down gauge (live connections, queue depth, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zero gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 latency histogram over nanosecond samples.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` ns; zero lands in
/// bucket 0 and anything ≥ 2^63 lands in the last bucket. Recording is
/// three relaxed atomic adds (bucket, count, sum) and all counts
/// saturate rather than wrap. Quantiles come out of a
/// [`HistogramSnapshot`]; the reported value for a quantile is the
/// upper bound of the bucket it falls in, so p50/p99 are exact to
/// within one power of two — the right fidelity for latency SLOs and
/// far cheaper than exact reservoirs.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a nanosecond sample: `floor(log2(ns))`, with 0
/// mapping to bucket 0.
fn bucket_index(ns: u64) -> usize {
    (63 - (ns | 1).leading_zeros()) as usize
}

impl Histogram {
    /// A fresh empty histogram (`const`, so histograms can be `static`).
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array element-wise.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one nanosecond sample.
    pub fn record_ns(&self, ns: u64) {
        saturating_add(&self.buckets[bucket_index(ns)], 1);
        saturating_add(&self.count, 1);
        saturating_add(&self.sum_ns, ns);
    }

    /// Records one [`Duration`] sample (clamped to `u64::MAX` ns).
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds another histogram into this one (cross-thread /
    /// cross-shard aggregation). Saturating, like recording.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let delta = theirs.load(Ordering::Relaxed);
            if delta != 0 {
                saturating_add(mine, delta);
            }
        }
        saturating_add(&self.count, other.count.load(Ordering::Relaxed));
        saturating_add(&self.sum_ns, other.sum_ns.load(Ordering::Relaxed));
    }

    /// A coherent-enough point-in-time copy (each cell is read
    /// relaxed; under concurrent writers the snapshot may be mid-update
    /// by a few samples, which is fine for exposition).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(&self.buckets) {
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// An owned point-in-time copy of a [`Histogram`], with quantile
/// extraction and Prometheus rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` covers `[2^i, 2^(i+1))` ns).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, nanoseconds (saturating).
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Upper bound (inclusive) of bucket `i` in nanoseconds.
    fn bucket_upper_ns(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket the `ceil(q·count)`-th sample falls in, 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), at least 1 so q=0 still names the first sample.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return Self::bucket_upper_ns(i);
            }
        }
        Self::bucket_upper_ns(BUCKETS - 1)
    }

    /// Median (p50) in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// p90 in nanoseconds.
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// p99 in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Renders the snapshot as a Prometheus summary: `quantile`-labeled
    /// value lines (seconds) for p50/p90/p99 plus `_sum` and `_count`.
    ///
    /// `labels` is either empty or a ready-made `key="value"` list
    /// (comma-separated, no braces) merged with the `quantile` label:
    ///
    /// ```text
    /// smerge_request_latency_seconds{verb="PUT",quantile="0.5"} 0.000012
    /// smerge_request_latency_seconds_sum{verb="PUT"} 0.000431
    /// smerge_request_latency_seconds_count{verb="PUT"} 17
    /// ```
    pub fn render_prometheus(&self, out: &mut String, name: &str, labels: &str) {
        let secs = |ns: u64| ns as f64 / 1e9;
        for (q, ns) in [
            ("0.5", self.p50_ns()),
            ("0.9", self.p90_ns()),
            ("0.99", self.p99_ns()),
        ] {
            if labels.is_empty() {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {:.9}\n", secs(ns)));
            } else {
                out.push_str(&format!(
                    "{name}{{{labels},quantile=\"{q}\"}} {:.9}\n",
                    secs(ns)
                ));
            }
        }
        let suffix = |out: &mut String, tail: &str, value: String| {
            if labels.is_empty() {
                out.push_str(&format!("{name}_{tail} {value}\n"));
            } else {
                out.push_str(&format!("{name}_{tail}{{{labels}}} {value}\n"));
            }
        };
        suffix(out, "sum", format!("{:.9}", secs(self.sum_ns)));
        suffix(out, "count", format!("{}", self.count));
    }
}

/// Renders one counter metric with a `# TYPE` header.
pub fn render_counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
    ));
}

/// Renders one gauge metric with a `# TYPE` header.
pub fn render_gauge(out: &mut String, name: &str, help: &str, value: i64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn empty_histogram_reports_zero_quantiles() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50_ns(), 0);
        assert_eq!(snap.p99_ns(), 0);
        assert_eq!(snap.mean_ns(), 0);
    }

    #[test]
    fn single_sample_quantiles_name_its_bucket() {
        let h = Histogram::new();
        h.record_ns(700); // bucket 9: [512, 1024)
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum_ns, 700);
        // Every quantile of a one-sample distribution is that sample's
        // bucket upper bound.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile_ns(q), 1023, "q={q}");
        }
        assert_eq!(snap.mean_ns(), 700);
    }

    #[test]
    fn quantiles_split_a_two_mode_distribution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_ns(100); // bucket 6: [64, 128)
        }
        for _ in 0..10 {
            h.record_ns(1_000_000); // bucket 19
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50_ns(), 127, "p50 sits in the fast mode");
        assert_eq!(snap.p90_ns(), 127, "p90 is the last fast sample");
        assert_eq!(
            snap.p99_ns(),
            (1u64 << 20) - 1,
            "p99 lands in the slow mode"
        );
    }

    #[test]
    fn extreme_samples_saturate_into_the_last_bucket() {
        let h = Histogram::new();
        h.record_ns(u64::MAX);
        h.record_ns(1u64 << 63);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[63], 2);
        assert_eq!(snap.p50_ns(), u64::MAX);
        // The sum saturates instead of wrapping.
        assert_eq!(snap.sum_ns, u64::MAX);
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX, "counter pegs at MAX");
        c.incr();
        assert_eq!(c.get(), u64::MAX, "pegged counter stays pegged");
    }

    #[test]
    fn cross_thread_recording_and_merge() {
        // Two histograms recorded from two threads each, then merged:
        // the merged distribution carries every sample exactly once.
        let a = Arc::new(Histogram::new());
        let b = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for target in [Arc::clone(&a), Arc::clone(&b)] {
            for offset in [10u64, 100_000u64] {
                let h = Arc::clone(&target);
                handles.push(std::thread::spawn(move || {
                    for i in 0..500 {
                        h.record_ns(offset + i);
                    }
                }));
            }
        }
        for handle in handles {
            handle.join().expect("recorder threads finish");
        }
        assert_eq!(a.snapshot().count, 1000);
        assert_eq!(b.snapshot().count, 1000);
        let merged = Histogram::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        let snap = merged.snapshot();
        assert_eq!(snap.count, 2000);
        assert_eq!(
            snap.sum_ns,
            a.snapshot().sum_ns + b.snapshot().sum_ns,
            "merge preserves the sum"
        );
        // Half the samples sit near 10ns, half near 100µs: the median
        // must fall in the fast half's bucket range, p99 in the slow.
        assert!(snap.p50_ns() < 1024, "p50={}", snap.p50_ns());
        assert!(snap.p99_ns() >= 100_000, "p99={}", snap.p99_ns());
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn prometheus_rendering_has_quantile_sum_count_lines() {
        let h = Histogram::new();
        for _ in 0..4 {
            h.record(Duration::from_micros(100));
        }
        let mut out = String::new();
        h.snapshot()
            .render_prometheus(&mut out, "smerge_commit_latency_seconds", "");
        assert!(out.contains("smerge_commit_latency_seconds{quantile=\"0.5\"}"));
        assert!(out.contains("smerge_commit_latency_seconds{quantile=\"0.99\"}"));
        assert!(out.contains("smerge_commit_latency_seconds_count 4"));
        assert!(out.contains("smerge_commit_latency_seconds_sum 0.000400"));

        let mut labeled = String::new();
        h.snapshot().render_prometheus(
            &mut labeled,
            "smerge_request_latency_seconds",
            "verb=\"PUT\"",
        );
        assert!(labeled.contains("smerge_request_latency_seconds{verb=\"PUT\",quantile=\"0.5\"}"));
        assert!(labeled.contains("smerge_request_latency_seconds_count{verb=\"PUT\"} 4"));

        let mut counters = String::new();
        render_counter(
            &mut counters,
            "smerge_requests_total",
            "Requests served.",
            9,
        );
        render_gauge(&mut counters, "smerge_uptime_seconds", "Daemon uptime.", 31);
        assert!(counters.contains("# TYPE smerge_requests_total counter"));
        assert!(counters.contains("smerge_requests_total 9"));
        assert!(counters.contains("# TYPE smerge_uptime_seconds gauge"));
        assert!(counters.contains("smerge_uptime_seconds 31"));
    }
}
