//! Structured span tracing: a thread-local span stack.
//!
//! A span is opened with [`span("name")`](span), carries `key=value`
//! attributes, and records itself when its guard drops. Records land in
//! a per-thread buffer of finished spans that the *owner of the traced
//! region* drains ([`span_mark`] + [`drain_spans_since`]) — there is no
//! global sink, so a traced merge inside a registry commit never steals
//! the commit's own spans and concurrent traced threads never contend.
//!
//! Parent/child structure survives draining: every span gets a
//! process-unique id at open time and remembers the id of the span that
//! was on top of its thread's stack. A drained slice can therefore be
//! rendered as a tree even when its root's parent (still open, or owned
//! by an enclosing drain) is absent.
//!
//! ## Enablement
//!
//! Disabled (the default), [`span`] reads one relaxed atomic and one
//! thread-local flag and returns an inert guard — no clock read, no
//! allocation. Enable process-wide with [`set_spans_enabled`] (the
//! daemon's `--trace-log`) or per-thread with the RAII
//! [`thread_span_scope`] (one traced merge).

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide span switch (the daemon-style "trace everything" mode).
static GLOBAL_SPANS: AtomicBool = AtomicBool::new(false);

/// Monotone process-unique span id source.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// The process epoch all span start times are relative to.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Nesting depth of [`ThreadSpanScope`]s on this thread.
    static THREAD_SPANS: Cell<u32> = const { Cell::new(0) };
    /// Ids of the currently open spans, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Finished spans awaiting a drain.
    static FINISHED: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
}

/// Nanoseconds since the process epoch (first telemetry use).
pub fn now_ns() -> u64 {
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Turns span collection on or off for every thread.
pub fn set_spans_enabled(on: bool) {
    GLOBAL_SPANS.store(on, Ordering::Relaxed);
}

/// Whether span collection is live for the current thread.
pub fn spans_enabled() -> bool {
    GLOBAL_SPANS.load(Ordering::Relaxed) || THREAD_SPANS.with(|depth| depth.get() > 0)
}

/// RAII guard enabling span collection on the current thread; see
/// [`thread_span_scope`].
#[derive(Debug)]
pub struct ThreadSpanScope(());

/// Enables span collection on this thread until the returned scope
/// drops. Scopes nest; collection stays on while any is alive.
pub fn thread_span_scope() -> ThreadSpanScope {
    THREAD_SPANS.with(|depth| depth.set(depth.get() + 1));
    ThreadSpanScope(())
}

impl Drop for ThreadSpanScope {
    fn drop(&mut self) {
        THREAD_SPANS.with(|depth| depth.set(depth.get().saturating_sub(1)));
    }
}

/// One finished span: what happened, under what, when, for how long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any was open.
    pub parent: Option<u64>,
    /// Static span name (e.g. `"pass:join"`).
    pub name: &'static str,
    /// Start, nanoseconds since the process epoch ([`now_ns`]).
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// `key=value` work attributes (classes, arrows, waves, bytes, …).
    pub attrs: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// Renders the record as one Chrome `trace_event` "complete" (`X`)
    /// JSON object — one line of the daemon's `--trace-log` JSONL sink,
    /// loadable in `chrome://tracing` or Perfetto. Timestamps and
    /// durations are microseconds per the trace-event spec; span
    /// identity and attrs ride in `args`.
    pub fn to_trace_event(&self, tid: u64) -> String {
        let mut args = format!("\"id\":{}", self.id);
        if let Some(parent) = self.parent {
            args.push_str(&format!(",\"parent\":{parent}"));
        }
        for (key, value) in &self.attrs {
            args.push_str(&format!(",\"{key}\":{value}"));
        }
        format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
            self.name,
            tid,
            self.start_ns / 1_000,
            self.duration_ns / 1_000,
            args,
        )
    }
}

/// An open span; records itself to the thread buffer on drop. Inert
/// (and free) when collection was disabled at open time.
#[derive(Debug)]
pub struct Span {
    /// `Some` while live and enabled.
    record: Option<(SpanRecord, Instant)>,
}

/// Opens a span. When collection is disabled this is one atomic load
/// plus one thread-local read, and the returned guard does nothing.
pub fn span(name: &'static str) -> Span {
    if !spans_enabled() {
        return Span { record: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    let start_ns = now_ns();
    Span {
        record: Some((
            SpanRecord {
                id,
                parent,
                name,
                start_ns,
                duration_ns: 0,
                attrs: Vec::new(),
            },
            Instant::now(),
        )),
    }
}

impl Span {
    /// Attaches a `key=value` work attribute (no-op when inert).
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if let Some((record, _)) = &mut self.record {
            record.attrs.push((key, value));
        }
    }

    /// Attaches an attribute from a `usize` (the common case for
    /// class/arrow counts).
    pub fn attr_usize(&mut self, key: &'static str, value: usize) {
        self.attr(key, value as u64);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((mut record, started)) = self.record.take() {
            record.duration_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            STACK.with(|stack| {
                // Spans are scope guards, so drops are LIFO; a stale id
                // (leaked guard) is removed wherever it sits.
                let mut stack = stack.borrow_mut();
                if let Some(at) = stack.iter().rposition(|&id| id == record.id) {
                    stack.remove(at);
                }
            });
            FINISHED.with(|finished| finished.borrow_mut().push(record));
        }
    }
}

/// A position in this thread's finished-span buffer; pair with
/// [`drain_spans_since`] to drain only the spans recorded after it.
pub fn span_mark() -> usize {
    FINISHED.with(|finished| finished.borrow().len())
}

/// Removes and returns the spans this thread finished since `mark`
/// (clamped to the buffer, so a stale mark cannot panic).
pub fn drain_spans_since(mark: usize) -> Vec<SpanRecord> {
    FINISHED.with(|finished| {
        let mut finished = finished.borrow_mut();
        let at = mark.min(finished.len());
        finished.split_off(at)
    })
}

/// Removes and returns every finished span on this thread.
pub fn drain_spans() -> Vec<SpanRecord> {
    drain_spans_since(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        assert!(!spans_enabled());
        let mark = span_mark();
        {
            let mut s = span("noop");
            s.attr("classes", 7);
        }
        assert!(drain_spans_since(mark).is_empty());
    }

    #[test]
    fn thread_scope_captures_nested_spans_with_parents() {
        let _scope = thread_span_scope();
        let mark = span_mark();
        {
            let mut root = span("merge");
            root.attr_usize("inputs", 2);
            {
                let _child = span("pass:join");
                let _grandchild = span("intern");
            }
            let _sibling = span("pass:completion");
        }
        let spans = drain_spans_since(mark);
        assert_eq!(spans.len(), 4, "{spans:?}");
        // Drop order: intern, pass:join, pass:completion, merge.
        let by_name = |name: &str| spans.iter().find(|s| s.name == name).unwrap();
        let root = by_name("merge");
        let join = by_name("pass:join");
        let intern = by_name("intern");
        let completion = by_name("pass:completion");
        assert_eq!(join.parent, Some(root.id));
        assert_eq!(intern.parent, Some(join.id));
        assert_eq!(completion.parent, Some(root.id));
        assert_eq!(root.attrs, vec![("inputs", 2)]);
        assert_eq!(spans.last().unwrap().name, "merge", "root finishes last");
        // Children are contained in the root's wall-clock window.
        assert!(root.duration_ns >= join.duration_ns + completion.duration_ns);
    }

    #[test]
    fn scope_is_thread_local() {
        let _scope = thread_span_scope();
        let handle = std::thread::spawn(|| {
            let mark = span_mark();
            let _s = span("other-thread");
            drop(_s);
            drain_spans_since(mark).len()
        });
        assert_eq!(
            handle.join().unwrap(),
            0,
            "a thread scope must not leak to other threads"
        );
    }

    #[test]
    fn marks_isolate_nested_drains() {
        let _scope = thread_span_scope();
        let outer_mark = span_mark();
        let _outer = span("commit");
        let inner_mark = span_mark();
        {
            let _inner = span("merge");
        }
        let inner = drain_spans_since(inner_mark);
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].name, "merge");
        drop(_outer);
        let outer = drain_spans_since(outer_mark);
        assert_eq!(outer.len(), 1, "the inner drain already took `merge`");
        assert_eq!(outer[0].name, "commit");
        assert_eq!(inner[0].parent, Some(outer[0].id), "parent ids survive");
    }

    #[test]
    fn trace_event_line_is_wellformed() {
        let record = SpanRecord {
            id: 42,
            parent: Some(7),
            name: "pass:join",
            start_ns: 5_000,
            duration_ns: 12_345,
            attrs: vec![("classes", 10), ("arrows", 20)],
        };
        let line = record.to_trace_event(3);
        assert_eq!(
            line,
            "{\"name\":\"pass:join\",\"ph\":\"X\",\"pid\":1,\"tid\":3,\"ts\":5,\"dur\":12,\
             \"args\":{\"id\":42,\"parent\":7,\"classes\":10,\"arrows\":20}}"
        );
    }
}
