//! The exponential completion family (§7, open question 3).
//!
//! The `Imp` fixpoint of §4.2 steps from a set of classes `X` to
//! `R(X, a)` — exactly an NFA subset construction with classes as NFA
//! states and labels as the alphabet. A classic hard NFA therefore forces
//! exponentially many implicit classes.
//!
//! We use the standard witness for the language "(a|b)* a (a|b)^(n-1)"
//! ("the n-th symbol from the end is `a`"): states `q0 … qn` with
//!
//! ```text
//! q0 --a--> q0    q0 --b--> q0    q0 --a--> q1
//! qi --a--> qi+1  qi --b--> qi+1            (1 ≤ i < n)
//! ```
//!
//! Every subset of `{q1 … qn}` (paired with `q0`) is a reachable state of
//! the determinization, so completion introduces ~`2^n` implicit classes.
//! A flat specialization order keeps `MinS` the identity, so nothing
//! collapses.

use schema_merge_core::{Class, WeakSchema};

/// Builds the `n`-state hard instance. `n = 0` yields a single class with
/// self-loops (no implicit classes).
pub fn pathological_nfa(n: usize) -> WeakSchema {
    let q = |i: usize| Class::named(format!("q{i}"));
    let mut builder = WeakSchema::builder()
        .arrow(q(0), "a", q(0))
        .arrow(q(0), "b", q(0));
    if n >= 1 {
        builder = builder.arrow(q(0), "a", q(1));
    }
    for i in 1..n {
        builder = builder.arrow(q(i), "a", q(i + 1));
        builder = builder.arrow(q(i), "b", q(i + 1));
    }
    builder
        .build()
        .expect("the NFA family has no specializations")
}

/// The number of implicit classes completion must introduce for
/// [`pathological_nfa`]`(n)`: every reachable determinization state of
/// cardinality ≥ 2.
///
/// Reachable states have the form `{q0} ∪ S` with
/// `S ⊆ {q1, …, qn}` (`q0` persists through its self-loops, and the
/// suffix states track which of the last `n` inputs were `a`), minus the
/// start singleton — except that subsets containing `qn` lose `qn` on the
/// next step (no outgoing edges from `qn` are needed to keep them alive:
/// `qn+1` does not exist). Concretely the reachable set count is `2^n`
/// including the singleton `{q0}`, so the implicit-class count is
/// `2^n - 1`.
pub fn expected_pathological_implicit_classes(n: usize) -> usize {
    (1usize << n) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_merge_core::complete::complete_with_report;

    #[test]
    fn base_case_has_no_implicit_classes() {
        let schema = pathological_nfa(0);
        let (_, report) = complete_with_report(&schema).unwrap();
        assert_eq!(report.num_implicit(), 0);
    }

    #[test]
    fn implicit_class_count_is_exponential() {
        for n in 1..=8 {
            let schema = pathological_nfa(n);
            let (proper, report) = complete_with_report(&schema).unwrap();
            assert_eq!(
                report.num_implicit(),
                expected_pathological_implicit_classes(n),
                "n = {n}"
            );
            assert!(proper.check_d1());
        }
    }

    #[test]
    fn schema_size_is_linear_but_completion_is_not() {
        let small = pathological_nfa(4);
        let large = pathological_nfa(8);
        // Input grows linearly…
        assert!(large.num_classes() <= 2 * small.num_classes() + 1);
        // …output implicit classes grow exponentially.
        let (_, small_report) = complete_with_report(&small).unwrap();
        let (_, large_report) = complete_with_report(&large).unwrap();
        assert_eq!(small_report.num_implicit(), 15);
        assert_eq!(large_report.num_implicit(), 255);
    }

    #[test]
    fn realistic_schemas_stay_small() {
        // The contrast the paper predicts: "we do not think these are
        // likely to occur in practice". A same-size random schema
        // produces hardly any implicit classes.
        let params = crate::random::SchemaParams {
            vocabulary: 10,
            classes: 10,
            labels: 2,
            arrows: 18,
            specializations: 4,
            seed: 3,
        };
        let schema = crate::random::random_schema(&params);
        let (_, report) = complete_with_report(&schema).unwrap();
        assert!(
            report.num_implicit() < 32,
            "random schema exploded: {}",
            report.num_implicit()
        );
    }
}
