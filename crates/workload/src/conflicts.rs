//! Generators for structurally conflicting ER pairs (§7) — workloads for
//! the normalization benchmarks and experiments.

use schema_merge_er::ErSchema;

/// A pair of ER schemas with exactly `n` attribute-versus-entity
/// conflicts: the left schema records `spot0 … spot(n-1)` as attributes
/// of `Dog`, the right declares each as an entity with structure of its
/// own. `normalize_pair` with `PreferEntity` fixes all `n`.
pub fn conflicting_er_pair(n: usize) -> (ErSchema, ErSchema) {
    let mut left = ErSchema::builder().entity("Dog");
    let mut right = ErSchema::builder().entity("Dog");
    for i in 0..n {
        left = left.attribute("Dog", format!("spot{i}"), format!("id{i}"));
        right = right
            .entity(format!("spot{i}"))
            .attribute(format!("spot{i}"), "addr", "place");
    }
    (
        left.build().expect("left side is a valid ER schema"),
        right.build().expect("right side is a valid ER schema"),
    )
}

/// A pair with `n` reified-versus-direct conflicts: the left schema
/// reifies `Rel0 … Rel(n-1)` as relationship nodes, the right draws each
/// as a direct attribute named after the relationship.
pub fn reified_vs_direct_pair(n: usize) -> (ErSchema, ErSchema) {
    let mut left = ErSchema::builder();
    let mut right = ErSchema::builder();
    for i in 0..n {
        let (a, b) = (format!("A{i}"), format!("B{i}"));
        left = left
            .entity(a.clone())
            .entity(b.clone())
            .relationship(format!("Rel{i}"), [("src", a.clone()), ("tgt", b.clone())]);
        right =
            right
                .entity(a.clone())
                .entity(b)
                .attribute(a, format!("rel{i}"), format!("ref{i}"));
    }
    (
        left.build().expect("left side is a valid ER schema"),
        right.build().expect("right side is a valid ER schema"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_merge_er::{detect_conflicts, normalize_pair, NormalPolicy, StructuralConflict};

    #[test]
    fn attribute_pairs_plant_exactly_n_conflicts() {
        for n in [0, 1, 5] {
            let (left, right) = conflicting_er_pair(n);
            let conflicts = detect_conflicts(&left, &right);
            assert_eq!(conflicts.len(), n, "n = {n}");
            assert!(conflicts
                .iter()
                .all(|c| matches!(c, StructuralConflict::AttributeVersusThing { .. })));
        }
    }

    #[test]
    fn attribute_pairs_normalize_clean() {
        let (left, right) = conflicting_er_pair(4);
        let outcome = normalize_pair(&left, &right, NormalPolicy::PreferEntity);
        assert!(outcome.is_clean());
        assert_eq!(outcome.applied.len(), 4);
    }

    #[test]
    fn reified_pairs_plant_reified_versus_direct() {
        let (left, right) = reified_vs_direct_pair(3);
        let conflicts = detect_conflicts(&left, &right);
        assert_eq!(conflicts.len(), 3);
        assert!(conflicts
            .iter()
            .all(|c| matches!(c, StructuralConflict::ReifiedVersusDirect { .. })));
    }

    #[test]
    fn reified_pairs_normalize_clean() {
        let (left, right) = reified_vs_direct_pair(3);
        let outcome = normalize_pair(&left, &right, NormalPolicy::PreferEntity);
        assert!(outcome.is_clean(), "skipped: {:?}", outcome.skipped);
        assert_eq!(outcome.applied.len(), 3);
    }
}
