//! Taxonomy workloads: the 10k–100k-class shapes real ontology and
//! class-hierarchy mergers face — deep trees, high-fan-out trees, and
//! DAGs with multiple inheritance — generated as forests of disjoint
//! trees so the partitioned merge engine has real components to find.
//!
//! Unlike [`random_schema`](crate::random_schema)'s uniform edge soup, a
//! taxonomy's specialization graph is *sparse and shallow per class*:
//! each class has one (or, with multiple inheritance, a few) parents and
//! a closed ancestor set bounded by the tree depth, not the class count.
//! That is exactly the shape the adaptive sparse row representation
//! exists for, so this family is the headline workload of the
//! representation and partitioning benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use schema_merge_core::{Class, Label, WeakSchema};

/// Parameters for [`taxonomy`] and [`taxonomy_family`].
#[derive(Debug, Clone)]
pub struct TaxonomyParams {
    /// Total classes across all forests.
    pub classes: usize,
    /// Children per node: `2` makes deep trees, `32`+ makes shallow
    /// high-fan-out trees.
    pub branching: usize,
    /// Number of disjoint trees. Classes of different forests never
    /// share an edge (specialization *or* arrow), so the combined graph
    /// has exactly this many weakly-connected components — the shape the
    /// partitioned engine splits.
    pub forests: usize,
    /// Extra specialization edges to random *ancestral-order* classes in
    /// the same forest: multiple inheritance, turning the tree into a
    /// DAG while staying acyclic.
    pub dag_extra_parents: usize,
    /// Arrow labels available (`attr00`, `attr01`, …).
    pub labels: usize,
    /// Attribute arrows to generate, each within one forest.
    pub arrows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TaxonomyParams {
    fn default() -> Self {
        TaxonomyParams {
            classes: 1_000,
            branching: 8,
            forests: 4,
            dag_extra_parents: 50,
            labels: 16,
            arrows: 500,
            seed: 42,
        }
    }
}

impl TaxonomyParams {
    /// A deep-tree taxonomy: binary branching, so a 10k-class forest is
    /// ~13 levels deep and every closed ancestor row holds ~13 of 10k
    /// possible bits.
    pub fn deep(classes: usize, forests: usize, seed: u64) -> Self {
        TaxonomyParams {
            classes,
            branching: 2,
            forests,
            dag_extra_parents: 0,
            arrows: classes / 2,
            seed,
            ..TaxonomyParams::default()
        }
    }

    /// A high-fan-out taxonomy: 32 children per node, 3–4 levels deep at
    /// 10k classes — the product-catalog shape.
    pub fn bushy(classes: usize, forests: usize, seed: u64) -> Self {
        TaxonomyParams {
            classes,
            branching: 32,
            forests,
            dag_extra_parents: 0,
            arrows: classes / 2,
            seed,
            ..TaxonomyParams::default()
        }
    }

    /// A multiple-inheritance DAG: a branching-8 tree plus one extra
    /// parent for every tenth class.
    pub fn dag(classes: usize, forests: usize, seed: u64) -> Self {
        TaxonomyParams {
            classes,
            branching: 8,
            forests,
            dag_extra_parents: classes / 10,
            arrows: classes / 2,
            seed,
            ..TaxonomyParams::default()
        }
    }
}

fn class_name(forest: usize, index: usize) -> Class {
    Class::named(format!("T{forest:02}_{index:06}"))
}

fn label_name(index: usize) -> Label {
    Label::new(format!("attr{index:02}"))
}

/// The forests as contiguous index blocks: `(forest, start, len)`.
fn blocks(params: &TaxonomyParams) -> Vec<(usize, usize, usize)> {
    let classes = params.classes.max(2);
    let forests = params.forests.clamp(1, classes);
    let base = classes / forests;
    let extra = classes % forests;
    let mut out = Vec::with_capacity(forests);
    let mut start = 0;
    for forest in 0..forests {
        let len = base + usize::from(forest < extra);
        out.push((forest, start, len));
        start += len;
    }
    out
}

type SpecEdges = Vec<(Class, Class)>;
type ArrowEdges = Vec<(Class, Label, Class)>;

/// Every edge of the full taxonomy, deterministically from `params`.
/// Specializations point from child to parent; all randomness goes
/// toward *lower-index → higher-index is never generated*, so the graph
/// is acyclic by construction.
fn edges(params: &TaxonomyParams) -> (SpecEdges, ArrowEdges) {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let branching = params.branching.max(1);
    let labels = params.labels.max(1);
    let blocks = blocks(params);

    let mut specs = Vec::new();
    // Heap-shaped tree per forest: local index 0 is the root, the
    // parent of local index i >= 1 is (i - 1) / branching.
    for &(forest, _, len) in &blocks {
        for i in 1..len {
            let parent = (i - 1) / branching;
            specs.push((class_name(forest, i), class_name(forest, parent)));
        }
    }
    // DAG multiple inheritance: extra parents at strictly smaller local
    // indices in the same forest (parents sit earlier in heap order, so
    // the edge direction agrees with the tree and cycles are impossible).
    for _ in 0..params.dag_extra_parents {
        let &(forest, _, len) = &blocks[rng.random_range(0..blocks.len())];
        if len < 3 {
            continue;
        }
        let child = rng.random_range(2..len);
        let parent = rng.random_range(0..child);
        specs.push((class_name(forest, child), class_name(forest, parent)));
    }

    let mut arrows = Vec::new();
    for _ in 0..params.arrows {
        let &(forest, _, len) = &blocks[rng.random_range(0..blocks.len())];
        let src = rng.random_range(0..len);
        let tgt = rng.random_range(0..len);
        let label = label_name(rng.random_range(0..labels));
        arrows.push((class_name(forest, src), label, class_name(forest, tgt)));
    }
    (specs, arrows)
}

fn build(
    blocks: &[(usize, usize, usize)],
    specs: &[(Class, Class)],
    arrows: &[(Class, Label, Class)],
) -> WeakSchema {
    let mut builder = WeakSchema::builder();
    for &(forest, _, len) in blocks {
        for i in 0..len {
            builder = builder.class(class_name(forest, i));
        }
    }
    for (sub, sup) in specs {
        builder = builder.specialize(sub.clone(), sup.clone());
    }
    for (src, label, tgt) in arrows {
        builder = builder.arrow(src.clone(), label.clone(), tgt.clone());
    }
    builder
        .build()
        .expect("heap-ordered taxonomy edges are acyclic")
}

/// Generates the full taxonomy. Deterministic in `params.seed`.
pub fn taxonomy(params: &TaxonomyParams) -> WeakSchema {
    let (specs, arrows) = edges(params);
    build(&blocks(params), &specs, &arrows)
}

/// Generates `members` overlapping views of *one* shared taxonomy, each
/// keeping every class but a deterministic random subset of the edges
/// (~70% of specializations, ~50% of arrows). Merging the family
/// reassembles the taxonomy — the federated-curation shape where each
/// source database knows part of the hierarchy — and every member is a
/// subschema of the full [`taxonomy`], so the family is always mutually
/// compatible. Deterministic in `params.seed`.
pub fn taxonomy_family(params: &TaxonomyParams, members: usize) -> Vec<WeakSchema> {
    let (specs, arrows) = edges(params);
    let blocks = blocks(params);
    (0..members)
        .map(|member| {
            let mut rng = StdRng::seed_from_u64(params.seed ^ (member as u64).wrapping_mul(0x9e37));
            let kept_specs: Vec<_> = specs
                .iter()
                .filter(|_| rng.random_range(0..10) < 7)
                .cloned()
                .collect();
            let kept_arrows: Vec<_> = arrows
                .iter()
                .filter(|_| rng.random_range(0..10) < 5)
                .cloned()
                .collect();
            build(&blocks, &kept_specs, &kept_arrows)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_merge_core::{are_compatible, Merger};

    #[test]
    fn generation_is_deterministic() {
        let params = TaxonomyParams::default();
        assert_eq!(taxonomy(&params), taxonomy(&params));
        let reseeded = TaxonomyParams {
            seed: 7,
            ..TaxonomyParams::default()
        };
        assert_ne!(taxonomy(&params), taxonomy(&reseeded));
    }

    #[test]
    fn forests_are_disconnected_components() {
        let params = TaxonomyParams {
            classes: 400,
            forests: 5,
            ..TaxonomyParams::default()
        };
        let schema = taxonomy(&params);
        assert_eq!(schema.num_classes(), 400);
        // Neither specializations nor arrows ever cross forests.
        for (sub, sup) in schema.specialization_pairs() {
            assert_eq!(&sub.to_string()[..3], &sup.to_string()[..3]);
        }
        for (src, _, tgt) in schema.arrow_triples() {
            assert_eq!(&src.to_string()[..3], &tgt.to_string()[..3]);
        }
    }

    #[test]
    fn deep_trees_have_small_closed_rows() {
        let schema = taxonomy(&TaxonomyParams::deep(1_024, 1, 3));
        // Binary heap of 1024 nodes: 10 levels, so the closed ancestor
        // set of any class has at most 10 entries — the sparse-row shape.
        let max_ancestors = schema
            .classes()
            .map(|c| schema.strict_supers(c).len())
            .max()
            .unwrap();
        assert!(
            max_ancestors <= 10,
            "deep taxonomy closure must stay shallow, got {max_ancestors}"
        );
    }

    #[test]
    fn dag_members_merge_back_to_the_taxonomy() {
        let params = TaxonomyParams {
            classes: 240,
            forests: 3,
            dag_extra_parents: 24,
            arrows: 120,
            ..TaxonomyParams::default()
        };
        let full = taxonomy(&params);
        let family = taxonomy_family(&params, 4);
        assert!(are_compatible(family.iter()));
        for member in &family {
            assert!(member.is_subschema_of(&full));
        }
        let joined = Merger::new()
            .schemas(family.iter())
            .join()
            .unwrap()
            .into_weak();
        assert!(joined.is_subschema_of(&full));
    }
}
