//! Random weak schemas over a shared vocabulary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use schema_merge_core::{Class, Label, WeakSchema};

/// Parameters for [`random_schema`].
#[derive(Debug, Clone)]
pub struct SchemaParams {
    /// Size of the shared class vocabulary (`C000`, `C001`, …).
    pub vocabulary: usize,
    /// How many vocabulary classes this schema mentions.
    pub classes: usize,
    /// Arrow labels available (`a00`, `a01`, …).
    pub labels: usize,
    /// Arrows to generate.
    pub arrows: usize,
    /// Specialization edges to generate (directed along the vocabulary
    /// order, so every generated schema — and any collection of them — is
    /// acyclic and mutually compatible).
    pub specializations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SchemaParams {
    fn default() -> Self {
        SchemaParams {
            vocabulary: 64,
            classes: 32,
            labels: 8,
            arrows: 48,
            specializations: 16,
            seed: 42,
        }
    }
}

fn class_name(index: usize) -> Class {
    Class::named(format!("C{index:03}"))
}

fn label_name(index: usize) -> Label {
    Label::new(format!("a{index:02}"))
}

/// Generates a random weak schema. Deterministic in `params.seed`.
pub fn random_schema(params: &SchemaParams) -> WeakSchema {
    let mut rng = StdRng::seed_from_u64(params.seed);
    build_schema(params, &mut rng)
}

fn build_schema(params: &SchemaParams, rng: &mut StdRng) -> WeakSchema {
    let vocabulary = params.vocabulary.max(2);
    let class_count = params.classes.clamp(2, vocabulary);
    let labels = params.labels.max(1);

    // Choose a subset of the vocabulary.
    let mut chosen: Vec<usize> = Vec::with_capacity(class_count);
    while chosen.len() < class_count {
        let candidate = rng.random_range(0..vocabulary);
        if !chosen.contains(&candidate) {
            chosen.push(candidate);
        }
    }
    chosen.sort_unstable();

    let mut builder = WeakSchema::builder();
    for &index in &chosen {
        builder = builder.class(class_name(index));
    }
    for _ in 0..params.specializations {
        let i = rng.random_range(0..chosen.len());
        let j = rng.random_range(0..chosen.len());
        if i == j {
            continue;
        }
        // Direct along the vocabulary order: lower index specializes
        // higher index, guaranteeing global acyclicity.
        let (sub, sup) = (chosen[i.min(j)], chosen[i.max(j)]);
        builder = builder.specialize(class_name(sub), class_name(sup));
    }
    for _ in 0..params.arrows {
        let src = chosen[rng.random_range(0..chosen.len())];
        let tgt = chosen[rng.random_range(0..chosen.len())];
        let label = label_name(rng.random_range(0..labels));
        builder = builder.arrow(class_name(src), label, class_name(tgt));
    }
    builder
        .build()
        .expect("order-directed random schemas are acyclic")
}

/// Generates a family of `count` schemas over one vocabulary (so classes
/// overlap and merges are non-trivial), derived from `params.seed`.
pub fn schema_family(params: &SchemaParams, count: usize) -> Vec<WeakSchema> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    (0..count).map(|_| build_schema(params, &mut rng)).collect()
}

/// The *wide* workload: `members` small schemas over a shared
/// vocabulary — the schema-registry daemon's real traffic shape, where
/// many federated members each publish a modest schema and the merge is
/// dominated by walking all of them, not by any single input's size.
/// The label pool scales with the vocabulary so attribute names collide
/// *sometimes* (each collision seeds the `Imp` fixpoint and can demand
/// an implicit meet class) but completion never turns pathological.
/// Deterministic in `seed`.
pub fn wide_family(members: usize, seed: u64) -> Vec<WeakSchema> {
    let vocabulary = 160;
    schema_family(
        &SchemaParams {
            vocabulary,
            classes: 24,
            labels: vocabulary * 6,
            arrows: 24,
            specializations: 2,
            seed,
        },
        members,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_merge_core::{are_compatible, complete, Merger};

    fn weak_join_all(
        schemas: &[schema_merge_core::WeakSchema],
    ) -> Result<schema_merge_core::WeakSchema, schema_merge_core::MergeError> {
        Merger::new()
            .schemas(schemas.iter())
            .join()
            .map(|j| j.into_weak())
    }

    #[test]
    fn generation_is_deterministic() {
        let params = SchemaParams::default();
        assert_eq!(random_schema(&params), random_schema(&params));
        let other = SchemaParams {
            seed: 43,
            ..SchemaParams::default()
        };
        assert_ne!(random_schema(&params), random_schema(&other));
    }

    #[test]
    fn generated_schemas_validate() {
        for seed in 0..20 {
            let params = SchemaParams {
                seed,
                ..SchemaParams::default()
            };
            let schema = random_schema(&params);
            assert!(schema.validate().is_ok());
            assert!(schema.num_classes() >= 2);
        }
    }

    #[test]
    fn families_are_mutually_compatible() {
        let family = schema_family(&SchemaParams::default(), 6);
        assert_eq!(family.len(), 6);
        assert!(are_compatible(family.iter()));
        let joined = weak_join_all(&family).unwrap();
        for schema in &family {
            assert!(schema.is_subschema_of(&joined));
        }
    }

    #[test]
    fn families_share_vocabulary() {
        let family = schema_family(&SchemaParams::default(), 2);
        let shared = family[0]
            .classes()
            .filter(|c| family[1].contains_class(c))
            .count();
        assert!(
            shared > 0,
            "families must overlap to make merging interesting"
        );
    }

    #[test]
    fn generated_schemas_complete() {
        let family = schema_family(&SchemaParams::default(), 3);
        let joined = weak_join_all(&family).unwrap();
        let proper = complete(&joined).unwrap();
        assert!(proper.check_d1());
    }

    #[test]
    fn tiny_parameters_are_clamped() {
        let params = SchemaParams {
            vocabulary: 1,
            classes: 0,
            labels: 0,
            arrows: 3,
            specializations: 3,
            seed: 7,
        };
        let schema = random_schema(&params);
        assert!(schema.validate().is_ok());
    }
}
