//! Random ER schemas for the model-preservation experiments (E6).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use schema_merge_er::{Cardinality, ErSchema};

/// Parameters for [`random_er_schema`].
#[derive(Debug, Clone)]
pub struct ErParams {
    /// Entity vocabulary size (`E00`, …). Shared across a family.
    pub entities: usize,
    /// Domain vocabulary size (`d0`, …).
    pub domains: usize,
    /// Attributes to scatter over entities.
    pub attributes: usize,
    /// Binary relationships to generate.
    pub relationships: usize,
    /// Entity isa edges (directed along the vocabulary order).
    pub isa: usize,
    /// Probability (percent) that a relationship role is cardinality 1.
    pub one_role_percent: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ErParams {
    fn default() -> Self {
        ErParams {
            entities: 12,
            domains: 5,
            attributes: 20,
            relationships: 6,
            isa: 4,
            one_role_percent: 30,
            seed: 42,
        }
    }
}

/// Generates a valid random ER schema, deterministic in `params.seed`.
pub fn random_er_schema(params: &ErParams) -> ErSchema {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let entities = params.entities.max(2);
    let domains = params.domains.max(1);
    let entity = |i: usize| format!("E{i:02}");
    let domain = |i: usize| format!("d{i}");

    let mut builder = ErSchema::builder();
    for i in 0..entities {
        builder = builder.entity(entity(i));
    }
    for i in 0..domains {
        builder = builder.domain(domain(i));
    }
    for k in 0..params.attributes {
        let owner = entity(rng.random_range(0..entities));
        let dom = domain(rng.random_range(0..domains));
        builder = builder.attribute(owner, format!("attr{k:02}"), dom);
    }
    for i in 0..params.isa {
        let a = rng.random_range(0..entities);
        let b = rng.random_range(0..entities);
        if a == b {
            continue;
        }
        let _ = i;
        builder = builder.entity_isa(entity(a.min(b)), entity(a.max(b)));
    }
    for r in 0..params.relationships {
        let name = format!("R{r:02}");
        let left = entity(rng.random_range(0..entities));
        let right = entity(rng.random_range(0..entities));
        builder = builder.relationship(
            name.clone(),
            [("lhs", left.as_str()), ("rhs", right.as_str())],
        );
        for role in ["lhs", "rhs"] {
            if rng.random_range(0..100) < params.one_role_percent {
                builder = builder.cardinality(name.clone(), role, Cardinality::One);
            }
        }
    }
    builder.build().expect("generated ER schemas are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_merge_er::{merge_er, preserves_strata};

    #[test]
    fn generation_is_deterministic_and_valid() {
        let params = ErParams::default();
        let a = random_er_schema(&params);
        let b = random_er_schema(&params);
        assert_eq!(a, b);
        assert!(a.validate().is_ok());
        let (_, entities, relationships) = a.counts();
        assert!(entities >= 2);
        assert!(relationships <= params.relationships);
    }

    #[test]
    fn random_er_merges_preserve_strata() {
        // E6: translate → merge → translate back stays in-model.
        for seed in 0..10u64 {
            let g1 = random_er_schema(&ErParams {
                seed,
                ..ErParams::default()
            });
            let g2 = random_er_schema(&ErParams {
                seed: seed + 1000,
                ..ErParams::default()
            });
            let outcome = merge_er([&g1, &g2]).expect("same-vocabulary ER schemas merge");
            assert!(preserves_strata(&outcome), "seed {seed}");
            assert!(outcome.er.validate().is_ok());
        }
    }

    #[test]
    fn merged_keys_are_valid() {
        let g1 = random_er_schema(&ErParams::default());
        let g2 = random_er_schema(&ErParams {
            seed: 7,
            ..ErParams::default()
        });
        let outcome = merge_er([&g1, &g2]).unwrap();
        assert!(outcome.keys.validate(outcome.core.proper.as_weak()).is_ok());
    }
}
