//! # schema-merge-workload
//!
//! Seeded synthetic workloads for the schema-merging benchmarks:
//!
//! * [`random_schema`] / [`schema_family`] — random weak schemas over a
//!   shared vocabulary, with tunable size and edge densities, always
//!   acyclic (and hence always mutually compatible);
//! * [`wide_family`] — many small member schemas over one vocabulary:
//!   the registry daemon's traffic shape, and the headline workload of
//!   the parallel merge engine;
//! * [`pathological_nfa`] — the worst-case family for completion: the
//!   `Imp` fixpoint is an NFA subset construction, so a hard NFA drives
//!   the implicit-class count exponential. This answers §7's open
//!   question 3 ("it may be possible to construct pathological examples
//!   in which the number of implicit classes is very large") in the
//!   affirmative, quantitatively;
//! * [`random_er_schema`] — random Entity–Relationship schemas for the
//!   model-preservation experiments;
//! * [`fn@taxonomy`] / [`taxonomy_family`] — 10k–100k-class taxonomy
//!   forests (deep trees, high fan-out, DAG multiple inheritance): the
//!   headline workload for the adaptive sparse row representation and
//!   the partitioned merge engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflicts;
pub mod er_gen;
pub mod pathological;
pub mod random;
pub mod taxonomy;

pub use conflicts::{conflicting_er_pair, reified_vs_direct_pair};
pub use er_gen::{random_er_schema, ErParams};
pub use pathological::{expected_pathological_implicit_classes, pathological_nfa};
pub use random::{random_schema, schema_family, wide_family, SchemaParams};
pub use taxonomy::{taxonomy, taxonomy_family, TaxonomyParams};
