//! Errors for the relational substrate.

use std::fmt;

use schema_merge_core::{Class, Label, MergeError, Name, SchemaError};

/// Errors raised by relational schema construction, translation and
/// merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A name is used both as a relation and as a domain.
    NameClash(Name),
    /// A referenced name was never declared.
    Undeclared(Name),
    /// A declared key uses a label that is not a column.
    KeyOutsideColumns {
        /// The relation.
        relation: Name,
        /// The non-column label.
        column: Label,
    },
    /// The schema (or a schema read back from the graph model) violates
    /// first normal form.
    NotFirstNormalForm {
        /// The offending relation or class.
        relation: Name,
        /// Human-readable explanation.
        detail: String,
    },
    /// A graph-model class could not be mapped back into the two strata.
    NotStratified {
        /// The class at fault.
        class: Class,
        /// Human-readable explanation.
        reason: String,
    },
    /// The underlying graph merge failed.
    Merge(MergeError),
    /// The underlying schema operation failed.
    Schema(SchemaError),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::NameClash(name) => {
                write!(f, "{name} is used both as a relation and as a domain")
            }
            RelError::Undeclared(name) => write!(f, "{name} is referenced but never declared"),
            RelError::KeyOutsideColumns { relation, column } => {
                write!(f, "key on {relation} uses {column}, which is not a column")
            }
            RelError::NotFirstNormalForm { relation, detail } => {
                write!(f, "{relation} violates first normal form: {detail}")
            }
            RelError::NotStratified { class, reason } => {
                write!(
                    f,
                    "class {class} violates relational stratification: {reason}"
                )
            }
            RelError::Merge(err) => write!(f, "merge failed: {err}"),
            RelError::Schema(err) => write!(f, "schema error: {err}"),
        }
    }
}

impl std::error::Error for RelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RelError::Merge(err) => Some(err),
            RelError::Schema(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MergeError> for RelError {
    fn from(err: MergeError) -> Self {
        RelError::Merge(err)
    }
}

impl From<SchemaError> for RelError {
    fn from(err: SchemaError) -> Self {
        RelError::Schema(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            RelError::NameClash(Name::new("X")).to_string(),
            "X is used both as a relation and as a domain"
        );
        let err: RelError = SchemaError::UnknownClass(Class::named("Y")).into();
        assert!(std::error::Error::source(&err).is_some());
    }
}
