//! First-normal-form relational schemas (§2).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use schema_merge_core::{KeySet, Label, Name, SuperkeyFamily};

use crate::RelError;

/// A relation: named columns over domains, with declared keys.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    /// Column name ↦ domain.
    pub columns: BTreeMap<Label, Name>,
    /// Declared keys (upward closed via the family representation).
    pub keys: SuperkeyFamily,
}

impl Relation {
    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// A relational schema: relations plus the domains their columns use.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelSchema {
    pub(crate) relations: BTreeMap<Name, Relation>,
    pub(crate) domains: BTreeSet<Name>,
    /// Domain refinement pairs (sub, sup), produced only by merges whose
    /// column types conflicted (implicit intersection domains).
    pub(crate) domain_refines: BTreeSet<(Name, Name)>,
}

impl RelSchema {
    /// Starts building a schema.
    pub fn builder() -> RelSchemaBuilder {
        RelSchemaBuilder::default()
    }

    /// The relations, sorted by name.
    pub fn relations(&self) -> impl Iterator<Item = (&Name, &Relation)> {
        self.relations.iter()
    }

    /// A relation by name.
    pub fn relation(&self, name: &Name) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// The domains, sorted.
    pub fn domains(&self) -> impl Iterator<Item = &Name> {
        self.domains.iter()
    }

    /// Domain refinement pairs `(sub, sup)`.
    pub fn domain_refinements(&self) -> impl Iterator<Item = &(Name, Name)> {
        self.domain_refines.iter()
    }

    /// A copy with each relation's key family replaced by the family the
    /// assignment gives its class (used to graft a §5 minimal
    /// satisfactory assignment onto a translated schema).
    pub fn with_key_assignment(&self, keys: &schema_merge_core::KeyAssignment) -> RelSchema {
        let mut out = self.clone();
        for (name, relation) in &mut out.relations {
            let class = schema_merge_core::Class::named(name.clone());
            relation.keys = keys.family(&class);
        }
        out
    }

    /// (relations, domains) counts.
    pub fn counts(&self) -> (usize, usize) {
        (self.relations.len(), self.domains.len())
    }

    /// Validates first normal form: relation and domain names are
    /// disjoint, columns target declared domains, keys use only column
    /// labels, refinements connect domains.
    pub fn validate(&self) -> Result<(), RelError> {
        for name in self.relations.keys() {
            if self.domains.contains(name) {
                return Err(RelError::NameClash(name.clone()));
            }
        }
        for (name, relation) in &self.relations {
            for domain in relation.columns.values() {
                if self.relations.contains_key(domain) {
                    return Err(RelError::NotFirstNormalForm {
                        relation: name.clone(),
                        detail: format!("column domain {domain} is itself a relation"),
                    });
                }
                if !self.domains.contains(domain) {
                    return Err(RelError::Undeclared(domain.clone()));
                }
            }
            for key in relation.keys.minimal_keys() {
                for label in key.labels() {
                    if !relation.columns.contains_key(label) {
                        return Err(RelError::KeyOutsideColumns {
                            relation: name.clone(),
                            column: label.clone(),
                        });
                    }
                }
            }
        }
        for (sub, sup) in &self.domain_refines {
            for name in [sub, sup] {
                if !self.domains.contains(name) {
                    return Err(RelError::Undeclared(name.clone()));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for RelSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, relation) in &self.relations {
            write!(f, "{name}(")?;
            for (i, (column, domain)) in relation.columns.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{column}: {domain}")?;
            }
            write!(f, ")")?;
            if !relation.keys.is_none() {
                write!(f, " keys {}", relation.keys)?;
            }
            writeln!(f)?;
        }
        for (sub, sup) in &self.domain_refines {
            writeln!(f, "domain {sub} refines {sup}")?;
        }
        Ok(())
    }
}

/// Builder for [`RelSchema`].
#[derive(Debug, Clone, Default)]
pub struct RelSchemaBuilder {
    schema: RelSchema,
}

impl RelSchemaBuilder {
    /// Declares a domain.
    pub fn domain(mut self, name: impl Into<Name>) -> Self {
        self.schema.domains.insert(name.into());
        self
    }

    /// Declares an empty relation.
    pub fn relation(mut self, name: impl Into<Name>) -> Self {
        self.schema.relations.entry(name.into()).or_default();
        self
    }

    /// Adds a column (auto-declaring its domain).
    pub fn column(
        mut self,
        relation: impl Into<Name>,
        column: impl Into<Label>,
        domain: impl Into<Name>,
    ) -> Self {
        let domain = domain.into();
        self.schema.domains.insert(domain.clone());
        self.schema
            .relations
            .entry(relation.into())
            .or_default()
            .columns
            .insert(column.into(), domain);
        self
    }

    /// Declares a key on a relation.
    pub fn key(mut self, relation: impl Into<Name>, key: impl Into<KeySet>) -> Self {
        self.schema
            .relations
            .entry(relation.into())
            .or_default()
            .keys
            .insert_key(key.into());
        self
    }

    /// Records a domain refinement (merge results only).
    pub fn domain_refines(mut self, sub: impl Into<Name>, sup: impl Into<Name>) -> Self {
        self.schema.domain_refines.insert((sub.into(), sup.into()));
        self
    }

    /// Validates and returns the schema.
    pub fn build(self) -> Result<RelSchema, RelError> {
        self.schema.validate()?;
        Ok(self.schema)
    }
}

/// The `Person(SS#, Name, Address)` example of §5, with its two keys.
pub fn section_5_person() -> RelSchema {
    RelSchema::builder()
        .column("Person", "SS#", "int")
        .column("Person", "Name", "text")
        .column("Person", "Address", "text")
        .key("Person", KeySet::new(["SS#"]))
        .key("Person", KeySet::new(["Name", "Address"]))
        .build()
        .expect("section 5 example is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_example() {
        let schema = section_5_person();
        let person = schema.relation(&Name::new("Person")).unwrap();
        assert_eq!(person.arity(), 3);
        assert_eq!(person.keys.num_keys(), 2);
        assert!(person.keys.is_superkey(&KeySet::new(["SS#", "Name"])));
        assert!(!person.keys.is_superkey(&KeySet::new(["Name"])));
    }

    #[test]
    fn name_clash_rejected() {
        let err = RelSchema::builder()
            .domain("Person")
            .relation("Person")
            .build()
            .unwrap_err();
        assert!(matches!(err, RelError::NameClash(_)));
    }

    #[test]
    fn column_domain_must_not_be_relation() {
        // Constructed directly: the builder auto-declares column domains,
        // which turns this mistake into a NameClash instead.
        let mut schema = RelSchema::default();
        schema.relations.entry(Name::new("Orders")).or_default();
        schema
            .relations
            .entry(Name::new("Person"))
            .or_default()
            .columns
            .insert(Label::new("orders"), Name::new("Orders"));
        let err = schema.validate().unwrap_err();
        assert!(matches!(err, RelError::NotFirstNormalForm { .. }));
    }

    #[test]
    fn key_must_use_columns() {
        let err = RelSchema::builder()
            .column("R", "a", "int")
            .key("R", KeySet::new(["nope"]))
            .build()
            .unwrap_err();
        assert!(matches!(err, RelError::KeyOutsideColumns { .. }));
    }

    #[test]
    fn refinement_endpoints_must_be_domains() {
        let err = RelSchema::builder()
            .domain("int")
            .domain_refines("ghost", "int")
            .build()
            .unwrap_err();
        assert!(matches!(err, RelError::Undeclared(_)));
    }

    #[test]
    fn display_lists_relations() {
        let text = section_5_person().to_string();
        assert!(text.contains("Person(Address: text, Name: text, SS#: int)"));
        assert!(text.contains("keys"));
    }
}
