//! SQL DDL generation — the deployment path for merged relational
//! schemas.
//!
//! The paper positions the relational model as one of the targets its
//! framework subsumes (§2); a schema-integration tool's output in that
//! model *is* a set of `CREATE TABLE` statements. This module renders a
//! [`RelSchema`] as portable SQL:
//!
//! * one `CREATE TABLE` per relation, columns in sorted order;
//! * the first declared key becomes the `PRIMARY KEY`, every further
//!   key a `UNIQUE` constraint — the §5 multi-key case (Fig. 10's
//!   `Transaction` with `{loc,at}` and `{card,at}`) maps exactly;
//! * domains become SQL types via a caller-extensible [`TypeMap`]
//!   (unknown domains render as `TEXT` plus a comment naming the
//!   domain, so no information is silently dropped);
//! * merge-produced intersection domains (`{int,text}`) and domain
//!   refinements are emitted as comments — they are cross-schema facts
//!   SQL has no syntax for, and the §4.2 origin names must survive for
//!   later re-integration.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use schema_merge_core::Name;

use crate::model::RelSchema;

/// Maps attribute domains to SQL type names.
#[derive(Debug, Clone)]
pub struct TypeMap {
    map: BTreeMap<Name, String>,
    fallback: String,
}

impl Default for TypeMap {
    /// The conventional mapping: `int`/`integer` → `INTEGER`,
    /// `string`/`text` → `TEXT`, `real`/`float` → `REAL`,
    /// `date` → `DATE`, `bool`/`boolean` → `BOOLEAN`; everything else
    /// falls back to `TEXT`.
    fn default() -> Self {
        let mut map = BTreeMap::new();
        for (domain, ty) in [
            ("int", "INTEGER"),
            ("integer", "INTEGER"),
            ("string", "TEXT"),
            ("text", "TEXT"),
            ("real", "REAL"),
            ("float", "REAL"),
            ("date", "DATE"),
            ("bool", "BOOLEAN"),
            ("boolean", "BOOLEAN"),
        ] {
            map.insert(Name::new(domain), ty.to_string());
        }
        TypeMap {
            map,
            fallback: "TEXT".to_string(),
        }
    }
}

impl TypeMap {
    /// An empty map with the given fallback type.
    pub fn with_fallback(fallback: impl Into<String>) -> Self {
        TypeMap {
            map: BTreeMap::new(),
            fallback: fallback.into(),
        }
    }

    /// Adds or overrides a domain → SQL type entry.
    pub fn map(mut self, domain: impl Into<Name>, sql_type: impl Into<String>) -> Self {
        self.map.insert(domain.into(), sql_type.into());
        self
    }

    /// The SQL type for a domain, and whether it was an explicit entry.
    pub fn lookup(&self, domain: &Name) -> (&str, bool) {
        match self.map.get(domain) {
            Some(ty) => (ty, true),
            None => (&self.fallback, false),
        }
    }
}

/// Quotes an identifier for SQL (double quotes, doubling embedded
/// quotes). Merge-produced names like `{int,text}` or `Guide-dog` are
/// not bare-identifier-safe, so everything is quoted uniformly.
fn quote(name: &str) -> String {
    format!("\"{}\"", name.replace('"', "\"\""))
}

/// Renders the schema as SQL DDL.
pub fn to_sql(schema: &RelSchema, types: &TypeMap) -> String {
    let mut out = String::new();
    for (sub, sup) in schema.domain_refinements() {
        let _ = writeln!(out, "-- domain refinement: {sub} refines {sup}");
    }
    for (name, relation) in schema.relations() {
        let _ = writeln!(out, "CREATE TABLE {} (", quote(name.as_str()));
        let mut lines: Vec<String> = Vec::new();
        for (column, domain) in &relation.columns {
            let (sql_type, known) = types.lookup(domain);
            let comment = if known {
                String::new()
            } else {
                format!(" -- domain: {domain}")
            };
            lines.push(format!(
                "  {} {sql_type}{}",
                quote(column.as_str()),
                if comment.is_empty() {
                    String::new()
                } else {
                    comment
                }
            ));
        }
        let mut keys = relation.keys.minimal_keys().collect::<Vec<_>>();
        keys.sort_by_key(|key| {
            (
                key.len(),
                key.labels().map(|l| l.to_string()).collect::<Vec<_>>(),
            )
        });
        for (i, key) in keys.iter().enumerate() {
            if key.is_empty() {
                continue;
            }
            let columns: Vec<String> = key.labels().map(|label| quote(label.as_str())).collect();
            let constraint = if i == 0 { "PRIMARY KEY" } else { "UNIQUE" };
            lines.push(format!("  {constraint} ({})", columns.join(", ")));
        }
        // Comments must not swallow the separating comma, so commas go
        // before any trailing comment.
        let rendered: Vec<String> = lines
            .iter()
            .enumerate()
            .map(|(i, line)| {
                let comma = if i + 1 < lines.len() { "," } else { "" };
                match line.find(" --") {
                    Some(pos) => format!("{}{comma}{}", &line[..pos], &line[pos..]),
                    None => format!("{line}{comma}"),
                }
            })
            .collect();
        for line in rendered {
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, ");");
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_relational;
    use crate::model::{section_5_person, RelSchema};

    #[test]
    fn person_table_renders_with_both_keys() {
        let sql = to_sql(&section_5_person(), &TypeMap::default());
        assert!(sql.contains("CREATE TABLE \"Person\""), "{sql}");
        assert!(sql.contains("PRIMARY KEY (\"SS#\")"), "{sql}");
        assert!(sql.contains("UNIQUE (\"Address\", \"Name\")"), "{sql}");
    }

    #[test]
    fn known_domains_map_to_types() {
        let schema = RelSchema::builder()
            .relation("Dog")
            .column("Dog", "age", "int")
            .column("Dog", "name", "string")
            .build()
            .expect("valid");
        let sql = to_sql(&schema, &TypeMap::default());
        assert!(sql.contains("\"age\" INTEGER"), "{sql}");
        assert!(sql.contains("\"name\" TEXT"), "{sql}");
        assert!(!sql.contains("-- domain"), "all domains known: {sql}");
    }

    #[test]
    fn unknown_domains_fall_back_with_a_comment() {
        let schema = RelSchema::builder()
            .relation("Dog")
            .column("Dog", "kind", "breed")
            .build()
            .expect("valid");
        let sql = to_sql(&schema, &TypeMap::default());
        assert!(sql.contains("\"kind\" TEXT -- domain: breed"), "{sql}");
    }

    #[test]
    fn custom_type_map_overrides() {
        let types = TypeMap::with_fallback("BLOB").map("breed", "VARCHAR(32)");
        let schema = RelSchema::builder()
            .relation("Dog")
            .column("Dog", "kind", "breed")
            .column("Dog", "photo", "image")
            .build()
            .expect("valid");
        let sql = to_sql(&schema, &types);
        assert!(sql.contains("\"kind\" VARCHAR(32)"), "{sql}");
        assert!(sql.contains("\"photo\" BLOB -- domain: image"), "{sql}");
    }

    #[test]
    fn merged_schemas_emit_intersection_domains_as_comments() {
        // A column-type conflict produces an implicit intersection
        // domain; DDL keeps its origin name visible.
        let g1 = RelSchema::builder()
            .relation("Person")
            .column("Person", "id", "int")
            .build()
            .expect("valid");
        let g2 = RelSchema::builder()
            .relation("Person")
            .column("Person", "id", "text")
            .build()
            .expect("valid");
        let merged = merge_relational([&g1, &g2]).expect("merges");
        let sql = to_sql(&merged.schema, &TypeMap::default());
        assert!(sql.contains("{int,text}"), "{sql}");
        assert!(sql.contains("domain refinement"), "{sql}");
    }

    #[test]
    fn quoting_escapes_embedded_quotes() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("we\"ird"), "\"we\"\"ird\"");
    }

    #[test]
    fn keyless_relations_emit_no_constraints() {
        let schema = RelSchema::builder()
            .relation("Log")
            .column("Log", "line", "text")
            .build()
            .expect("valid");
        let sql = to_sql(&schema, &TypeMap::default());
        assert!(!sql.contains("PRIMARY KEY"), "{sql}");
        assert!(!sql.contains("UNIQUE"), "{sql}");
        assert!(sql.contains("\"line\" TEXT\n"), "no trailing comma: {sql}");
    }

    #[test]
    fn statements_are_parseable_shape() {
        // Structural smoke test: each table ends with `);` and columns
        // are comma-separated (all but the last line).
        let sql = to_sql(&section_5_person(), &TypeMap::default());
        let body: Vec<&str> = sql
            .lines()
            .skip_while(|l| !l.starts_with("CREATE"))
            .skip(1)
            .take_while(|l| *l != ");")
            .collect();
        for line in &body[..body.len() - 1] {
            let content = line.split(" --").next().unwrap_or(line);
            assert!(
                content.trim_end().ends_with(','),
                "line `{line}` misses comma"
            );
        }
        assert!(!body.last().unwrap().trim_end().ends_with(','));
    }
}
