//! # schema-merge-relational
//!
//! The relational front-end to the schema-merging calculus of Buneman,
//! Davidson & Kosky (EDBT 1992).
//!
//! §2: "For a relational instance, we stratify `N` into two classes `NR`
//! and `NA` (relations and attribute domains), disallow specialization
//! edges, and restrict arrows to run labelled with the name of the
//! attribute from `NR` to `NA` (first normal form)." Merging happens in
//! the graph model and translates back; column-type conflicts surface as
//! implicit *intersection domains* (`{int,text}`), the one place the
//! merged schema needs domain refinement edges.
//!
//! Key constraints (§5) attach to relations as superkey families and are
//! merged into the unique minimal satisfactory assignment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ddl;
pub mod error;
pub mod merge;
pub mod model;
pub mod translate;

pub use ddl::{to_sql, TypeMap};
pub use error::RelError;
pub use merge::{merge_relational, RelMergeOutcome};
pub use model::{RelSchema, RelSchemaBuilder, Relation};
pub use translate::{from_core, to_core, RelStrata, RelStratum};
