//! Translation between 1NF relational schemas and the graph model (§2).

use std::collections::BTreeMap;

use schema_merge_core::{Class, Name, WeakSchema};

use crate::model::RelSchema;
use crate::RelError;

/// The two relational strata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RelStratum {
    /// `NR`: relation classes.
    Relation,
    /// `NA`: attribute-domain classes.
    Domain,
}

impl std::fmt::Display for RelStratum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelStratum::Relation => write!(f, "relation"),
            RelStratum::Domain => write!(f, "domain"),
        }
    }
}

/// Strata assignment for named classes.
pub type RelStrata = BTreeMap<Name, RelStratum>;

/// ER-style origin syntax (`{a,b}`) in names is recognized so implicit
/// domains survive a round-trip through the relational model.
fn class_of(name: &Name) -> Class {
    Class::from_origin_syntax(name.as_str())
}

/// Translates a relational schema into the graph model: relations and
/// domains become classes, columns become arrows. Declared domain
/// refinements (from earlier merges) become specializations.
pub fn to_core(schema: &RelSchema) -> (WeakSchema, RelStrata) {
    let mut builder = WeakSchema::builder();
    let mut strata = RelStrata::new();
    for domain in schema.domains() {
        builder = builder.class(class_of(domain));
        strata.insert(domain.clone(), RelStratum::Domain);
    }
    for (name, relation) in schema.relations() {
        builder = builder.class(class_of(name));
        strata.insert(name.clone(), RelStratum::Relation);
        for (column, domain) in &relation.columns {
            builder = builder.arrow(class_of(name), column.clone(), class_of(domain));
        }
    }
    for (sub, sup) in schema.domain_refinements() {
        builder = builder.specialize(class_of(sub), class_of(sup));
    }
    let schema = builder
        .build()
        .expect("domain refinements are acyclic by construction");
    (schema, strata)
}

/// The stratum of a class, with implicit classes inheriting the unanimous
/// stratum of their origins.
pub fn class_stratum(class: &Class, strata: &RelStrata) -> Result<RelStratum, RelError> {
    match class {
        Class::Named(name) => strata
            .get(name)
            .copied()
            .ok_or_else(|| RelError::Undeclared(name.clone())),
        Class::Implicit(origin) | Class::ImplicitUnion(origin) => {
            let mut found: Option<RelStratum> = None;
            for name in origin.iter() {
                let s = strata
                    .get(name)
                    .copied()
                    .ok_or_else(|| RelError::Undeclared(name.clone()))?;
                match found {
                    None => found = Some(s),
                    Some(prev) if prev == s => {}
                    Some(prev) => {
                        return Err(RelError::NotStratified {
                            class: class.clone(),
                            reason: format!("origin {name} is a {s}, earlier origin a {prev}"),
                        })
                    }
                }
            }
            found.ok_or_else(|| RelError::NotStratified {
                class: class.clone(),
                reason: "empty origin".into(),
            })
        }
    }
}

fn class_name(class: &Class) -> Name {
    match class {
        Class::Named(name) => name.clone(),
        other => Name::new(other.to_string()),
    }
}

/// Translates a graph schema back into the relational model, enforcing
/// first normal form:
///
/// * arrows run from relations to domains only,
/// * relations never specialize one another (implicit *domains* may —
///   that is how conflicting column types are reported),
/// * for each `(relation, column)` the canonical (most specific) domain
///   is taken as the column type.
pub fn from_core(schema: &WeakSchema, strata: &RelStrata) -> Result<RelSchema, RelError> {
    let mut builder = RelSchema::builder();
    let mut stratum_of: BTreeMap<Class, RelStratum> = BTreeMap::new();
    for class in schema.classes() {
        let stratum = class_stratum(class, strata)?;
        stratum_of.insert(class.clone(), stratum);
        builder = match stratum {
            RelStratum::Domain => builder.domain(class_name(class)),
            RelStratum::Relation => builder.relation(class_name(class)),
        };
    }

    for (src, label, tgt) in schema.arrow_triples() {
        match (stratum_of[src], stratum_of[tgt]) {
            (RelStratum::Relation, RelStratum::Domain) => {}
            (from, to) => {
                return Err(RelError::NotStratified {
                    class: src.clone(),
                    reason: format!("arrow {src} --{label}--> {tgt} runs from a {from} to a {to}"),
                })
            }
        }
        // Keep only the canonical (minimal) domain as the column type.
        let tighter = schema
            .arrow_targets(src, label)
            .iter()
            .any(|other| other != tgt && schema.specializes(other, tgt));
        if !tighter {
            builder = builder.column(class_name(src), label.clone(), class_name(tgt));
        }
    }

    for (sub, sup) in schema.specialization_pairs() {
        match (stratum_of[sub], stratum_of[sup]) {
            (RelStratum::Domain, RelStratum::Domain) => {
                let reduced = schema
                    .strict_supers(sub)
                    .iter()
                    .any(|mid| mid != sup && schema.specializes(mid, sup));
                if !reduced {
                    builder = builder.domain_refines(class_name(sub), class_name(sup));
                }
            }
            _ => {
                return Err(RelError::NotFirstNormalForm {
                    relation: class_name(sub),
                    detail: format!("specialization {sub} => {sup} between non-domains"),
                })
            }
        }
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::section_5_person;
    use schema_merge_core::Label;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    #[test]
    fn person_translates_and_round_trips() {
        let rel = section_5_person();
        let (graph, strata) = to_core(&rel);
        assert!(graph.has_arrow(&c("Person"), &Label::new("SS#"), &c("int")));
        assert_eq!(strata[&Name::new("Person")], RelStratum::Relation);
        assert_eq!(strata[&Name::new("text")], RelStratum::Domain);

        let back = from_core(&graph, &strata).unwrap();
        // Keys travel separately (as SuperkeyFamily); columns round-trip.
        let person = back.relation(&Name::new("Person")).unwrap();
        assert_eq!(
            person.columns,
            rel.relation(&Name::new("Person")).unwrap().columns
        );
    }

    #[test]
    fn relation_specialization_is_rejected() {
        let graph = WeakSchema::builder().specialize("R", "S").build().unwrap();
        let mut strata = RelStrata::new();
        strata.insert(Name::new("R"), RelStratum::Relation);
        strata.insert(Name::new("S"), RelStratum::Relation);
        let err = from_core(&graph, &strata).unwrap_err();
        assert!(matches!(err, RelError::NotFirstNormalForm { .. }));
    }

    #[test]
    fn domain_to_domain_arrow_is_rejected() {
        let graph = WeakSchema::builder()
            .arrow("int", "x", "text")
            .build()
            .unwrap();
        let mut strata = RelStrata::new();
        strata.insert(Name::new("int"), RelStratum::Domain);
        strata.insert(Name::new("text"), RelStratum::Domain);
        let err = from_core(&graph, &strata).unwrap_err();
        assert!(matches!(err, RelError::NotStratified { .. }));
    }

    #[test]
    fn implicit_domain_becomes_refinement() {
        let x = Class::implicit([c("int"), c("text")]);
        let graph = WeakSchema::builder()
            .specialize(x.clone(), "int")
            .specialize(x.clone(), "text")
            .arrow("R", "col", x.clone())
            .arrow("R", "col", "int")
            .arrow("R", "col", "text")
            .build()
            .unwrap();
        let mut strata = RelStrata::new();
        strata.insert(Name::new("int"), RelStratum::Domain);
        strata.insert(Name::new("text"), RelStratum::Domain);
        strata.insert(Name::new("R"), RelStratum::Relation);
        let back = from_core(&graph, &strata).unwrap();
        let merged = Name::new("{int,text}");
        assert!(back.domains().any(|d| d == &merged));
        // Column takes the canonical (implicit) domain.
        assert_eq!(
            back.relation(&Name::new("R")).unwrap().columns[&Label::new("col")],
            merged
        );
        assert!(back
            .domain_refinements()
            .any(|(sub, sup)| sub == &merged && sup.as_str() == "int"));
    }

    #[test]
    fn unknown_names_are_reported() {
        let graph = WeakSchema::builder().class("Ghost").build().unwrap();
        assert!(matches!(
            from_core(&graph, &RelStrata::new()),
            Err(RelError::Undeclared(_))
        ));
    }
}
