//! Merging relational schemas through the graph model.

use std::collections::BTreeMap;

use schema_merge_core::{Class, KeyAssignment, MergeOutcome, Merger, Name, SuperkeyFamily};

use crate::model::RelSchema;
use crate::translate::{from_core, to_core, RelStrata, RelStratum};
use crate::RelError;

/// The result of a relational merge.
#[derive(Debug, Clone)]
pub struct RelMergeOutcome {
    /// The merged schema, back in the relational model. Key families are
    /// filled in from the minimal satisfactory assignment.
    pub schema: RelSchema,
    /// The underlying graph-model outcome.
    pub core: MergeOutcome,
    /// The combined strata.
    pub strata: RelStrata,
    /// The minimal satisfactory key assignment (§5).
    pub keys: KeyAssignment,
}

/// Merges relational schemas: union the strata (with clash detection),
/// merge in the graph model, combine declared keys into the minimal
/// satisfactory assignment, and translate back.
pub fn merge_relational<'a>(
    schemas: impl IntoIterator<Item = &'a RelSchema>,
) -> Result<RelMergeOutcome, RelError> {
    let inputs: Vec<&RelSchema> = schemas.into_iter().collect();

    let mut strata: RelStrata = BTreeMap::new();
    for input in &inputs {
        let (_, s) = to_core(input);
        for (name, stratum) in s {
            match strata.get(&name) {
                None => {
                    strata.insert(name, stratum);
                }
                Some(&existing) if existing == stratum => {}
                Some(_) => return Err(RelError::NameClash(name)),
            }
        }
    }

    let translated: Vec<_> = inputs.iter().map(|s| to_core(s).0).collect();
    let core = Merger::new()
        .schemas(translated.iter())
        .execute()?
        .into_outcome();

    let mut contributions: Vec<(Class, SuperkeyFamily)> = Vec::new();
    for input in &inputs {
        for (name, relation) in input.relations() {
            if !relation.keys.is_none() {
                contributions.push((Class::Named(name.clone()), relation.keys.clone()));
            }
        }
    }
    let keys = KeyAssignment::minimal_satisfactory(
        core.proper.as_weak(),
        contributions.iter().map(|(c, f)| (c, f)),
    );

    let mut schema = from_core(core.proper.as_weak(), &strata)?;
    // Attach the merged key families to the relations.
    for (name, relation) in schema.relations.iter_mut() {
        relation.keys = keys.family(&Class::Named(name.clone()));
    }

    Ok(RelMergeOutcome {
        schema,
        core,
        strata,
        keys,
    })
}

/// Executable strata-preservation check (§7) for relational merges.
pub fn preserves_strata(outcome: &RelMergeOutcome) -> bool {
    outcome
        .core
        .proper
        .classes()
        .all(|class| crate::translate::class_stratum(class, &outcome.strata).is_ok())
}

/// The stratum of a merged name, if known.
pub fn merged_stratum(outcome: &RelMergeOutcome, name: &Name) -> Option<RelStratum> {
    outcome.strata.get(name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::section_5_person;
    use schema_merge_core::{KeySet, Label};

    fn ks(labels: &[&str]) -> KeySet {
        KeySet::new(labels.iter().copied())
    }

    #[test]
    fn self_merge_preserves_schema() {
        let rel = section_5_person();
        let outcome = merge_relational([&rel, &rel]).unwrap();
        assert_eq!(outcome.schema, rel);
        assert!(preserves_strata(&outcome));
    }

    #[test]
    fn columns_union_across_schemas() {
        let g1 = RelSchema::builder()
            .column("Emp", "id", "int")
            .column("Emp", "name", "text")
            .build()
            .unwrap();
        let g2 = RelSchema::builder()
            .column("Emp", "salary", "int")
            .column("Dept", "name", "text")
            .build()
            .unwrap();
        let outcome = merge_relational([&g1, &g2]).unwrap();
        let emp = outcome.schema.relation(&Name::new("Emp")).unwrap();
        assert_eq!(emp.arity(), 3);
        assert!(outcome.schema.relation(&Name::new("Dept")).is_some());
    }

    #[test]
    fn conflicting_column_types_make_intersection_domain() {
        let g1 = RelSchema::builder()
            .column("R", "x", "int")
            .build()
            .unwrap();
        let g2 = RelSchema::builder()
            .column("R", "x", "text")
            .build()
            .unwrap();
        let outcome = merge_relational([&g1, &g2]).unwrap();
        let merged = Name::new("{int,text}");
        assert_eq!(
            outcome.schema.relation(&Name::new("R")).unwrap().columns[&Label::new("x")],
            merged
        );
        assert!(outcome
            .schema
            .domain_refinements()
            .any(|(sub, _)| sub == &merged));
        assert_eq!(outcome.core.report.num_implicit(), 1);
    }

    #[test]
    fn key_merge_is_minimal_satisfactory() {
        // §5 end: one schema declares {SS#} a key, the other has the
        // column but no key. The merged relation carries the key.
        let with_key = section_5_person();
        let without = RelSchema::builder()
            .column("Person", "SS#", "int")
            .column("Person", "Phone", "text")
            .build()
            .unwrap();
        let outcome = merge_relational([&with_key, &without]).unwrap();
        let person = outcome.schema.relation(&Name::new("Person")).unwrap();
        assert!(person.keys.is_superkey(&ks(&["SS#"])));
        assert!(person.keys.is_superkey(&ks(&["Name", "Address"])));
        assert_eq!(person.arity(), 4);
    }

    #[test]
    fn name_clash_across_schemas() {
        let g1 = RelSchema::builder()
            .column("R", "x", "Thing")
            .build()
            .unwrap();
        let g2 = RelSchema::builder()
            .column("Thing", "y", "int")
            .build()
            .unwrap();
        assert!(matches!(
            merge_relational([&g1, &g2]),
            Err(RelError::NameClash(_))
        ));
    }

    #[test]
    fn merge_is_order_independent() {
        let g1 = section_5_person();
        let g2 = RelSchema::builder()
            .column("Person", "Phone", "text")
            .column("Account", "owner", "int")
            .key("Account", KeySet::new(["owner"]))
            .build()
            .unwrap();
        let g3 = RelSchema::builder()
            .column("Person", "Age", "int")
            .build()
            .unwrap();
        let a = merge_relational([&g1, &g2, &g3]).unwrap();
        let b = merge_relational([&g3, &g2, &g1]).unwrap();
        assert_eq!(a.schema, b.schema);
    }
}
