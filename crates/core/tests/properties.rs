//! Property-based tests of the core algebraic laws.
//!
//! The laws are asserted through the [`Merger`] façade (plus the binary
//! [`weak_join`] convenience), the same entry points every production
//! caller uses. Façade-plan coverage lives in `tests/facade.rs` and the
//! workload-scale differential tests in
//! `crates/bench/tests/compiled_vs_symbolic.rs`.
//!
//! Schemas are generated over a small vocabulary with specialization edges
//! directed along a fixed total order on names (`c0 ⇒ c1 ⇒ …` only goes
//! up-index), so any collection of generated schemas is *compatible* —
//! which lets the LUB laws be tested without conditioning on cycle-freedom.
//! Incompatible inputs are exercised by dedicated generators below.

use proptest::collection::vec;
use proptest::prelude::*;

use schema_merge_core::complete::complete_with_report;
use schema_merge_core::lower::{lower_complete, lower_merge, AnnotatedSchema};
use schema_merge_core::merge::{weak_join, MergeOutcome, MergeSession};
use schema_merge_core::merger::{Joined, MergeReport};
use schema_merge_core::{
    Class, KeyAssignment, KeySet, Label, MergeError, Merger, ProperSchema, SuperkeyFamily,
    WeakSchema,
};

/// N-ary join through the façade.
fn weak_join_all<'a>(
    schemas: impl IntoIterator<Item = &'a WeakSchema>,
) -> Result<WeakSchema, MergeError> {
    Merger::new().schemas(schemas).join().map(Joined::into_weak)
}

/// Full merge (join + completion) through the façade, as the historical
/// triple.
fn merge<'a>(
    schemas: impl IntoIterator<Item = &'a WeakSchema>,
) -> Result<MergeOutcome, MergeError> {
    Merger::new()
        .schemas(schemas)
        .execute()
        .map(MergeReport::into_outcome)
}

const NAMES: [&str; 8] = ["c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"];
const LABELS: [&str; 3] = ["a", "b", "f"];

/// A raw edge description: spec edges respect the name order.
#[derive(Debug, Clone)]
enum RawEdge {
    Spec(usize, usize),
    Arrow(usize, usize, usize),
}

fn raw_edges() -> impl Strategy<Value = Vec<RawEdge>> {
    let edge = prop_oneof![
        (0usize..NAMES.len(), 0usize..NAMES.len()).prop_map(|(i, j)| {
            // Direct the edge along the order: lower index specializes
            // higher index. Equal indices become a (dropped) self-loop.
            RawEdge::Spec(i.min(j), i.max(j))
        }),
        (
            0usize..NAMES.len(),
            0usize..LABELS.len(),
            0usize..NAMES.len()
        )
            .prop_map(|(s, l, t)| RawEdge::Arrow(s, l, t)),
    ];
    vec(edge, 0..14)
}

fn build(edges: &[RawEdge]) -> WeakSchema {
    let mut builder = WeakSchema::builder();
    for edge in edges {
        builder = match edge {
            RawEdge::Spec(sub, sup) => {
                if sub == sup {
                    builder
                } else {
                    builder.specialize(NAMES[*sub], NAMES[*sup])
                }
            }
            RawEdge::Arrow(s, l, t) => builder.arrow(NAMES[*s], LABELS[*l], NAMES[*t]),
        };
    }
    builder.build().expect("order-directed schemas are acyclic")
}

fn schema() -> impl Strategy<Value = WeakSchema> {
    raw_edges().prop_map(|edges| build(&edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn closure_is_idempotent(g in schema()) {
        prop_assert!(g.validate().is_ok());
        // Re-declaring everything the closed schema contains reproduces it.
        let mut builder = WeakSchema::builder().classes(g.classes().cloned());
        for (sub, sup) in g.specialization_pairs() {
            builder = builder.specialize(sub.clone(), sup.clone());
        }
        for (p, a, q) in g.arrow_triples() {
            builder = builder.arrow(p.clone(), a.clone(), q.clone());
        }
        let rebuilt = builder.build().unwrap();
        prop_assert_eq!(rebuilt, g);
    }

    #[test]
    fn subschema_is_reflexive_and_join_is_upper_bound(
        g1 in schema(),
        g2 in schema(),
    ) {
        prop_assert!(g1.is_subschema_of(&g1));
        let joined = weak_join(&g1, &g2).expect("order-directed schemas are compatible");
        prop_assert!(g1.is_subschema_of(&joined));
        prop_assert!(g2.is_subschema_of(&joined));
    }

    #[test]
    fn join_laws(g1 in schema(), g2 in schema(), g3 in schema()) {
        let ab = weak_join(&g1, &g2).unwrap();
        let ba = weak_join(&g2, &g1).unwrap();
        prop_assert_eq!(&ab, &ba, "commutative");

        let ab_c = weak_join(&ab, &g3).unwrap();
        let bc = weak_join(&g2, &g3).unwrap();
        let a_bc = weak_join(&g1, &bc).unwrap();
        prop_assert_eq!(&ab_c, &a_bc, "associative");

        let nary = weak_join_all([&g1, &g2, &g3]).unwrap();
        prop_assert_eq!(&nary, &ab_c, "n-ary agrees with folds");

        prop_assert_eq!(weak_join(&g1, &g1).unwrap(), g1.clone(), "idempotent");
        prop_assert_eq!(
            weak_join(&g1, &WeakSchema::empty()).unwrap(),
            g1,
            "empty is the unit"
        );
    }

    #[test]
    fn join_is_least_upper_bound(g1 in schema(), g2 in schema(), g3 in schema()) {
        // Any upper bound of g1, g2 that is also ⊑-comparable from the
        // join side must contain the join; the canonical such bound is the
        // triple join.
        let join12 = weak_join(&g1, &g2).unwrap();
        let upper = weak_join_all([&g1, &g2, &g3]).unwrap();
        prop_assert!(join12.is_subschema_of(&upper));
    }

    #[test]
    fn subschema_antisymmetry(g1 in schema(), g2 in schema()) {
        if g1.is_subschema_of(&g2) && g2.is_subschema_of(&g1) {
            prop_assert_eq!(g1, g2);
        }
    }

    #[test]
    fn completion_produces_least_proper_schema(g in schema()) {
        let (proper, report) = complete_with_report(&g).unwrap();
        prop_assert!(proper.check_d1());
        prop_assert!(proper.check_d2());
        prop_assert!(g.is_subschema_of(proper.as_weak()), "G ⊑ Ḡ");
        prop_assert!(proper.as_weak().validate().is_ok());
        // Every introduced class is implicit with ≥ 2 origins.
        for info in &report.implicit {
            prop_assert!(info.class.is_implicit_meet());
            prop_assert!(info.members.len() >= 2);
        }
    }

    #[test]
    fn strip_of_complete_is_identity(g in schema()) {
        let proper = schema_merge_core::complete(&g).unwrap();
        prop_assert_eq!(proper.as_weak().strip_implicit(), g);
    }

    #[test]
    fn completion_is_idempotent(g in schema()) {
        let once = schema_merge_core::complete(&g).unwrap();
        let (twice, report) = complete_with_report(once.as_weak()).unwrap();
        prop_assert_eq!(report.num_implicit(), 0);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn merge_is_order_independent(
        g1 in schema(),
        g2 in schema(),
        g3 in schema(),
    ) {
        let orders: [[&WeakSchema; 3]; 3] =
            [[&g1, &g2, &g3], [&g3, &g1, &g2], [&g2, &g3, &g1]];
        let mut results: Vec<ProperSchema> = Vec::new();
        for order in orders {
            results.push(merge(order).unwrap().proper);
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[1], &results[2]);
    }

    #[test]
    fn stepwise_equals_batch(g1 in schema(), g2 in schema(), g3 in schema()) {
        // complete(strip ⊔ strip) protocol via MergeSession.
        let first = merge([&g1, &g2]).unwrap();
        let mut session = MergeSession::new();
        session.add_merged(&first.proper).unwrap();
        session.add_schema(&g3).unwrap();
        let stepwise = session.merged().unwrap().proper;
        let batch = merge([&g1, &g2, &g3]).unwrap().proper;
        prop_assert_eq!(stepwise, batch);
    }

    #[test]
    fn minimal_key_assignment_is_satisfactory_and_minimal(
        g in schema(),
        key_picks in vec((0usize..NAMES.len(), vec(0usize..LABELS.len(), 0..3)), 0..6),
    ) {
        // Contributions: random label sets on random classes, filtered to
        // labels the class actually carries (so validation can pass).
        let mut contributions: Vec<(Class, SuperkeyFamily)> = Vec::new();
        for (class_idx, label_idxs) in &key_picks {
            let class = Class::named(NAMES[*class_idx]);
            if !g.contains_class(&class) {
                continue;
            }
            let available = g.labels_of(&class);
            let labels: Vec<Label> = label_idxs
                .iter()
                .map(|i| Label::new(LABELS[*i]))
                .filter(|l| available.contains(l))
                .collect();
            contributions.push((class, SuperkeyFamily::single(KeySet::new(labels))));
        }
        let refs: Vec<(&Class, &SuperkeyFamily)> =
            contributions.iter().map(|(c, f)| (c, f)).collect();

        let minimal = KeyAssignment::minimal_satisfactory(&g, refs.iter().copied());
        prop_assert!(minimal.is_satisfactory(&g, refs.iter().copied()));

        // Adding any extra key keeps it satisfactory and above minimal.
        let mut bigger = minimal.clone();
        if let Some(class) = g.classes().next() {
            bigger.add_key(class.clone(), KeySet::empty());
            prop_assert!(bigger.is_satisfactory(&g, refs.iter().copied()));
            let meet = bigger.intersection(&minimal);
            prop_assert!(meet.is_satisfactory(&g, refs.iter().copied()));
            for class in g.classes() {
                prop_assert!(
                    bigger.family(class).contains_family(&minimal.family(class))
                );
                prop_assert_eq!(meet.family(class), minimal.family(class));
            }
        }
    }
}

/// Annotated-schema generation: a schema plus a random subset of its raw
/// arrows marked optional.
fn annotated() -> impl Strategy<Value = AnnotatedSchema> {
    (raw_edges(), any::<u64>()).prop_map(|(edges, mask)| {
        let mut builder = AnnotatedSchema::builder();
        for (i, edge) in edges.iter().enumerate() {
            builder = match edge {
                RawEdge::Spec(sub, sup) => {
                    if sub == sup {
                        builder
                    } else {
                        builder.specialize(NAMES[*sub], NAMES[*sup])
                    }
                }
                RawEdge::Arrow(s, l, t) => {
                    if mask >> (i % 64) & 1 == 1 {
                        builder.optional_arrow(NAMES[*s], LABELS[*l], NAMES[*t])
                    } else {
                        builder.arrow(NAMES[*s], LABELS[*l], NAMES[*t])
                    }
                }
            };
        }
        builder.build().expect("order-directed schemas are acyclic")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn annotated_schemas_validate(g in annotated()) {
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn lower_merge_is_glb(g1 in annotated(), g2 in annotated()) {
        let merged = lower_merge([&g1, &g2]);
        let classes: Vec<Class> = merged.schema().classes().cloned().collect();
        let p1 = g1.pad_with_classes(classes.clone());
        let p2 = g2.pad_with_classes(classes);
        prop_assert!(merged.is_sub_annotated(&p1), "lower bound of {p1}");
        prop_assert!(merged.is_sub_annotated(&p2), "lower bound of {p2}");
    }

    #[test]
    fn lower_merge_laws(g1 in annotated(), g2 in annotated(), g3 in annotated()) {
        prop_assert_eq!(lower_merge([&g1, &g2]), lower_merge([&g2, &g1]));
        let left = lower_merge([&lower_merge([&g1, &g2]), &g3]);
        let right = lower_merge([&g1, &lower_merge([&g2, &g3])]);
        prop_assert_eq!(left, right);
        prop_assert_eq!(lower_merge([&g1, &g1]), g1);
    }

    #[test]
    fn lower_complete_terminates_and_is_proper(g1 in annotated(), g2 in annotated()) {
        let merged = lower_merge([&g1, &g2]);
        let (annotated, proper, _report) = lower_complete(&merged).unwrap();
        prop_assert!(proper.check_d1());
        prop_assert!(annotated.validate().is_ok());
    }
}

/// Free-direction specialization edges: collections may be incompatible.
fn free_schema() -> impl Strategy<Value = Result<WeakSchema, ()>> {
    vec((0usize..NAMES.len(), 0usize..NAMES.len()), 0..10).prop_map(|pairs| {
        let mut builder = WeakSchema::builder();
        for (sub, sup) in pairs {
            if sub != sup {
                builder = builder.specialize(NAMES[sub], NAMES[sup]);
            }
        }
        builder.build().map_err(|_| ())
    })
}

/// An injective renaming prefixing every vocabulary name.
fn prefixing_renaming() -> schema_merge_core::Renaming {
    let mut renaming = schema_merge_core::Renaming::new();
    for name in NAMES {
        renaming = renaming.class(name, format!("x-{name}"));
    }
    for label in LABELS {
        renaming = renaming.label(label, format!("x-{label}"));
    }
    renaming
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn identity_renaming_fixes_every_schema(g in schema()) {
        let (renamed, report) = schema_merge_core::Renaming::new().apply(&g).unwrap();
        prop_assert_eq!(renamed, g);
        prop_assert!(report.is_noop());
    }

    #[test]
    fn injective_renaming_is_an_information_order_isomorphism(
        g1 in schema(),
        g2 in schema(),
    ) {
        let renaming = prefixing_renaming();
        let (r1, _) = renaming.apply(&g1).unwrap();
        let (r2, _) = renaming.apply(&g2).unwrap();
        // Order-reflecting and order-preserving.
        prop_assert_eq!(g1.is_subschema_of(&g2), r1.is_subschema_of(&r2));
        // Structure-preserving.
        prop_assert_eq!(g1.num_classes(), r1.num_classes());
        prop_assert_eq!(g1.num_arrows(), r1.num_arrows());
        prop_assert_eq!(g1.num_specializations(), r1.num_specializations());
        // Distributes over the join.
        let joined = weak_join(&g1, &g2).unwrap();
        let (renamed_join, _) = renaming.apply(&joined).unwrap();
        let join_renamed = weak_join(&r1, &r2).unwrap();
        prop_assert_eq!(renamed_join, join_renamed);
    }

    #[test]
    fn renaming_composition_agrees_with_sequencing(g in schema()) {
        let first = prefixing_renaming();
        // A second renaming touching the images of the first.
        let second = schema_merge_core::Renaming::new()
            .class("x-c0", "y-c0")
            .class("x-c1", "x-c2") // deliberately non-injective on images
            .label("x-a", "y-a");
        let (step1, _) = first.apply(&g).unwrap();
        match second.apply(&step1) {
            Ok((sequential, _)) => {
                let (at_once, _) = first.then(&second).apply(&g).unwrap();
                prop_assert_eq!(sequential, at_once);
            }
            Err(_) => {
                // The unification created a cycle; the composition must
                // fail identically.
                prop_assert!(first.then(&second).apply(&g).is_err());
            }
        }
    }

    #[test]
    fn renaming_commutes_with_completion_on_injective_maps(g in schema()) {
        let renaming = prefixing_renaming();
        let completed_then_renamed = {
            let proper = schema_merge_core::complete(&g).unwrap();
            renaming.apply(proper.as_weak()).unwrap().0
        };
        let renamed_then_completed = {
            let (renamed, _) = renaming.apply(&g).unwrap();
            schema_merge_core::complete(&renamed).unwrap().as_weak().clone()
        };
        prop_assert_eq!(completed_then_renamed, renamed_then_completed);
    }

    #[test]
    fn reify_then_flatten_round_trips(g in schema(), pick in 0usize..64) {
        use schema_merge_core::restructure::{flatten_class, reify_arrow};

        // Applicable sites: an arrow with a unique canonical target
        // (flatten needs it) that is not inherited from a superclass
        // (W1 makes those irremovable).
        let candidates: Vec<(Class, Label)> = g
            .classes()
            .flat_map(|src| {
                g.labels_of(src).into_iter().map(move |label| (src.clone(), label))
            })
            .filter(|(src, label)| {
                g.min_s(g.arrow_targets(src, label).iter()).len() == 1
                    && g.strict_supers(src)
                        .iter()
                        .all(|sup| g.arrow_targets(sup, label).is_empty())
            })
            .collect();
        if candidates.is_empty() {
            return Ok(());
        }
        let (src, label) = candidates[pick % candidates.len()].clone();

        let node = Class::named("fresh-node");
        let reified = reify_arrow(&g, &src, &label, node.clone(), "role-src", "role-tgt")
            .expect("fresh node, arrow exists");
        prop_assert!(reified.contains_class(&node));
        prop_assert!(reified.arrow_targets(&src, &label).is_empty());

        let back = flatten_class(
            &reified,
            &node,
            &Label::new("role-src"),
            &Label::new("role-tgt"),
            label.clone(),
        )
        .expect("the fresh node is bare");
        prop_assert_eq!(back, g);
    }

    #[test]
    fn reify_preserves_everything_but_the_arrow(g in schema(), pick in 0usize..64) {
        use schema_merge_core::restructure::reify_arrow;

        let candidates: Vec<(Class, Label)> = g
            .classes()
            .flat_map(|src| {
                g.labels_of(src).into_iter().map(move |label| (src.clone(), label))
            })
            .filter(|(src, label)| {
                g.strict_supers(src)
                    .iter()
                    .all(|sup| g.arrow_targets(sup, label).is_empty())
            })
            .collect();
        if candidates.is_empty() {
            return Ok(());
        }
        let (src, label) = candidates[pick % candidates.len()].clone();

        let node = Class::named("fresh-node");
        let reified = reify_arrow(&g, &src, &label, node.clone(), "role-src", "role-tgt")
            .expect("applies");
        // All original classes survive, plus the node.
        prop_assert_eq!(reified.num_classes(), g.num_classes() + 1);
        // Specializations are untouched.
        prop_assert_eq!(reified.num_specializations(), g.num_specializations());
        // Arrows under other labels are untouched.
        for (p, a, q) in g.arrow_triples() {
            if a != &label {
                prop_assert!(reified.has_arrow(p, a, q), "{p} --{a}--> {q} lost");
            }
        }
    }

    #[test]
    fn synonym_candidates_never_propose_shared_names(g1 in schema(), g2 in schema()) {
        for candidate in schema_merge_core::synonym_candidates(&g1, &g2, 0.01) {
            let left_class = Class::named(candidate.left.as_str());
            let right_class = Class::named(candidate.right.as_str());
            prop_assert!(!g2.contains_class(&left_class), "left name must be left-only");
            prop_assert!(!g1.contains_class(&right_class), "right name must be right-only");
            prop_assert!(candidate.similarity > 0.0);
            prop_assert!(!candidate.shared_labels.is_empty());
        }
    }

    #[test]
    fn homonym_candidates_only_flag_shared_names(g1 in schema(), g2 in schema()) {
        for candidate in schema_merge_core::homonym_candidates(&g1, &g2, 0.99) {
            let class = Class::named(candidate.name.as_str());
            prop_assert!(g1.contains_class(&class));
            prop_assert!(g2.contains_class(&class));
            prop_assert!(candidate.similarity <= 0.99);
        }
    }

    #[test]
    fn incompatible_merges_fail_cleanly(a in free_schema(), b in free_schema()) {
        let (Ok(g1), Ok(g2)) = (a, b) else { return Ok(()); };
        match weak_join(&g1, &g2) {
            Ok(joined) => {
                prop_assert!(g1.is_subschema_of(&joined));
                prop_assert!(g2.is_subschema_of(&joined));
            }
            Err(schema_merge_core::MergeError::Incompatible(witness)) => {
                // The witness is a genuine cycle: consecutive pairs are
                // specializations in one of the two inputs.
                prop_assert!(witness.path.len() >= 3);
                prop_assert_eq!(witness.path.first(), witness.path.last());
                for pair in witness.path.windows(2) {
                    let in_either = g1.specializes(&pair[0], &pair[1])
                        || g2.specializes(&pair[0], &pair[1]);
                    prop_assert!(in_either, "witness uses declared edges");
                }
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}
