//! Differential property tests: the compiled engine vs the symbolic
//! reference engine.
//!
//! The compiled schema core (`compile`) must be a pure change of
//! representation: `decompile(compile(g)) == g`, and every routed hot
//! path — weak join, completion, the batch compiled-engine merge — must
//! produce results *equal* to the retained symbolic implementations in
//! `reference` (alpha-isomorphism is implied by equality; it is asserted
//! separately to pin the weaker public contract too). All compiled paths
//! are driven through the [`Merger`] façade, the same entry point every
//! production caller uses.

use proptest::collection::vec;
use proptest::prelude::*;

use schema_merge_core::iso::alpha_isomorphic;
use schema_merge_core::merge::MergeOutcome;
use schema_merge_core::merger::{EnginePreference, Joined, MergeReport};
use schema_merge_core::{reference, Class, CompiledSchema, MergeError, Merger, WeakSchema};

/// N-ary join on the compiled engine, through the façade.
fn weak_join_all<'a>(
    schemas: impl IntoIterator<Item = &'a WeakSchema>,
) -> Result<WeakSchema, MergeError> {
    Merger::new()
        .schemas(schemas)
        .engine(EnginePreference::Compiled)
        .join()
        .map(Joined::into_weak)
}

/// Batch merge on the compiled engine, through the façade.
fn merge_compiled<'a>(
    schemas: impl IntoIterator<Item = &'a WeakSchema>,
) -> Result<MergeOutcome, MergeError> {
    Merger::new()
        .schemas(schemas)
        .engine(EnginePreference::Compiled)
        .execute()
        .map(MergeReport::into_outcome)
}

/// The public default-planned merge, through the façade.
fn merge<'a>(
    schemas: impl IntoIterator<Item = &'a WeakSchema>,
) -> Result<MergeOutcome, MergeError> {
    Merger::new()
        .schemas(schemas)
        .execute()
        .map(MergeReport::into_outcome)
}

const NAMES: [&str; 8] = ["c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"];
const LABELS: [&str; 3] = ["a", "b", "f"];

#[derive(Debug, Clone)]
enum RawEdge {
    Spec(usize, usize),
    Arrow(usize, usize, usize),
}

fn raw_edges() -> impl Strategy<Value = Vec<RawEdge>> {
    let edge = prop_oneof![
        (0usize..NAMES.len(), 0usize..NAMES.len())
            .prop_map(|(i, j)| RawEdge::Spec(i.min(j), i.max(j))),
        (
            0usize..NAMES.len(),
            0usize..LABELS.len(),
            0usize..NAMES.len()
        )
            .prop_map(|(s, l, t)| RawEdge::Arrow(s, l, t)),
    ];
    vec(edge, 0..14)
}

fn build(edges: &[RawEdge]) -> WeakSchema {
    let mut builder = WeakSchema::builder();
    for edge in edges {
        builder = match edge {
            RawEdge::Spec(sub, sup) => {
                if sub == sup {
                    builder
                } else {
                    builder.specialize(NAMES[*sub], NAMES[*sup])
                }
            }
            RawEdge::Arrow(s, l, t) => builder.arrow(NAMES[*s], LABELS[*l], NAMES[*t]),
        };
    }
    builder.build().expect("order-directed schemas are acyclic")
}

fn schema() -> impl Strategy<Value = WeakSchema> {
    raw_edges().prop_map(|edges| build(&edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn decompile_of_compile_is_identity(g in schema()) {
        let compiled = CompiledSchema::compile(&g);
        prop_assert_eq!(compiled.decompile(), g);
    }

    #[test]
    fn compiled_stats_agree_with_symbolic(g in schema()) {
        let compiled = CompiledSchema::compile(&g);
        prop_assert_eq!(compiled.num_classes(), g.num_classes());
        prop_assert_eq!(compiled.num_arrows(), g.num_arrows());
        prop_assert_eq!(compiled.num_specializations(), g.num_specializations());
    }

    #[test]
    fn compiled_min_max_agree_with_symbolic(g in schema()) {
        let compiled = CompiledSchema::compile(&g);
        let all_ids: Vec<u32> = (0..compiled.num_classes() as u32).collect();
        let all_classes: Vec<Class> = g.classes().cloned().collect();

        let compiled_min: Vec<Class> = compiled
            .min_s(&all_ids)
            .iter()
            .map(|&id| compiled.class(id).clone())
            .collect();
        let symbolic_min: Vec<Class> = g.min_s(&all_classes).into_iter().collect();
        prop_assert_eq!(compiled_min, symbolic_min);

        let compiled_max: Vec<Class> = compiled
            .max_s(&all_ids)
            .iter()
            .map(|&id| compiled.class(id).clone())
            .collect();
        let symbolic_max: Vec<Class> = g.max_s(&all_classes).into_iter().collect();
        prop_assert_eq!(compiled_max, symbolic_max);
    }

    #[test]
    fn compiled_join_equals_reference_join(g1 in schema(), g2 in schema(), g3 in schema()) {
        let compiled = weak_join_all([&g1, &g2, &g3]).unwrap();
        let symbolic = reference::weak_join_all([&g1, &g2, &g3]).unwrap();
        prop_assert_eq!(compiled, symbolic);
    }

    #[test]
    fn compiled_completion_equals_reference_completion(g in schema()) {
        let (compiled, compiled_report) =
            schema_merge_core::complete_with_report(&g).unwrap();
        let (symbolic, symbolic_report) = reference::complete_with_report(&g).unwrap();
        prop_assert_eq!(&compiled, &symbolic);
        prop_assert_eq!(compiled_report, symbolic_report, "states and witnesses agree");
    }

    #[test]
    fn merge_compiled_equals_reference_merge(g1 in schema(), g2 in schema(), g3 in schema()) {
        let batch = merge_compiled([&g1, &g2, &g3]).unwrap();
        let symbolic = reference::merge([&g1, &g2, &g3]).unwrap();
        prop_assert_eq!(&batch.weak, &symbolic.weak);
        prop_assert_eq!(&batch.proper, &symbolic.proper);
        prop_assert_eq!(&batch.report, &symbolic.report);
        // The public contract is alpha-isomorphism modulo implicit
        // naming; equality implies it, but assert it through the public
        // predicate as well.
        prop_assert!(alpha_isomorphic(
            batch.proper.as_weak(),
            symbolic.proper.as_weak(),
            Class::is_implicit,
        ));
    }

    #[test]
    fn merge_compiled_equals_public_merge(g1 in schema(), g2 in schema()) {
        let batch = merge_compiled([&g1, &g2]).unwrap();
        let public = merge([&g1, &g2]).unwrap();
        prop_assert_eq!(batch, public);
    }

    #[test]
    fn engines_agree_on_incompatibility(
        pairs in vec((0usize..NAMES.len(), 0usize..NAMES.len()), 0..10),
    ) {
        // Free-direction specialization edges: collections may be cyclic.
        // Both engines must agree on Ok/Err, and on Err both witnesses
        // must be genuine cycles over declared edges.
        let mut builder = WeakSchema::builder();
        for &(sub, sup) in &pairs {
            if sub != sup {
                builder = builder.specialize(NAMES[sub], NAMES[sup]);
            }
        }
        let g1 = match builder.build() {
            Ok(g) => g,
            Err(_) => return Ok(()),
        };
        let g2 = WeakSchema::builder()
            .specialize(NAMES[1], NAMES[0])
            .specialize(NAMES[3], NAMES[2])
            .build()
            .unwrap();

        let compiled = weak_join_all([&g1, &g2]);
        let symbolic = reference::weak_join_all([&g1, &g2]);
        match (compiled, symbolic) {
            (Ok(c), Ok(s)) => prop_assert_eq!(c, s),
            (Err(c), Err(s)) => {
                for witness in [&c, &s] {
                    let schema_merge_core::MergeError::Incompatible(w) = witness else {
                        return Err(TestCaseError::fail(format!("unexpected error: {witness}")));
                    };
                    prop_assert!(w.path.len() >= 3);
                    prop_assert_eq!(w.path.first(), w.path.last());
                    for pair in w.path.windows(2) {
                        prop_assert!(
                            g1.specializes(&pair[0], &pair[1])
                                || g2.specializes(&pair[0], &pair[1]),
                            "witness uses declared edges"
                        );
                    }
                }
            }
            (c, s) => {
                return Err(TestCaseError::fail(format!(
                    "engines disagree on compatibility: compiled {c:?} vs symbolic {s:?}"
                )));
            }
        }
    }

    #[test]
    fn compile_after_merge_round_trips(g1 in schema(), g2 in schema()) {
        // The completed proper schema (with implicit classes) also
        // survives the compile/decompile round trip.
        let outcome = merge([&g1, &g2]).unwrap();
        let compiled = CompiledSchema::compile(outcome.proper.as_weak());
        prop_assert_eq!(&compiled.decompile(), outcome.proper.as_weak());
    }
}
