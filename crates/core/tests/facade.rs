//! The `Merger` façade's contract, property-tested:
//!
//! * every **plan configuration** — symbolic, compiled, compiled-onto-base
//!   (with every split of the inputs into base and extras) — produces
//!   schemas *equal* to the retained `reference::merge`, and
//!   alpha-isomorphic modulo implicit-class naming;
//! * the **consistency pass** is one implementation: the deprecated
//!   `merge_consistent` and `MergeSession::with_consistency` paths are
//!   differential-tested against `Merger::with_consistency` (accepting
//!   and rejecting identically, with identical witnesses);
//! * `MergeReport` renders **deterministically** (snapshot tests).
//!
//! Workload-scale differential coverage (random/pathological/ER
//! generator families) lives in
//! `crates/bench/tests/compiled_vs_symbolic.rs`, which drives the same
//! configurations through the `workload` generators.

use proptest::collection::vec;
use proptest::prelude::*;

use schema_merge_core::iso::alpha_isomorphic;
use schema_merge_core::{
    reference, Class, ConsistencyRelation, EnginePreference, MergeError, MergeSession, Merger,
    PlannedEngine, WeakSchema,
};

const NAMES: [&str; 8] = ["c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"];
const LABELS: [&str; 3] = ["a", "b", "f"];

#[derive(Debug, Clone)]
enum RawEdge {
    Spec(usize, usize),
    Arrow(usize, usize, usize),
}

fn raw_edges() -> impl Strategy<Value = Vec<RawEdge>> {
    let edge = prop_oneof![
        (0usize..NAMES.len(), 0usize..NAMES.len())
            .prop_map(|(i, j)| RawEdge::Spec(i.min(j), i.max(j))),
        (
            0usize..NAMES.len(),
            0usize..LABELS.len(),
            0usize..NAMES.len()
        )
            .prop_map(|(s, l, t)| RawEdge::Arrow(s, l, t)),
    ];
    vec(edge, 0..14)
}

fn build(edges: &[RawEdge]) -> WeakSchema {
    let mut builder = WeakSchema::builder();
    for edge in edges {
        builder = match edge {
            RawEdge::Spec(sub, sup) if sub != sup => builder.specialize(NAMES[*sub], NAMES[*sup]),
            RawEdge::Spec(..) => builder,
            RawEdge::Arrow(s, l, t) => builder.arrow(NAMES[*s], LABELS[*l], NAMES[*t]),
        };
    }
    builder.build().expect("order-directed schemas are acyclic")
}

fn family() -> impl Strategy<Value = Vec<WeakSchema>> {
    vec(raw_edges().prop_map(|edges| build(&edges)), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every plan configuration equals `reference::merge`: the engine is
    /// a cost choice, never a semantics choice.
    #[test]
    fn every_plan_configuration_equals_reference_merge(family in family(), split in 0usize..5) {
        let refs: Vec<&WeakSchema> = family.iter().collect();
        let expected = reference::merge(refs.iter().copied()).expect("compatible");

        // The default (Auto) plan: compiled for small merges, parallel
        // once the work estimate crosses the threshold — same results
        // either way, but only the compiled plan materializes the
        // symbolic join.
        let auto = Merger::new().schemas(refs.iter().copied()).execute().expect("auto");
        prop_assert!(matches!(
            auto.plan.engine,
            PlannedEngine::Compiled | PlannedEngine::Parallel
        ));
        prop_assert_eq!(&auto.proper, &expected.proper);
        prop_assert_eq!(&auto.implicit, &expected.report);
        match &auto.weak {
            Some(weak) => prop_assert_eq!(weak, &expected.weak),
            None => prop_assert_eq!(auto.plan.engine, PlannedEngine::Parallel),
        }

        // Forced compiled.
        let compiled = Merger::new()
            .schemas(refs.iter().copied())
            .engine(EnginePreference::Compiled)
            .execute()
            .expect("compiled");
        prop_assert_eq!(compiled.plan.engine, PlannedEngine::Compiled);
        prop_assert_eq!(&compiled.proper, &expected.proper);
        prop_assert_eq!(compiled.weak.as_ref().unwrap(), &expected.weak);
        prop_assert_eq!(&compiled.implicit, &expected.report);

        // Forced parallel, across thread counts: report-identical to the
        // reference at every budget.
        for threads in [1, 2, 4, 8] {
            let parallel = Merger::new()
                .schemas(refs.iter().copied())
                .engine(EnginePreference::Parallel)
                .threads(threads)
                .execute()
                .expect("parallel");
            prop_assert_eq!(parallel.plan.engine, PlannedEngine::Parallel);
            prop_assert_eq!(parallel.plan.threads, threads);
            prop_assert_eq!(&parallel.proper, &expected.proper);
            prop_assert_eq!(&parallel.implicit, &expected.report);
            prop_assert!(parallel.weak.is_none());
        }

        // Symbolic.
        let symbolic = Merger::new()
            .schemas(refs.iter().copied())
            .engine(EnginePreference::Symbolic)
            .execute()
            .expect("symbolic");
        prop_assert_eq!(symbolic.plan.engine, PlannedEngine::Symbolic);
        prop_assert_eq!(&symbolic.proper, &expected.proper);
        prop_assert_eq!(&symbolic.implicit, &expected.report);

        // Compiled onto a cached base, at every split point of the
        // inputs into (base, extras) — including the all-in-base and
        // all-in-extras degenerate splits.
        let k = split % (refs.len() + 1);
        let base = Merger::new()
            .schemas(refs[..k].iter().copied())
            .join()
            .expect("base joins")
            .into_parts()
            .1
            .expect("compiled base");
        let onto = Merger::new()
            .onto_base(&base)
            .schemas(refs[k..].iter().copied())
            .execute()
            .expect("onto-base");
        prop_assert_eq!(onto.plan.engine, PlannedEngine::CompiledOntoBase);
        prop_assert_eq!(&onto.proper, &expected.proper);
        prop_assert_eq!(&onto.implicit, &expected.report);

        // And the weaker public contract: alpha-isomorphism modulo
        // implicit-class naming.
        prop_assert!(alpha_isomorphic(
            compiled.proper.as_weak(),
            expected.proper.as_weak(),
            Class::is_implicit,
        ));
    }

    /// The consistency check is ONE merger pass: the incremental path
    /// (`MergeSession::with_consistency`) accepts and rejects exactly as
    /// the batch façade does, with identical witnesses and identical
    /// results.
    #[test]
    fn consistency_paths_agree(family in family(), veto in (0usize..NAMES.len(), 0usize..NAMES.len())) {
        let refs: Vec<&WeakSchema> = family.iter().collect();
        let mut relation = ConsistencyRelation::assume_consistent();
        relation.declare_inconsistent(NAMES[veto.0], NAMES[veto.1]);

        let facade = Merger::new()
            .schemas(refs.iter().copied())
            .with_consistency(&relation)
            .execute();

        // The incremental path: a session seeded with the relation.
        let mut session = MergeSession::with_consistency(relation.clone());
        for schema in &refs {
            session.add_schema(schema).expect("family is compatible");
        }
        let session_result = session.merged();

        match (&facade, &session_result) {
            (Ok(a), Ok(c)) => {
                prop_assert_eq!(&a.proper, &c.proper);
                prop_assert_eq!(&a.implicit, &c.report);
            }
            (Err(a), Err(c)) => {
                prop_assert_eq!(a, c);
                let inconsistent = matches!(a, MergeError::Inconsistent { .. });
                prop_assert!(inconsistent);
            }
            other => prop_assert!(
                false,
                "consistency paths disagree on accept/reject: {other:?}"
            ),
        }
    }

    /// `join()` agrees with the reference weak join in every engine.
    #[test]
    fn join_configurations_agree(family in family(), split in 0usize..5) {
        let refs: Vec<&WeakSchema> = family.iter().collect();
        let expected = reference::weak_join_all(refs.iter().copied()).expect("compatible");

        let compiled = Merger::new().schemas(refs.iter().copied()).join().expect("joins");
        prop_assert_eq!(&compiled.into_weak(), &expected);

        let symbolic = Merger::new()
            .schemas(refs.iter().copied())
            .engine(EnginePreference::Symbolic)
            .join()
            .expect("joins");
        prop_assert_eq!(&symbolic.into_weak(), &expected);

        let k = split % (refs.len() + 1);
        let base = Merger::new()
            .schemas(refs[..k].iter().copied())
            .join()
            .expect("base joins")
            .into_parts()
            .1
            .expect("compiled base");
        let onto = Merger::new()
            .onto_base(&base)
            .schemas(refs[k..].iter().copied())
            .join()
            .expect("joins");
        prop_assert_eq!(&onto.into_weak(), &expected);
    }
}

// ---- MergeReport snapshots -----------------------------------------------

#[test]
fn merge_report_snapshot_plain() {
    let g1 = WeakSchema::builder()
        .arrow("Dog", "license", "int")
        .build()
        .unwrap();
    let g2 = WeakSchema::builder()
        .arrow("Dog", "owner", "Person")
        .specialize("Guide-dog", "Dog")
        .build()
        .unwrap();
    let report = Merger::new()
        .schema_named("municipal", &g1)
        .schema_named("club", &g2)
        .execute()
        .unwrap();
    assert_eq!(
        report.summary(),
        "plan: upper merge, engine=compiled, inputs=2\n\
         passes: join -> completion\n\
         estimated work: <= 5 classes, <= 3 arrows, <= 1 spec pairs (9 work units)\n\
         result: 4 classes, 4 arrows, 1 specializations, 0 implicit\n"
    );
    let names: Vec<Option<&str>> = report
        .provenance
        .iter()
        .map(|p| p.name.as_deref())
        .collect();
    assert_eq!(names, vec![Some("municipal"), Some("club")]);
}

#[test]
fn merge_report_snapshot_with_implicit_and_assertions() {
    let g1 = WeakSchema::builder().arrow("C", "a", "B1").build().unwrap();
    let g2 = WeakSchema::builder().arrow("C", "a", "B2").build().unwrap();
    let report = Merger::new()
        .schema(&g1)
        .schema(&g2)
        .assert_specialization("Sub", "C")
        .execute()
        .unwrap();
    assert_eq!(
        report.summary(),
        "plan: upper merge, engine=compiled, inputs=2 (+1 assertions)\n\
         passes: join -> completion\n\
         estimated work: <= 6 classes, <= 2 arrows, <= 1 spec pairs (9 work units)\n\
         result: 5 classes, 6 arrows, 3 specializations, 1 implicit\n\
         implicit: {B1,B2} demanded by C --a-->\n\
         info[I-IMPLICIT-CLASSES]: completion introduced 1 implicit class(es) (classes: {B1,B2})\n"
    );
}

#[test]
fn merge_plan_is_side_effect_free_and_stable() {
    let g = WeakSchema::builder().arrow("A", "x", "B").build().unwrap();
    let merger = Merger::new().schema(&g);
    let first = merger.plan();
    let second = merger.plan();
    assert_eq!(first, second);
    // Planning did not consume anything: execution still works and
    // reports the same plan.
    let report = merger.execute().unwrap();
    assert_eq!(report.plan, first);
}
