//! The merge: least upper bounds of weak schemas (§4.1) and the full
//! upper merge (weak join + completion, §4.2).
//!
//! Proposition 4.1: for compatible weak schemas the least upper bound under
//! `⊑` exists and is computed component-wise —
//!
//! ```text
//! C = C₁ ∪ C₂      S = (S₁ ∪ S₂)*      E = W1/W2-closure of (E₁ ∪ E₂)
//! ```
//!
//! Being a least upper bound, the operation is **associative, commutative
//! and idempotent**; merging any number of schemas in any order yields the
//! same result. A collection is *compatible* iff `(S₁ ∪ … ∪ Sₙ)*` is
//! antisymmetric; incompatibility is reported with a cycle witness.
//!
//! **The entry point is the [`crate::merger::Merger`] façade** — one
//! builder over the symbolic, compiled and incremental (onto-base)
//! engines and every constraint pass. The historical pre-façade free
//! functions (`merge`, `merge_compiled`, `merge_consistent`,
//! `weak_join_all`, `weak_join_all_compiled`, `weak_join_onto_compiled`)
//! lived here as deprecated shims for several releases and have been
//! removed; only the binary [`weak_join`] convenience and
//! [`are_compatible`] remain as free functions, both routed through the
//! merger.
//!
//! [`MergeSession`] packages the interactive workflow of §3: user
//! assertions (`a₁ ⇒ a₂`, shared arrows) are themselves elementary schemas
//! merged with the same operation, so the session's result is independent
//! of the order in which schemas and assertions arrive. It is an
//! incremental [`Merger`] in disguise: the session holds its running
//! least upper bound *compiled*, and every addition joins one new schema
//! onto that cached base.

use crate::class::Class;
use crate::compile::CompiledSchema;
use crate::complete::CompletionReport;
use crate::consistency::ConsistencyRelation;
use crate::error::MergeError;
use crate::merger::{Joined, Merger};
use crate::name::Label;
use crate::proper::ProperSchema;
use crate::weak::WeakSchema;

/// The least upper bound `G₁ ⊔ G₂` of two weak schemas (Prop. 4.1).
///
/// # Errors
///
/// [`MergeError::Incompatible`] when the union of the specialization
/// relations is cyclic — no upper bound exists.
pub fn weak_join(left: &WeakSchema, right: &WeakSchema) -> Result<WeakSchema, MergeError> {
    Merger::new()
        .schema(left)
        .schema(right)
        .join()
        .map(Joined::into_weak)
}

/// Whether a collection of schemas is compatible (§4.1): the transitive
/// closure of the union of their specialization relations is antisymmetric.
pub fn are_compatible<'a>(schemas: impl IntoIterator<Item = &'a WeakSchema>) -> bool {
    Merger::new().schemas(schemas).join().is_ok()
}

/// The result of a full upper merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeOutcome {
    /// The weak least upper bound of the inputs.
    pub weak: WeakSchema,
    /// The completed proper schema (the paper's merge, `Ḡ`).
    pub proper: ProperSchema,
    /// Provenance of the implicit classes completion introduced.
    pub report: CompletionReport,
}

/// An interactive merging session (§3).
///
/// Schemas and user assertions accumulate into a single weak schema — the
/// running least upper bound. Because `⊔` is associative and commutative,
/// the session state never depends on insertion order, and a completed
/// view can be produced at any point without disturbing the session.
///
/// Failed additions leave the session unchanged, so an interactive tool
/// can report the conflict and continue.
///
/// Internally the session is an incremental [`Merger`]: the running join
/// is held **compiled**, every [`add_schema`](MergeSession::add_schema)
/// joins the new schema onto that cached base (interning only the
/// addition), and [`merged`](MergeSession::merged) completes straight off
/// the compiled form with the session's consistency relation as a merger
/// pass. The symbolic view is materialized lazily, on the first
/// [`current`](MergeSession::current) after a change — sessions that only
/// add and complete never decompile at all.
#[derive(Debug, Clone)]
pub struct MergeSession {
    base: CompiledSchema,
    /// Lazily decompiled view of `base`; cleared on every mutation.
    current: std::sync::OnceLock<WeakSchema>,
    consistency: ConsistencyRelation,
}

impl Default for MergeSession {
    fn default() -> Self {
        MergeSession {
            base: CompiledSchema::compile(&WeakSchema::empty()),
            current: std::sync::OnceLock::new(),
            consistency: ConsistencyRelation::default(),
        }
    }
}

impl MergeSession {
    /// An empty session with the permissive consistency relation.
    pub fn new() -> Self {
        MergeSession::default()
    }

    /// An empty session with the given consistency relation.
    pub fn with_consistency(consistency: ConsistencyRelation) -> Self {
        MergeSession {
            consistency,
            ..MergeSession::default()
        }
    }

    /// The accumulated weak schema (decompiled from the session's
    /// compiled join on first access after a change).
    pub fn current(&self) -> &WeakSchema {
        self.current.get_or_init(|| self.base.decompile())
    }

    /// Mutable access to the consistency relation (assertions about
    /// real-world class compatibility).
    pub fn consistency_mut(&mut self) -> &mut ConsistencyRelation {
        &mut self.consistency
    }

    /// Merges a weak schema into the session: one incremental join onto
    /// the session's compiled base.
    pub fn add_schema(&mut self, schema: &WeakSchema) -> Result<(), MergeError> {
        let joined = Merger::new().onto_base(&self.base).schema(schema).join()?;
        let (_, compiled) = joined.into_parts();
        self.base = compiled.expect("the onto-base engine stays compiled");
        self.current = std::sync::OnceLock::new();
        Ok(())
    }

    /// Merges a previously *completed* schema into the session, stripping
    /// its implicit classes first: they carry no information beyond their
    /// origin (§4.2) and will be rediscovered by the next completion.
    pub fn add_merged(&mut self, schema: &ProperSchema) -> Result<(), MergeError> {
        let stripped = schema.as_weak().strip_implicit();
        self.add_schema(&stripped)
    }

    /// Asserts `sub ⇒ sup` — an elementary two-class schema (§3).
    pub fn assert_specialization(
        &mut self,
        sub: impl Into<Class>,
        sup: impl Into<Class>,
    ) -> Result<(), MergeError> {
        let atom = WeakSchema::builder()
            .specialize(sub, sup)
            .build()
            .map_err(MergeError::Schema)?;
        self.add_schema(&atom)
    }

    /// Asserts the arrow `src --label--> tgt` as an elementary schema.
    pub fn assert_arrow(
        &mut self,
        src: impl Into<Class>,
        label: impl Into<Label>,
        tgt: impl Into<Class>,
    ) -> Result<(), MergeError> {
        let atom = WeakSchema::builder()
            .arrow(src, label, tgt)
            .build()
            .map_err(MergeError::Schema)?;
        self.add_schema(&atom)
    }

    /// Completes the session's weak schema into the merged proper schema,
    /// applying the consistency check — a [`Merger`] execution over the
    /// session's compiled base.
    pub fn merged(&self) -> Result<MergeOutcome, MergeError> {
        let report = Merger::new()
            .onto_base(&self.base)
            .with_consistency(&self.consistency)
            .execute()?;
        Ok(MergeOutcome {
            weak: self.current().clone(),
            proper: report.proper,
            report: report.implicit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::complete_compiled;
    use crate::merger::EnginePreference;
    use crate::name::Label;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// The n-ary weak join through the façade.
    fn join_all<'a>(
        schemas: impl IntoIterator<Item = &'a WeakSchema>,
    ) -> Result<WeakSchema, MergeError> {
        Merger::new().schemas(schemas).join().map(Joined::into_weak)
    }

    /// The n-ary join on the batch compiled engine, both representations.
    fn join_all_compiled<'a>(
        schemas: impl IntoIterator<Item = &'a WeakSchema>,
    ) -> Result<(WeakSchema, CompiledSchema), MergeError> {
        let (weak, compiled) = Merger::new()
            .schemas(schemas)
            .engine(EnginePreference::Compiled)
            .join()?
            .into_parts();
        Ok((weak.unwrap(), compiled.unwrap()))
    }

    /// The paper's full merge through the façade (compiled engine, so
    /// the outcome triple carries the symbolic weak join).
    fn merge_all<'a>(
        schemas: impl IntoIterator<Item = &'a WeakSchema>,
    ) -> Result<MergeOutcome, MergeError> {
        Merger::new()
            .schemas(schemas)
            .engine(EnginePreference::Compiled)
            .execute()
            .map(crate::merger::MergeReport::into_outcome)
    }

    fn dog_schema_one() -> WeakSchema {
        // §3's example: Dog with License#, Owner, Breed.
        WeakSchema::builder()
            .arrow("Dog", "License#", "int")
            .arrow("Dog", "Owner", "Person")
            .arrow("Dog", "Breed", "breed")
            .build()
            .unwrap()
    }

    fn dog_schema_two() -> WeakSchema {
        // §3's example: Dog with Name, Age, Breed.
        WeakSchema::builder()
            .arrow("Dog", "Name", "string")
            .arrow("Dog", "Age", "int")
            .arrow("Dog", "Breed", "breed")
            .build()
            .unwrap()
    }

    #[test]
    fn same_name_classes_collapse() {
        // The §3 example: the two Dog classes merge into one carrying all
        // five arrows.
        let merged = weak_join(&dog_schema_one(), &dog_schema_two()).unwrap();
        assert_eq!(merged.labels_of(&c("Dog")).len(), 5);
        assert!(merged.has_arrow(&c("Dog"), &l("Breed"), &c("breed")));
    }

    #[test]
    fn join_is_upper_bound() {
        let g1 = dog_schema_one();
        let g2 = dog_schema_two();
        let joined = weak_join(&g1, &g2).unwrap();
        assert!(g1.is_subschema_of(&joined));
        assert!(g2.is_subschema_of(&joined));
    }

    #[test]
    fn join_is_least() {
        // Any other upper bound contains the join.
        let g1 = dog_schema_one();
        let g2 = dog_schema_two();
        let joined = weak_join(&g1, &g2).unwrap();
        let bigger = WeakSchema::builder()
            .arrow("Dog", "License#", "int")
            .arrow("Dog", "Owner", "Person")
            .arrow("Dog", "Breed", "breed")
            .arrow("Dog", "Name", "string")
            .arrow("Dog", "Age", "int")
            .arrow("Dog", "Extra", "thing")
            .specialize("Puppy", "Dog")
            .build()
            .unwrap();
        assert!(g1.is_subschema_of(&bigger) && g2.is_subschema_of(&bigger));
        assert!(joined.is_subschema_of(&bigger));
    }

    #[test]
    fn join_laws() {
        let g1 = dog_schema_one();
        let g2 = dog_schema_two();
        let g3 = WeakSchema::builder()
            .specialize("Guide-dog", "Dog")
            .build()
            .unwrap();

        // Commutativity.
        assert_eq!(weak_join(&g1, &g2).unwrap(), weak_join(&g2, &g1).unwrap());
        // Associativity.
        let left = weak_join(&weak_join(&g1, &g2).unwrap(), &g3).unwrap();
        let right = weak_join(&g1, &weak_join(&g2, &g3).unwrap()).unwrap();
        assert_eq!(left, right);
        // n-ary agrees with folds.
        assert_eq!(join_all([&g1, &g2, &g3]).unwrap(), left);
        // Idempotence and unit.
        assert_eq!(weak_join(&g1, &g1).unwrap(), g1);
        assert_eq!(weak_join(&g1, &WeakSchema::empty()).unwrap(), g1);
    }

    #[test]
    fn incompatible_schemas_are_rejected_with_witness() {
        let g1 = WeakSchema::builder().specialize("A", "B").build().unwrap();
        let g2 = WeakSchema::builder().specialize("B", "A").build().unwrap();
        // Each is fine alone; together the specialization order collapses.
        match weak_join(&g1, &g2).unwrap_err() {
            MergeError::Incompatible(witness) => {
                assert_eq!(witness.path.first(), witness.path.last());
                assert!(witness.path.contains(&c("A")));
                assert!(witness.path.contains(&c("B")));
            }
            other => panic!("expected incompatibility, got {other}"),
        }
        assert!(!are_compatible([&g1, &g2]));
        assert!(are_compatible([&g1, &g1]));
    }

    #[test]
    fn three_way_incompatibility() {
        // Pairwise compatible, jointly incompatible: A⇒B, B⇒C, C⇒A.
        let g1 = WeakSchema::builder().specialize("A", "B").build().unwrap();
        let g2 = WeakSchema::builder().specialize("B", "C").build().unwrap();
        let g3 = WeakSchema::builder().specialize("C", "A").build().unwrap();
        assert!(are_compatible([&g1, &g2]));
        assert!(are_compatible([&g2, &g3]));
        assert!(are_compatible([&g1, &g3]));
        assert!(!are_compatible([&g1, &g2, &g3]));
    }

    #[test]
    fn merge_produces_proper_schema() {
        let g1 = WeakSchema::builder()
            .specialize("C", "A1")
            .specialize("C", "A2")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .arrow("A1", "a", "B1")
            .arrow("A2", "a", "B2")
            .build()
            .unwrap();
        let outcome = merge_all([&g1, &g2]).unwrap();
        assert!(outcome.proper.check_d1());
        assert!(outcome.proper.check_d2());
        assert_eq!(outcome.report.num_implicit(), 1);
        assert!(outcome.weak.is_subschema_of(outcome.proper.as_weak()));
    }

    #[test]
    fn merge_order_independence_including_completion() {
        // Figure 4's G1, G2, G3 (reconstructed): all six merge orders of
        // the *paper's* merge agree, because completion happens once over
        // the weak join. Stepwise protocols go through MergeSession.
        let g1 = WeakSchema::builder()
            .arrow("A", "a", "D")
            .classes(["B", "C", "H"])
            .specialize("B", "A")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder().arrow("B", "a", "E").build().unwrap();
        let g3 = WeakSchema::builder().arrow("B", "a", "F").build().unwrap();

        let orders: Vec<Vec<&WeakSchema>> = vec![
            vec![&g1, &g2, &g3],
            vec![&g1, &g3, &g2],
            vec![&g2, &g1, &g3],
            vec![&g2, &g3, &g1],
            vec![&g3, &g1, &g2],
            vec![&g3, &g2, &g1],
        ];
        let results: Vec<ProperSchema> = orders
            .into_iter()
            .map(|order| merge_all(order).unwrap().proper)
            .collect();
        for pair in results.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
        // And the single implicit class is {D,E,F} as §3 demands.
        let def = Class::implicit([c("D"), c("E"), c("F")]);
        assert!(results[0].contains_class(&def));
        assert!(!results[0].contains_class(&Class::implicit([c("D"), c("E")])));
    }

    #[test]
    fn session_accumulates_schemas_and_assertions() {
        let mut session = MergeSession::new();
        session.add_schema(&dog_schema_one()).unwrap();
        session.add_schema(&dog_schema_two()).unwrap();
        session.assert_specialization("Guide-dog", "Dog").unwrap();
        let outcome = session.merged().unwrap();
        assert!(outcome.proper.specializes(&c("Guide-dog"), &c("Dog")));
        assert!(outcome
            .proper
            .has_arrow(&c("Guide-dog"), &l("Age"), &c("int")));
    }

    #[test]
    fn session_assertion_order_is_irrelevant() {
        let g1 = WeakSchema::builder()
            .arrow("A1", "a", "B1")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .arrow("A2", "a", "B2")
            .build()
            .unwrap();

        let mut s1 = MergeSession::new();
        s1.assert_specialization("C", "A1").unwrap();
        s1.add_schema(&g1).unwrap();
        s1.add_schema(&g2).unwrap();
        s1.assert_specialization("C", "A2").unwrap();

        let mut s2 = MergeSession::new();
        s2.add_schema(&g2).unwrap();
        s2.assert_specialization("C", "A2").unwrap();
        s2.assert_specialization("C", "A1").unwrap();
        s2.add_schema(&g1).unwrap();

        assert_eq!(s1.current(), s2.current());
        assert_eq!(s1.merged().unwrap().proper, s2.merged().unwrap().proper);
    }

    #[test]
    fn session_failed_addition_leaves_state_intact() {
        let mut session = MergeSession::new();
        session.assert_specialization("A", "B").unwrap();
        let before = session.current().clone();
        let err = session.assert_specialization("B", "A").unwrap_err();
        assert!(matches!(err, MergeError::Incompatible(_)));
        assert_eq!(session.current(), &before);
    }

    #[test]
    fn session_add_merged_strips_implicit() {
        // First merge introduces {B1,B2}; feeding the completed result into
        // a new session plus extra information must behave as if the
        // original weak schemas had been merged directly.
        let g1 = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .build()
            .unwrap();
        let first = merge_all([&g1]).unwrap();

        let g2 = WeakSchema::builder().arrow("C", "a", "B3").build().unwrap();

        let mut stepwise = MergeSession::new();
        stepwise.add_merged(&first.proper).unwrap();
        stepwise.add_schema(&g2).unwrap();
        let stepwise_result = stepwise.merged().unwrap().proper;

        let batch = merge_all([&g1, &g2]).unwrap().proper;
        assert_eq!(stepwise_result, batch);
        let b123 = Class::implicit([c("B1"), c("B2"), c("B3")]);
        assert!(batch.contains_class(&b123));
    }

    #[test]
    fn session_consistency_veto() {
        let mut session = MergeSession::new();
        session
            .consistency_mut()
            .declare_inconsistent(c("B1"), c("B2"));
        session.assert_arrow("C", "a", "B1").unwrap();
        session.assert_arrow("C", "a", "B2").unwrap();
        let err = session.merged().unwrap_err();
        assert!(matches!(err, MergeError::Inconsistent { .. }));
    }

    #[test]
    fn consistency_veto_through_the_facade() {
        let g = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .build()
            .unwrap();
        let ok = Merger::new()
            .schema(&g)
            .with_consistency(&ConsistencyRelation::assume_consistent())
            .execute();
        assert!(ok.is_ok());
        let mut rel = ConsistencyRelation::assume_consistent();
        rel.declare_inconsistent(c("B1"), c("B2"));
        assert!(matches!(
            Merger::new().schema(&g).with_consistency(&rel).execute(),
            Err(MergeError::Inconsistent { .. })
        ));
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let outcome = merge_all(std::iter::empty::<&WeakSchema>()).unwrap();
        assert_eq!(outcome.proper.num_classes(), 0);
        assert_eq!(outcome.weak, WeakSchema::empty());
    }

    #[test]
    fn compiled_engine_agrees_with_symbolic() {
        let g1 = dog_schema_one();
        let g2 = dog_schema_two();
        let g3 = WeakSchema::builder()
            .specialize("C", "Dog")
            .specialize("C", "Person")
            .arrow("Dog", "Owner", "Company")
            .build()
            .unwrap();
        let batch = merge_all([&g1, &g2, &g3]).unwrap();
        let symbolic = Merger::new()
            .schemas([&g1, &g2, &g3])
            .engine(EnginePreference::Symbolic)
            .execute()
            .map(crate::merger::MergeReport::into_outcome)
            .unwrap();
        assert_eq!(batch, symbolic);
    }

    #[test]
    fn compiled_engine_reports_incompatibility() {
        let g1 = WeakSchema::builder().specialize("A", "B").build().unwrap();
        let g2 = WeakSchema::builder().specialize("B", "A").build().unwrap();
        match merge_all([&g1, &g2]).unwrap_err() {
            MergeError::Incompatible(witness) => {
                assert_eq!(witness.path.first(), witness.path.last());
                assert!(witness.path.contains(&c("A")));
            }
            other => panic!("expected incompatibility, got {other}"),
        }
    }

    #[test]
    fn partial_join_entry_points_reproduce_merge_compiled() {
        // The registry's incremental shape: join N-1 schemas, cache the
        // weak result, join it with the last schema and complete reusing
        // the compiled form — all three stages must agree with the batch.
        let g1 = dog_schema_one();
        let g2 = dog_schema_two();
        let g3 = WeakSchema::builder()
            .specialize("Guide-dog", "Dog")
            .arrow("Dog", "Owner", "Company")
            .build()
            .unwrap();
        let (rest, _) = join_all_compiled([&g1, &g2]).unwrap();
        let (weak, compiled) = join_all_compiled([&rest, &g3]).unwrap();
        let (proper, report) = complete_compiled(&weak, &compiled).unwrap();
        let batch = merge_all([&g1, &g2, &g3]).unwrap();
        assert_eq!(weak, batch.weak);
        assert_eq!(proper, batch.proper);
        assert_eq!(report, batch.report);
    }

    #[test]
    fn join_onto_compiled_equals_symbolic_join() {
        let g1 = dog_schema_one();
        let g2 = dog_schema_two();
        // Extras whose symbols all exist (id-stable), sort before existing
        // ones (remap path), and add fresh labels.
        for extra in [
            WeakSchema::builder().arrow("Dog", "Owner", "Dog").build(),
            WeakSchema::builder()
                .specialize("Aardvark-dog", "Dog")
                .arrow("Aardvark-dog", "AAA-first", "Dog")
                .build(),
        ] {
            let extra = extra.unwrap();
            let (_, base) = join_all_compiled([&g1, &g2]).unwrap();
            let (_, compiled) = Merger::new()
                .onto_base(&base)
                .schema(&extra)
                .join()
                .unwrap()
                .into_parts();
            let compiled = compiled.unwrap();
            let direct = join_all([&g1, &g2, &extra]).unwrap();
            assert_eq!(compiled.decompile(), direct);
            // The compiled join chains straight into completion: a
            // base-only execution completes the cached join as-is.
            let completed = Merger::new().onto_base(&compiled).execute().unwrap();
            let batch = merge_all([&g1, &g2, &extra]).unwrap();
            assert_eq!(completed.proper, batch.proper);
            assert_eq!(completed.implicit, batch.report);
        }
    }

    #[test]
    fn join_onto_compiled_reports_incompatibility() {
        let up = WeakSchema::builder().specialize("A", "B").build().unwrap();
        let (_, base) = join_all_compiled([&up]).unwrap();
        let down = WeakSchema::builder().specialize("B", "A").build().unwrap();
        assert!(matches!(
            Merger::new().onto_base(&base).schema(&down).join(),
            Err(MergeError::Incompatible(_))
        ));
    }

    #[test]
    fn partial_join_reports_incompatibility() {
        let g1 = WeakSchema::builder().specialize("A", "B").build().unwrap();
        let g2 = WeakSchema::builder().specialize("B", "A").build().unwrap();
        assert!(matches!(
            join_all_compiled([&g1, &g2]),
            Err(MergeError::Incompatible(_))
        ));
    }

    #[test]
    fn compiled_engine_handles_preexisting_implicit_classes() {
        // A completed result fed back in (with its implicit class) must
        // take the canonicalization path and still agree with the
        // symbolic engine.
        let g1 = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .build()
            .unwrap();
        let first = merge_all([&g1]).unwrap();
        let g2 = WeakSchema::builder()
            .specialize("B1", "B2")
            .arrow("C", "a", "B3")
            .build()
            .unwrap();
        let batch = merge_all([first.proper.as_weak(), &g2]).unwrap();
        let symbolic = Merger::new()
            .schemas([first.proper.as_weak(), &g2])
            .engine(EnginePreference::Symbolic)
            .execute()
            .map(crate::merger::MergeReport::into_outcome)
            .unwrap();
        assert_eq!(batch, symbolic);
    }
}
