//! Interned identifiers for classes and arrow labels.
//!
//! The paper draws class names and arrow labels from two fixed vocabularies
//! `N` and `L` (§2). Both are plain strings here; we wrap them in cheaply
//! clonable, order-comparable handles because schemas copy names around
//! heavily during closure computation and merging.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A shared, immutable string used for both [`Name`]s and [`Label`]s.
///
/// Cloning is a reference-count bump. Ordering and hashing delegate to the
/// underlying string, so two independently created symbols with the same
/// text compare equal — interning is for cheap cloning, not identity.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct Symbol(Arc<str>);

impl Symbol {
    pub(crate) fn new(text: &str) -> Self {
        Symbol(Arc::from(text))
    }

    pub(crate) fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

macro_rules! string_handle {
    ($(#[$doc:meta])* $vis:vis struct $ty:ident) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis struct $ty(Symbol);

        impl $ty {
            /// Creates a handle from the given text.
            $vis fn new(text: impl AsRef<str>) -> Self {
                $ty(Symbol::new(text.as_ref()))
            }

            /// The underlying text.
            $vis fn as_str(&self) -> &str {
                self.0.as_str()
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($ty), "({:?})"), self.as_str())
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl From<&str> for $ty {
            fn from(text: &str) -> Self {
                $ty::new(text)
            }
        }

        impl From<String> for $ty {
            fn from(text: String) -> Self {
                $ty::new(&text)
            }
        }

        impl From<&$ty> for $ty {
            fn from(handle: &$ty) -> Self {
                handle.clone()
            }
        }

        impl Borrow<str> for $ty {
            fn borrow(&self) -> &str {
                self.as_str()
            }
        }

        impl AsRef<str> for $ty {
            fn as_ref(&self) -> &str {
                self.as_str()
            }
        }
    };
}

string_handle! {
    /// The name of a (named) class — an element of the vocabulary `N` (§2).
    ///
    /// The merge interprets equal names across schemas as the *same* class
    /// (§3): renaming to resolve homonyms/synonyms is the user's
    /// responsibility before merging.
    pub struct Name
}

string_handle! {
    /// An arrow label — an element of the vocabulary `L` (§2).
    ///
    /// `p --a--> q` states that every instance of class `p` has an
    /// `a`-attribute belonging to class `q`.
    pub struct Label
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_compare_by_content() {
        let a1 = Name::new("Dog");
        let a2 = Name::from("Dog");
        let b = Name::new("Cat");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert!(b < a1, "Cat orders before Dog");
    }

    #[test]
    fn labels_and_names_are_distinct_types() {
        // Purely a compile-time property; keep a runtime witness anyway.
        let n = Name::new("age");
        let l = Label::new("age");
        assert_eq!(n.as_str(), l.as_str());
    }

    #[test]
    fn display_is_bare_text() {
        assert_eq!(Name::new("Kennel").to_string(), "Kennel");
        assert_eq!(Label::new("addr").to_string(), "addr");
    }

    #[test]
    fn debug_includes_type() {
        assert_eq!(format!("{:?}", Name::new("A")), "Name(\"A\")");
        assert_eq!(format!("{:?}", Label::new("a")), "Label(\"a\")");
    }

    #[test]
    fn usable_in_btreeset_with_str_lookup() {
        let mut set = BTreeSet::new();
        set.insert(Name::new("Person"));
        assert!(set.contains("Person"));
        assert!(!set.contains("Dog"));
    }

    #[test]
    fn clone_is_shallow() {
        let a = Name::new("VeryLongClassNameThatWouldBeExpensiveToCopy");
        let b = a.clone();
        // Arc-backed: both views point at the same allocation.
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }
}
