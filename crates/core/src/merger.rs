//! The unified merge façade: one builder over every engine and pass.
//!
//! The paper's central result is that merging is a *single* associative,
//! commutative least-upper-bound operator (§4); this module is the single
//! API that operator is reached through. A [`Merger`] collects inputs
//! (schemas, annotated schemas, user assertions, an optional cached
//! compiled base), constraints (consistency relation, key contributions)
//! and preferences (engine, upper vs lower mode), produces an inspectable
//! [`MergePlan`] describing exactly what will run, and executes it into a
//! unified [`MergeReport`] — merged schema, implicit-class table, key
//! assignment, per-input provenance and structured
//! [`Diagnostic`]s.
//!
//! ```
//! use schema_merge_core::merger::Merger;
//! use schema_merge_core::{Class, WeakSchema};
//!
//! let g1 = WeakSchema::builder().arrow("Dog", "license", "int").build()?;
//! let g2 = WeakSchema::builder().arrow("Dog", "name", "string").build()?;
//!
//! let merger = Merger::new()
//!     .schema(&g1)
//!     .schema(&g2)
//!     .assert_specialization("Guide-dog", "Dog");
//! println!("{}", merger.plan());
//! let report = merger.execute()?;
//! assert_eq!(report.proper.labels_of(&Class::named("Guide-dog")).len(), 2);
//! # Ok::<(), schema_merge_core::MergeError>(())
//! ```
//!
//! ## Engines
//!
//! Planning resolves an [`EnginePreference`] into the [`PlannedEngine`]
//! that actually runs:
//!
//! * **`Compiled`** (the default) — inputs are interned once into dense
//!   ids; join and completion run on bitset closures and CSR adjacency
//!   ([`crate::compile`]).
//! * **`CompiledOntoBase`** — chosen automatically when
//!   [`Merger::onto_base`] supplies a cached [`CompiledSchema`]: the base
//!   is transferred in id space and only the extra inputs are interned
//!   (the registry's incremental re-merge shape).
//! * **`Symbolic`** — the retained reference algorithms
//!   ([`crate::reference`]), for differential testing.
//!
//! All three produce **equal** results (property-tested per workload
//! family); the engine is a cost choice, never a semantics choice.
//!
//! ## Modes
//!
//! Upper mode (default) computes the paper's merge: weak least upper
//! bound, then completion with implicit *meet* classes (§4). Lower mode
//! ([`Merger::lower`]) computes the federated greatest lower bound with
//! union classes and participation weakening (§6).

use crate::class::Class;
use crate::compile::{self, CompiledSchema};
use crate::complete::{
    check_consistency, complete_from_compiled_impl, complete_impl, CompletionReport,
    Engine as CompletionEngine,
};
use crate::consistency::ConsistencyRelation;
use crate::diagnostic::Diagnostic;
use crate::error::{MergeError, SchemaError};
use crate::keys::{KeyAssignment, SuperkeyFamily};
use crate::lower::{
    annotated_join, lower_complete, lower_merge, AnnotatedSchema, LowerCompletionReport,
};
use crate::name::Label;
use crate::parallel;
use crate::partition::{self, Partitioning};
use crate::proper::ProperSchema;
use crate::weak::WeakSchema;
use schema_merge_telemetry::{self as telemetry, SpanRecord};
use std::fmt;

/// Which engine the caller *prefers*; planning resolves it into the
/// [`PlannedEngine`] that actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum EnginePreference {
    /// Let the planner pick: the compiled engine for small merges, the
    /// parallel engine once the [work estimate](MergePlan::work_units)
    /// crosses [`PARALLEL_WORK_THRESHOLD`], and the onto-base engine when
    /// a cached base was supplied. The right choice outside differential
    /// tests.
    #[default]
    Auto,
    /// Force the retained symbolic reference algorithms.
    Symbolic,
    /// Force the compiled engine (re-interning the base if one was
    /// supplied).
    Compiled,
    /// Force the parallel engine: sharded interning against a shared
    /// interner, tree-reduction join, frontier-parallel completion —
    /// end-to-end in id space ([`crate::parallel`]).
    Parallel,
    /// Force the partition pass: split the merge along weakly-connected
    /// components of the combined specialization+arrow graph and merge
    /// each component independently, joining at the (empty) seams. Falls
    /// back to `Auto` resolution when the graph is a single component or
    /// the shape is ineligible (lower mode, annotated inputs, a cached
    /// base).
    Partitioned,
}

/// The engine a [`MergePlan`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlannedEngine {
    /// Symbolic `BTreeMap`/`BTreeSet` algorithms ([`crate::reference`]).
    Symbolic,
    /// Dense-id bitset/CSR engine ([`crate::compile`]).
    Compiled,
    /// Compiled engine joining extras onto a cached compiled base.
    CompiledOntoBase,
    /// Tree-reduction join and frontier-parallel completion over
    /// [`MergePlan::threads`] scoped workers, never materializing the
    /// symbolic join ([`MergeReport::weak`] is `None`, as on the
    /// onto-base path). Bit-identical results to [`Compiled`]
    /// (`proper`, `implicit` and every downstream pass) at every thread
    /// count.
    ///
    /// [`Compiled`]: PlannedEngine::Compiled
    Parallel,
    /// The merge splits along the [`MergePlan::partitions`]
    /// weakly-connected components of the combined specialization+arrow
    /// graph; each component merges independently (resolving its own
    /// sub-engine, so big components still run the parallel pipeline) and
    /// the results join at the seams as a disjoint union. Results equal
    /// every other engine's; [`MergeReport::weak`] is stitched from the
    /// component joins and [`MergeReport::compiled`] is `None` (no single
    /// interner spans the components).
    Partitioned,
}

impl PlannedEngine {
    /// The lower-case wire/report name.
    pub fn as_str(self) -> &'static str {
        match self {
            PlannedEngine::Symbolic => "symbolic",
            PlannedEngine::Compiled => "compiled",
            PlannedEngine::CompiledOntoBase => "compiled-onto-base",
            PlannedEngine::Parallel => "parallel",
            PlannedEngine::Partitioned => "partitioned",
        }
    }
}

impl fmt::Display for PlannedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Upper (least upper bound, §4) or lower (greatest lower bound, §6)
/// merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MergeMode {
    /// The paper's merge: weak join + completion with meet classes.
    Upper,
    /// The federated view: GLB + union classes + participation weakening.
    Lower,
}

impl MergeMode {
    /// The lower-case wire/report name.
    pub fn as_str(self) -> &'static str {
        match self {
            MergeMode::Upper => "upper",
            MergeMode::Lower => "lower",
        }
    }
}

impl fmt::Display for MergeMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One pass of a [`MergePlan`], in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MergePass {
    /// The least-upper-bound (or, in lower mode, greatest-lower-bound)
    /// join of the inputs.
    Join,
    /// §4.2 completion: implicit meet classes below incomparable arrow
    /// targets.
    Completion,
    /// §6 lower completion: union classes above incomparable arrow
    /// targets.
    LowerCompletion,
    /// The §4.2 consistency check over the implicit-class table.
    ConsistencyCheck,
    /// §5: the unique minimal satisfactory key assignment.
    KeyAssignment,
    /// Transfer of the joined participation annotations onto the
    /// completed schema.
    ParticipationTransfer,
}

impl MergePass {
    /// The lower-case wire/report name.
    pub fn as_str(self) -> &'static str {
        match self {
            MergePass::Join => "join",
            MergePass::Completion => "completion",
            MergePass::LowerCompletion => "lower-completion",
            MergePass::ConsistencyCheck => "consistency-check",
            MergePass::KeyAssignment => "key-assignment",
            MergePass::ParticipationTransfer => "participation-transfer",
        }
    }
}

impl fmt::Display for MergePass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The [work-unit](MergePlan::work_units) level at which an `Auto` plan
/// switches from the sequential compiled engine to the parallel engine.
/// Below it, the parallel pipeline's setup (shared-interner tables, wave
/// buffers, worker spawns) costs more than it saves; above it, the merge
/// is dominated by interning and the `Imp` fixpoint, both of which the
/// parallel engine shards.
pub const PARALLEL_WORK_THRESHOLD: u64 = 10_000;

/// The input count at which an `Auto` plan switches to the parallel
/// engine regardless of the work estimate: with this many member
/// schemas the merge is dominated by walking the inputs (the wide
/// registry-rebuild shape), which the parallel join shards perfectly —
/// per-input size signals cannot see this, because the collisions that
/// make such merges expensive only materialize in the join.
pub const PARALLEL_INPUT_THRESHOLD: usize = 16;

/// The class count at which `Auto` planning pays for the
/// weakly-connected-component analysis that can split the merge into
/// independent partitions. Below it the analysis walk costs more than
/// partitioning could save; above it a disconnected vocabulary (taxonomy
/// forests, federations of unrelated domains) merges per component,
/// bounding both wall time and the peak closure footprint by the largest
/// component instead of the whole vocabulary.
pub const PARTITION_CLASS_THRESHOLD: usize = 4096;

/// What a [`Merger`] will do when executed: engine, passes and an
/// estimate of the work involved. Produced by [`Merger::plan`] — cheap,
/// side-effect free, and inspectable before committing to the merge.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct MergePlan {
    /// Upper or lower merge.
    pub mode: MergeMode,
    /// The engine that will run. When annotated inputs force the
    /// participation-aware join, the closure and completion still run on
    /// this engine, but the compiled join is not retained
    /// ([`MergeReport::compiled`] is `None`): the participation
    /// bookkeeping lives on the symbolic representation.
    pub engine: PlannedEngine,
    /// The worker-thread budget: the caller's [`Merger::threads`] if
    /// set, the machine's available parallelism when the parallel
    /// engine was auto-selected, 1 otherwise. At execution time the
    /// budget is additionally capped at the machine's available
    /// parallelism (oversubscribing cores with CPU-bound bit sweeps
    /// only adds scheduler overhead).
    pub threads: usize,
    /// The passes, in execution order.
    pub passes: Vec<MergePass>,
    /// Number of input schemas (weak + annotated; assertions counted
    /// separately).
    pub num_inputs: usize,
    /// Number of user assertions (elementary schemas).
    pub num_assertions: usize,
    /// Whether a cached compiled base is reused.
    pub reuses_base: bool,
    /// Classes carried by the reused base (0 without one).
    pub base_classes: usize,
    /// Upper bound on the classes the join must consider (sum over
    /// inputs and base — the merged schema can only be smaller).
    pub estimated_classes: usize,
    /// Upper bound on the arrows the join must consider.
    pub estimated_arrows: usize,
    /// Upper bound on the transitively-closed specialization pairs the
    /// join must consider — inputs arrive closed, so their pair counts
    /// measure the *density* of the order, which raw class counts miss.
    pub estimated_spec_pairs: usize,
    /// Upper bound on the distinct `(class, label)` arrow pairs. The
    /// excess of [`estimated_arrows`](MergePlan::estimated_arrows) over
    /// this is the inputs' NFA branching — the driver of the `Imp`
    /// fixpoint's state count.
    pub estimated_arrow_pairs: usize,
    /// The weakly-connected components a
    /// [`Partitioned`](PlannedEngine::Partitioned) plan merges
    /// independently. `1` on every other plan (including plans that never
    /// ran the component analysis).
    pub partitions: usize,
}

impl MergePlan {
    /// A scalar work estimate combining input size with closure density,
    /// used by `Auto` planning to route merges to the parallel engine.
    ///
    /// Linear terms count the symbols the join walks (classes, arrows)
    /// and the closed specialization pairs the closure and `MinS`/`MaxS`
    /// sweeps touch. The fixpoint term is driven by *branching* — arrows
    /// in excess of distinct `(class, label)` pairs — because the `Imp`
    /// fixpoint is an NFA subset construction: without branching it
    /// discovers only singleton states (linear), while each extra target
    /// can double the reachable state space. A pathological 11-class NFA
    /// therefore out-weighs a plain 400-class schema, which the previous
    /// raw-size estimate got exactly backwards.
    ///
    /// One subtlety keeps the exponential honest: the inputs arrive
    /// *closed*, and the W2 closure lifts every arrow target upward, so
    /// a specialization-heavy schema shows excess targets that the
    /// fixpoint's `MinS` canonicalization collapses straight back to
    /// singletons. Excess only signals subset-construction hardness when
    /// it is large *relative to the pair count* (genuinely NFA-shaped
    /// inputs, where branching is the rule rather than the closure's
    /// echo); mild excess is weighed per closure-row *population*
    /// instead. The old mild-excess weight was the dense row width
    /// (every extra target paid a `classes`-wide sweep), which
    /// over-routed large *sparse* taxonomies — 10k classes, shallow
    /// closure — to the parallel engine even when their actual `MinS`
    /// sweeps touch only the handful of ancestors each adaptive row
    /// stores. With adaptive rows the sweep cost is the average closed
    /// row population (`spec_pairs / classes`), so that is the weight.
    pub fn work_units(&self) -> u64 {
        let linear =
            (self.estimated_classes + self.estimated_arrows + self.estimated_spec_pairs) as u64;
        let excess = self
            .estimated_arrows
            .saturating_sub(self.estimated_arrow_pairs) as u64;
        let pairs = self.estimated_arrow_pairs.max(1) as u64;
        let fixpoint = if excess >= 8 && excess * 2 >= pairs {
            // NFA-shaped: 2^excess states, saturated past any threshold.
            (self.estimated_classes as u64).saturating_mul(1u64 << excess.min(20))
        } else {
            // Mostly W2 lift: each extra target pays one `MinS` sweep
            // over an adaptive closure row of average population
            // `spec_pairs / classes` (dense width would be `classes`).
            let avg_row = (self.estimated_spec_pairs as u64)
                .div_ceil(self.estimated_classes.max(1) as u64)
                .max(1);
            excess.saturating_mul(avg_row)
        };
        linear.saturating_add(fixpoint)
    }
}

impl fmt::Display for MergePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan: {} merge, engine={}, inputs={}",
            self.mode, self.engine, self.num_inputs
        )?;
        if self.engine == PlannedEngine::Parallel {
            write!(f, ", threads={}", self.threads)?;
        }
        if self.engine == PlannedEngine::Partitioned {
            write!(
                f,
                ", partitions={}, threads={}",
                self.partitions, self.threads
            )?;
        }
        if self.num_assertions > 0 {
            write!(f, " (+{} assertions)", self.num_assertions)?;
        }
        if self.reuses_base {
            write!(f, ", cached base of {} classes", self.base_classes)?;
        }
        writeln!(f)?;
        write!(f, "passes:")?;
        for (i, pass) in self.passes.iter().enumerate() {
            write!(f, "{} {pass}", if i == 0 { "" } else { " ->" })?;
        }
        writeln!(f)?;
        write!(
            f,
            "estimated work: <= {} classes, <= {} arrows, <= {} spec pairs ({} work units)",
            self.estimated_classes,
            self.estimated_arrows,
            self.estimated_spec_pairs,
            self.work_units()
        )
    }
}

/// Where one input came from and what it contributed — recorded per
/// input, in the order they were added.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct InputProvenance {
    /// Zero-based position in the merge.
    pub index: usize,
    /// The caller-supplied name, when one was given.
    pub name: Option<String>,
    /// Classes in the input.
    pub classes: usize,
    /// Arrows in the input.
    pub arrows: usize,
    /// Strict specialization pairs in the input.
    pub specializations: usize,
    /// `0/1` arrows the input carried (annotated inputs only).
    pub optional_arrows: usize,
    /// The input's canonical content hash — recorded for **named**
    /// inputs only. Naming an input opts it into traceability; anonymous
    /// batch inputs skip the canonical hashing walk, which keeps the
    /// façade overhead-free on the hot merge paths (the walk costs ~5%
    /// of a large batch merge).
    pub content_hash: Option<u64>,
}

/// The phase-level execution trace of one merge: every telemetry span
/// the engine emitted while executing the plan — one per executed
/// [`MergePass`] (named by [`MergePass::as_str`]), plus the
/// `partition-split`/`partition-stitch` bookkeeping of a partitioned
/// plan and one `merge` root span covering the whole execution.
/// Collected only when [`Merger::trace`] asked for it; a trace never
/// changes the merge result, only observes it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MergeTrace {
    /// The captured spans, in completion order (children before
    /// parents on the same thread; partitioned component spans first).
    pub spans: Vec<SpanRecord>,
}

/// Renders a nanosecond duration at human scale (`870ns`, `13.4µs`,
/// `2.08ms`, `1.50s`).
fn human_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}\u{b5}s", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

impl MergeTrace {
    /// The root `merge` span (the last one captured: a partitioned
    /// plan's component sub-merges contribute their own inner `merge`
    /// spans, which finish before the outer root does).
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().rev().find(|span| span.name == "merge")
    }

    /// Wall-clock duration of the root span, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.root().map_or(0, |root| root.duration_ns)
    }

    /// Total duration per phase name, in first-appearance order —
    /// every non-root span summed by name, so a partitioned merge's
    /// per-component `join` spans fold into one `join` entry.
    pub fn phase_ns(&self) -> Vec<(&'static str, u64)> {
        let mut totals: Vec<(&'static str, u64)> = Vec::new();
        for span in &self.spans {
            if span.name == "merge" {
                continue;
            }
            match totals.iter_mut().find(|(name, _)| *name == span.name) {
                Some((_, total)) => *total = total.saturating_add(span.duration_ns),
                None => totals.push((span.name, span.duration_ns)),
            }
        }
        totals
    }

    /// A deterministic indented tree rendering: one line per span with
    /// its human-scale duration and `key=value` attrs, children under
    /// parents ordered by start time.
    pub fn render(&self) -> String {
        fn write_span(out: &mut String, spans: &[SpanRecord], span: &SpanRecord, depth: usize) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(span.name);
            out.push(' ');
            out.push_str(&human_ns(span.duration_ns));
            if !span.attrs.is_empty() {
                out.push_str(" (");
                for (i, (key, value)) in span.attrs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("{key}={value}"));
                }
                out.push(')');
            }
            out.push('\n');
            let mut children: Vec<&SpanRecord> = spans
                .iter()
                .filter(|child| child.parent == Some(span.id))
                .collect();
            children.sort_by_key(|child| (child.start_ns, child.id));
            for child in children {
                write_span(out, spans, child, depth + 1);
            }
        }

        let known: std::collections::BTreeSet<u64> =
            self.spans.iter().map(|span| span.id).collect();
        let mut roots: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|span| span.parent.is_none_or(|parent| !known.contains(&parent)))
            .collect();
        roots.sort_by_key(|span| (span.start_ns, span.id));
        let mut out = String::new();
        for root in roots {
            write_span(&mut out, &self.spans, root, 0);
        }
        out
    }
}

/// Everything a merge produced, in one structure.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct MergeReport {
    /// The plan that was executed.
    pub plan: MergePlan,
    /// The weak join of the inputs (upper mode) or the GLB schema (lower
    /// mode). `None` on the onto-base and parallel paths, where
    /// materializing the pre-completion join symbolically would cost an
    /// extra decompile those engines exist to avoid — the completed
    /// schema is [`MergeReport::proper`] either way.
    pub weak: Option<WeakSchema>,
    /// The completed merged schema — the paper's `Ḡ`.
    pub proper: ProperSchema,
    /// The implicit-class table: which meet classes completion introduced
    /// and why (empty in lower mode; see [`MergeReport::lower`]).
    pub implicit: CompletionReport,
    /// The §5 minimal satisfactory key assignment (empty when no key
    /// contributions were supplied).
    pub keys: KeyAssignment,
    /// The completed schema with participation marks — present when any
    /// input was annotated, and always in lower mode.
    pub annotated: Option<AnnotatedSchema>,
    /// The §6 union-class report (lower mode only).
    pub lower: Option<LowerCompletionReport>,
    /// Per-input provenance, in input order.
    pub provenance: Vec<InputProvenance>,
    /// Structured diagnostics from planning and execution. Fatal errors
    /// are returned as `Err` from [`Merger::execute`] instead.
    pub diagnostics: Vec<Diagnostic>,
    /// The compiled form of the weak join, when the compiled engine ran
    /// a join — the interner a later incremental merge (or the
    /// registry's join cache) can build on. `None` when a cached base
    /// was completed with nothing joined onto it: the base itself is the
    /// join, and the caller already holds it.
    pub compiled: Option<CompiledSchema>,
    /// The phase-level execution trace — present only when the merge
    /// ran with [`Merger::trace`] enabled. Purely observational: every
    /// other field is bit-identical with tracing on or off.
    pub trace: Option<MergeTrace>,
    /// Cross-registry composition provenance — attached by the
    /// supergraph layer after a composed merge
    /// ([`crate::compose::ComposeProvenance`]); `None` on every direct
    /// merge.
    pub origins: Option<crate::compose::ComposeProvenance>,
}

impl MergeReport {
    /// Extracts the historical outcome triple (weak join, proper schema,
    /// completion report) that pre-façade callers consume. Plans that
    /// skip the symbolic join (parallel, onto-base with extras)
    /// decompile their compiled join here, on demand.
    ///
    /// # Panics
    ///
    /// When the report came from a base-only plan (nothing was joined,
    /// so no join representation exists — the caller already holds the
    /// base; see [`MergeReport::weak`]).
    pub fn into_outcome(self) -> crate::merge::MergeOutcome {
        let weak = match (self.weak, &self.compiled) {
            (Some(weak), _) => weak,
            (None, Some(compiled)) => compiled.decompile(),
            (None, None) => {
                panic!("base-only plans carry no join; the caller already holds the base")
            }
        };
        crate::merge::MergeOutcome {
            weak,
            proper: self.proper,
            report: self.implicit,
        }
    }

    /// A deterministic multi-line text summary (plan, result shape,
    /// implicit classes, diagnostics) — the stable rendering used by the
    /// CLI's human output and the snapshot tests.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.plan);
        let weak = self.proper.as_weak();
        let _ = writeln!(
            out,
            "result: {} classes, {} arrows, {} specializations, {} implicit",
            weak.num_classes(),
            weak.num_arrows(),
            weak.num_specializations(),
            self.implicit.num_implicit(),
        );
        for info in &self.implicit.implicit {
            let _ = writeln!(out, "implicit: {} demanded by {}", info.class, info.witness);
        }
        if let Some(lower) = &self.lower {
            for info in &lower.unions {
                let _ = writeln!(
                    out,
                    "union: {} demanded by ({}, {})",
                    info.class, info.demanded_by.0, info.demanded_by.1
                );
            }
        }
        if self.keys.num_keyed_classes() > 0 {
            let _ = writeln!(out, "keys: {} keyed classes", self.keys.num_keyed_classes());
        }
        for diag in &self.diagnostics {
            let _ = writeln!(out, "{diag}");
        }
        out
    }
}

/// The result of [`Merger::join`]: the pre-completion least upper bound,
/// in whichever representations the engine produced.
#[derive(Debug, Clone)]
pub struct Joined {
    weak: Option<WeakSchema>,
    compiled: Option<CompiledSchema>,
}

impl Joined {
    /// The symbolic join, when the engine materialized it (all engines
    /// except onto-base do).
    pub fn weak(&self) -> Option<&WeakSchema> {
        self.weak.as_ref()
    }

    /// The compiled join, when the compiled engine ran.
    pub fn compiled(&self) -> Option<&CompiledSchema> {
        self.compiled.as_ref()
    }

    /// The symbolic join, decompiling the compiled form if the engine
    /// skipped the symbolic materialization.
    pub fn into_weak(self) -> WeakSchema {
        match self.weak {
            Some(weak) => weak,
            None => self
                .compiled
                .expect("a join always produces at least one representation")
                .decompile(),
        }
    }

    /// Both representations.
    pub fn into_parts(self) -> (Option<WeakSchema>, Option<CompiledSchema>) {
        (self.weak, self.compiled)
    }
}

/// A user assertion (§3): an elementary schema merged like any other
/// input, materialized at execution time.
#[derive(Debug, Clone)]
enum Assertion {
    Specialization(Class, Class),
    Arrow(Class, Label, Class),
}

#[derive(Debug, Clone, Copy)]
enum InputKind<'a> {
    Weak(&'a WeakSchema),
    Annotated(&'a AnnotatedSchema),
}

impl InputKind<'_> {
    fn weak(&self) -> &WeakSchema {
        match self {
            InputKind::Weak(schema) => schema,
            InputKind::Annotated(annotated) => annotated.schema(),
        }
    }

    fn optional_arrows(&self) -> usize {
        match self {
            InputKind::Weak(_) => 0,
            InputKind::Annotated(annotated) => annotated.num_optional(),
        }
    }
}

#[derive(Debug, Clone)]
struct Input<'a> {
    name: Option<String>,
    kind: InputKind<'a>,
}

/// Owned-or-borrowed annotated schema, so the participation-aware paths
/// can mix borrowed annotated inputs with on-the-fly conversions of
/// plain weak inputs without cloning the former.
enum Ann<'a> {
    Borrowed(&'a AnnotatedSchema),
    Owned(AnnotatedSchema),
}

impl Ann<'_> {
    fn get(&self) -> &AnnotatedSchema {
        match self {
            Ann::Borrowed(annotated) => annotated,
            Ann::Owned(annotated) => annotated,
        }
    }
}

/// The unified merge builder. See the [module docs](self) for the full
/// story and `examples/merger_facade.rs` for a tour.
///
/// The builder is typestate-flavoured: every method consumes and returns
/// the `Merger`, so a merge reads as one chain ending in
/// [`plan`](Merger::plan), [`execute`](Merger::execute) or
/// [`join`](Merger::join).
#[derive(Default)]
#[must_use = "a Merger does nothing until `.execute()`, `.join()` or `.plan()` is called"]
pub struct Merger<'a> {
    inputs: Vec<Input<'a>>,
    assertions: Vec<Assertion>,
    base: Option<&'a CompiledSchema>,
    consistency: Option<&'a ConsistencyRelation>,
    keys: Vec<(Class, SuperkeyFamily)>,
    engine: EnginePreference,
    threads: Option<usize>,
    lower: bool,
    /// Name of the input whose hierarchy is the *target* of the merge
    /// (ATOM-style target-driven taxonomy merging): the result is the
    /// same least upper bound — §4's associativity is not negotiable —
    /// but the report diagnoses everything the other inputs forced onto
    /// the target's hierarchy.
    target: Option<String>,
    /// Internal: set on the per-component sub-mergers of a partitioned
    /// plan so they never re-run the component analysis.
    no_partition: bool,
    /// Capture a phase-level span trace into [`MergeReport::trace`].
    trace: bool,
}

impl<'a> Merger<'a> {
    /// An empty merger: upper mode, `Auto` engine, no inputs.
    pub fn new() -> Self {
        Merger::default()
    }

    /// Adds one input schema.
    pub fn schema(mut self, schema: &'a WeakSchema) -> Self {
        self.inputs.push(Input {
            name: None,
            kind: InputKind::Weak(schema),
        });
        self
    }

    /// Adds one named input schema; the name flows into provenance and
    /// diagnostics.
    pub fn schema_named(mut self, name: impl Into<String>, schema: &'a WeakSchema) -> Self {
        self.inputs.push(Input {
            name: Some(name.into()),
            kind: InputKind::Weak(schema),
        });
        self
    }

    /// Adds every schema in the iterator.
    pub fn schemas(mut self, schemas: impl IntoIterator<Item = &'a WeakSchema>) -> Self {
        for schema in schemas {
            self = self.schema(schema);
        }
        self
    }

    /// Adds an input with participation annotations (`0/1` arrows). The
    /// joined annotations are transferred onto the completed schema and
    /// returned in [`MergeReport::annotated`].
    pub fn with_participation(mut self, annotated: &'a AnnotatedSchema) -> Self {
        self.inputs.push(Input {
            name: None,
            kind: InputKind::Annotated(annotated),
        });
        self
    }

    /// [`with_participation`](Merger::with_participation) with a name for
    /// provenance and diagnostics.
    pub fn with_participation_named(
        mut self,
        name: impl Into<String>,
        annotated: &'a AnnotatedSchema,
    ) -> Self {
        self.inputs.push(Input {
            name: Some(name.into()),
            kind: InputKind::Annotated(annotated),
        });
        self
    }

    /// Asserts `sub ⇒ sup` — an elementary two-class schema merged like
    /// any other input (§3), so assertion order never matters.
    pub fn assert_specialization(mut self, sub: impl Into<Class>, sup: impl Into<Class>) -> Self {
        self.assertions
            .push(Assertion::Specialization(sub.into(), sup.into()));
        self
    }

    /// Asserts the arrow `src --label--> tgt` as an elementary schema.
    pub fn assert_arrow(
        mut self,
        src: impl Into<Class>,
        label: impl Into<Label>,
        tgt: impl Into<Class>,
    ) -> Self {
        self.assertions
            .push(Assertion::Arrow(src.into(), label.into(), tgt.into()));
        self
    }

    /// Applies the §4.2 consistency check after completion: the merge
    /// fails with [`MergeError::Inconsistent`] if an implicit class would
    /// identify classes the relation declares inconsistent. Ignored (with
    /// a warning diagnostic) in lower mode, which introduces union — not
    /// meet — classes.
    pub fn with_consistency(mut self, consistency: &'a ConsistencyRelation) -> Self {
        self.consistency = Some(consistency);
        self
    }

    /// Contributes key families for `class` (§5). All contributions are
    /// combined into the unique minimal satisfactory assignment over the
    /// completed schema, returned in [`MergeReport::keys`].
    pub fn with_keys(mut self, class: impl Into<Class>, family: SuperkeyFamily) -> Self {
        self.keys.push((class.into(), family));
        self
    }

    /// Reuses a cached compiled join as the base of this merge: the base
    /// is transferred in id space and only the other inputs are interned
    /// (the registry's incremental re-merge, [`crate::MergeSession`]'s
    /// accumulation). `base` must be the compiled form of a closed weak
    /// schema, as produced by an earlier compiled join.
    pub fn onto_base(mut self, base: &'a CompiledSchema) -> Self {
        self.base = Some(base);
        self
    }

    /// Overrides the engine choice. Outside differential tests, leave it
    /// on [`EnginePreference::Auto`].
    pub fn engine(mut self, engine: EnginePreference) -> Self {
        self.engine = engine;
        self
    }

    /// Fixes the worker-thread budget for the parallel engine (and for
    /// the frontier-parallel completion pass of the other compiled
    /// plans). Clamped to at least 1 — a budget of 1 keeps the parallel
    /// engine's end-to-end id-space pipeline but runs every stage on the
    /// calling thread. Unset, an auto-selected parallel plan uses the
    /// machine's available parallelism and every other plan stays
    /// sequential. Thread counts never change results, only wall time.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Switches to the §6 *lower* merge: the greatest lower bound of the
    /// inputs (the federated view every source can serve), completed with
    /// union classes, with participation constraints weakened pointwise.
    pub fn lower(mut self) -> Self {
        self.lower = true;
        self
    }

    /// Captures a phase-level execution trace into
    /// [`MergeReport::trace`]: one telemetry span per executed
    /// [`MergePass`] (plus partition split/stitch bookkeeping) under a
    /// `merge` root span. Tracing is collected on the executing thread
    /// only and never changes the merge result; disabled (the default),
    /// the execution path is the pre-telemetry one — span collection
    /// short-circuits on one flag check.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Declares the **named** input the target hierarchy of the merge —
    /// the target-driven mode of taxonomy mergers (ATOM): the result is
    /// still the paper's least upper bound (preference can never change
    /// the LUB — that associativity is §4's point), but the report
    /// carries `I-TARGET-*` diagnostics itemizing what the *other*
    /// inputs forced onto the target's hierarchy: specializations added
    /// between target classes (`I-TARGET-SPEC`), arrows added to target
    /// classes (`I-TARGET-ARROW`), and implicit classes demanded below
    /// target classes (`I-TARGET-IMPLICIT`). When nothing was forced,
    /// `I-TARGET-PRESERVED` says so. The name must match a
    /// [`schema_named`](Merger::schema_named) input; otherwise the
    /// report carries `W-TARGET-UNKNOWN`.
    pub fn prefer_hierarchy(mut self, name: impl Into<String>) -> Self {
        self.target = Some(name.into());
        self
    }

    /// Resolves what executing this merger will do — engine, passes and
    /// a work estimate — without running anything.
    pub fn plan(&self) -> MergePlan {
        self.plan_with_partitioning().0
    }

    /// [`plan`](Merger::plan), additionally returning the component
    /// analysis when the plan resolved to the partitioned engine (so
    /// execution never walks the inputs twice).
    fn plan_with_partitioning(&self) -> (MergePlan, Option<Partitioning>) {
        let mode = if self.lower {
            MergeMode::Lower
        } else {
            MergeMode::Upper
        };

        let mut estimated_classes = 0;
        let mut estimated_arrows = 0;
        let mut estimated_spec_pairs = 0;
        let mut estimated_arrow_pairs = 0;
        for input in &self.inputs {
            let weak = input.kind.weak();
            estimated_classes += weak.num_classes();
            estimated_arrows += weak.num_arrows();
            estimated_spec_pairs += weak.num_specializations();
            estimated_arrow_pairs += weak.num_arrow_pairs();
        }
        estimated_classes += 2 * self.assertions.len();
        for assertion in &self.assertions {
            match assertion {
                Assertion::Specialization(..) => estimated_spec_pairs += 1,
                Assertion::Arrow(..) => {
                    estimated_arrows += 1;
                    estimated_arrow_pairs += 1;
                }
            }
        }
        let base_classes = self.base.map_or(0, CompiledSchema::num_classes);
        estimated_classes += base_classes;
        estimated_arrows += self.base.map_or(0, CompiledSchema::num_arrows);
        estimated_spec_pairs += self.base.map_or(0, CompiledSchema::num_specializations);
        estimated_arrow_pairs += self.base.map_or(0, CompiledSchema::num_arrow_pairs);

        let mut plan = MergePlan {
            mode,
            engine: PlannedEngine::Compiled, // resolved below, once work is known
            threads: 1,
            passes: Vec::new(),
            num_inputs: self.inputs.len(),
            num_assertions: self.assertions.len(),
            reuses_base: self.base.is_some(),
            base_classes,
            estimated_classes,
            estimated_arrows,
            estimated_spec_pairs,
            estimated_arrow_pairs,
            partitions: 1,
        };
        let analysis = self.partition_analysis(estimated_classes);
        let components = analysis.as_ref().map_or(1, Partitioning::count);
        plan.engine = self.resolved_engine(plan.work_units(), components);
        let analysis = if plan.engine == PlannedEngine::Partitioned {
            plan.partitions = components;
            analysis
        } else {
            None
        };
        plan.threads = match (self.threads, plan.engine) {
            // An explicit budget always applies (the compiled plans use
            // it for the frontier-parallel completion pass).
            (Some(threads), _) => threads,
            (None, PlannedEngine::Parallel | PlannedEngine::Partitioned) => {
                parallel::default_threads()
            }
            (None, _) => 1,
        };

        if !self.is_base_only(plan.engine) {
            plan.passes.push(MergePass::Join);
        }
        match mode {
            MergeMode::Upper => {
                plan.passes.push(MergePass::Completion);
                if self.consistency.is_some() {
                    plan.passes.push(MergePass::ConsistencyCheck);
                }
            }
            MergeMode::Lower => plan.passes.push(MergePass::LowerCompletion),
        }
        if !self.keys.is_empty() {
            plan.passes.push(MergePass::KeyAssignment);
        }
        if self.has_annotated() || mode == MergeMode::Lower {
            plan.passes.push(MergePass::ParticipationTransfer);
        }
        (plan, analysis)
    }

    /// Runs the weakly-connected-component analysis when this merger's
    /// shape and size make partitioning worth considering. `None` means
    /// "planned as a single component" — either the shape is ineligible
    /// (lower mode, annotated inputs, a cached base, a partitioned
    /// sub-merge) or the merge is too small to pay for the walk.
    fn partition_analysis(&self, estimated_classes: usize) -> Option<Partitioning> {
        if self.lower || self.base.is_some() || self.has_annotated() || self.no_partition {
            return None;
        }
        let eligible = match self.engine {
            EnginePreference::Partitioned => true,
            EnginePreference::Auto => estimated_classes >= PARTITION_CLASS_THRESHOLD,
            _ => false,
        };
        if !eligible {
            return None;
        }
        let weaks: Vec<&WeakSchema> = self.inputs.iter().map(|input| input.kind.weak()).collect();
        let edges: Vec<(Class, Class)> = self
            .assertions
            .iter()
            .map(|assertion| match assertion {
                Assertion::Specialization(sub, sup) => (sub.clone(), sup.clone()),
                Assertion::Arrow(src, _, tgt) => (src.clone(), tgt.clone()),
            })
            .collect();
        Some(partition::analyze(&weaks, &edges))
    }

    /// Executes the plan: join, completion, and every configured
    /// constraint pass, into one [`MergeReport`].
    ///
    /// # Errors
    ///
    /// [`MergeError::Incompatible`] when the inputs' specialization
    /// relations union to a cycle, [`MergeError::Inconsistent`] when the
    /// consistency check vetoes an implicit class, and
    /// [`MergeError::Schema`] when an input (or assertion) is itself
    /// invalid.
    pub fn execute(&self) -> Result<MergeReport, MergeError> {
        if !self.trace {
            return self.execute_inner();
        }
        // Tracing mode: enable span collection on this thread for the
        // duration, then drain exactly the spans this merge recorded
        // (the mark keeps an enclosing caller's spans — a registry
        // commit, say — out of this report). Drained unconditionally so
        // a failed merge never leaks spans into a later trace.
        let _scope = telemetry::thread_span_scope();
        let mark = telemetry::span_mark();
        let result = self.execute_inner();
        let captured = telemetry::drain_spans_since(mark);
        result.map(|mut report| {
            // A partitioned plan already collected its component
            // sub-merge spans (recorded on worker threads) into the
            // report; the calling thread's spans go after them.
            let mut spans = report
                .trace
                .take()
                .map(|trace| trace.spans)
                .unwrap_or_default();
            spans.extend(captured);
            report.trace = Some(MergeTrace { spans });
            report
        })
    }

    /// [`execute`](Merger::execute) without the trace capture wrapper.
    /// Span emission inside is unconditional code-wise but free when
    /// collection is disabled (see [`telemetry::span`]).
    fn execute_inner(&self) -> Result<MergeReport, MergeError> {
        let (plan, partitioning) = self.plan_with_partitioning();
        let mut root = telemetry::span("merge");
        root.attr_usize("inputs", plan.num_inputs);
        root.attr_usize("threads", plan.threads);
        root.attr("work_units", plan.work_units());
        match (plan.mode, partitioning) {
            (MergeMode::Upper, Some(parts)) if plan.engine == PlannedEngine::Partitioned => {
                self.execute_partitioned(plan, &parts)
            }
            (MergeMode::Upper, _) => self.execute_upper(plan),
            (MergeMode::Lower, _) => self.execute_lower(plan),
        }
    }

    /// Runs only the join pass: the weak least upper bound of the inputs
    /// (mode-independent), in whichever representations the planned
    /// engine produces. This is the entry point for callers that keep
    /// merging — the registry joins without completing, `smerge serve`
    /// folds a published document into one member schema.
    pub fn join(&self) -> Result<Joined, MergeError> {
        let atoms = self.materialize_assertions()?;
        let plan = self.plan();
        let (weak, compiled, _) = self.join_stage(plan.engine, execution_threads(&plan), &atoms)?;
        Ok(Joined { weak, compiled })
    }

    // ---- internals -------------------------------------------------------

    fn has_annotated(&self) -> bool {
        self.inputs
            .iter()
            .any(|input| matches!(input.kind, InputKind::Annotated(_)))
    }

    fn resolved_engine(&self, work_units: u64, components: usize) -> PlannedEngine {
        if self.lower {
            // The lower pipeline is a symbolic fixpoint (§6); no compiled
            // variant exists yet.
            return PlannedEngine::Symbolic;
        }
        match self.engine {
            EnginePreference::Symbolic => PlannedEngine::Symbolic,
            // An explicit `Compiled` forces the batch engine even over a
            // base (the base is decompiled and re-interned) — that is
            // the differential-test knob for batch vs onto-base.
            EnginePreference::Compiled => PlannedEngine::Compiled,
            // An explicit `Parallel` forces the parallel pipeline even
            // over a base (decompiled and re-interned like forced
            // `Compiled`) — the differential knob for parallel vs the
            // rest.
            EnginePreference::Parallel => PlannedEngine::Parallel,
            // A forced `Partitioned` still needs ≥ 2 components to mean
            // anything; on a connected graph it falls back to the auto
            // resolution (and `execute_upper` warns).
            EnginePreference::Partitioned if components >= 2 => PlannedEngine::Partitioned,
            EnginePreference::Partitioned | EnginePreference::Auto => {
                if self.base.is_some() && !self.has_annotated() {
                    PlannedEngine::CompiledOntoBase
                } else if components >= 2 {
                    // partition_analysis only ran above the class
                    // threshold, so ≥ 2 components here means a genuinely
                    // large disconnected merge.
                    PlannedEngine::Partitioned
                } else if !self.has_annotated()
                    && (work_units >= PARALLEL_WORK_THRESHOLD
                        || self.inputs.len() >= PARALLEL_INPUT_THRESHOLD)
                {
                    PlannedEngine::Parallel
                } else {
                    PlannedEngine::Compiled
                }
            }
        }
    }

    /// Whether the plan completes a cached base with nothing joined onto
    /// it — the registry's delete path, a session's `merged()`. The join
    /// pass (and the copy it would make of the base) is skipped.
    fn is_base_only(&self, engine: PlannedEngine) -> bool {
        engine == PlannedEngine::CompiledOntoBase
            && self.inputs.is_empty()
            && self.assertions.is_empty()
    }

    fn materialize_assertions(&self) -> Result<Vec<WeakSchema>, MergeError> {
        self.assertions
            .iter()
            .map(|assertion| {
                let builder = WeakSchema::builder();
                let builder = match assertion {
                    Assertion::Specialization(sub, sup) => {
                        builder.specialize(sub.clone(), sup.clone())
                    }
                    Assertion::Arrow(src, label, tgt) => {
                        builder.arrow(src.clone(), label.clone(), tgt.clone())
                    }
                };
                builder.build().map_err(MergeError::Schema)
            })
            .collect()
    }

    /// The join pass. Returns the representations produced (at least one
    /// is always present) plus, on the participation-aware path, the
    /// joined annotated schema for the later transfer pass.
    fn join_stage(
        &self,
        engine: PlannedEngine,
        threads: usize,
        atoms: &[WeakSchema],
    ) -> Result<JoinStageOutput, MergeError> {
        if self.has_annotated() {
            // Participation-aware join: annotated semantics over every
            // input (plain schemas read as all-required), then the plain
            // engines never see participation at all.
            let decompiled_base = self.base.map(CompiledSchema::decompile);
            let anns = self.annotated_inputs(decompiled_base, atoms);
            let joined = annotated_join(anns.iter().map(Ann::get))?;
            let weak = joined.schema().clone();
            return Ok((Some(weak), None, Some(joined)));
        }

        let weak_refs: Vec<&WeakSchema> = self
            .inputs
            .iter()
            .map(|input| input.kind.weak())
            .chain(atoms.iter())
            .collect();
        match engine {
            PlannedEngine::Symbolic => {
                let decompiled_base = self.base.map(CompiledSchema::decompile);
                let refs = decompiled_base.iter().chain(weak_refs.iter().copied());
                let weak = crate::reference::weak_join_all(refs)?;
                Ok((Some(weak), None, None))
            }
            PlannedEngine::Compiled => {
                // A forced-compiled plan over a base re-interns the
                // base's symbolic form like any other input.
                let decompiled_base = self.base.map(CompiledSchema::decompile);
                let refs = decompiled_base.iter().chain(weak_refs.iter().copied());
                let (weak, compiled) = compile::join_compiled(refs).map_err(schema_to_merge)?;
                Ok((Some(weak), Some(compiled), None))
            }
            PlannedEngine::CompiledOntoBase => {
                let base = self.base.expect("onto-base engine implies a base");
                let compiled =
                    compile::join_onto_compiled(base, &weak_refs).map_err(schema_to_merge)?;
                Ok((None, Some(compiled), None))
            }
            PlannedEngine::Parallel | PlannedEngine::Partitioned => {
                // Sharded interning + tree reduction, straight to the
                // compiled form: like onto-base, the parallel engine
                // never materializes the symbolic join. Partitioning
                // only pays in completion, so a partitioned plan's join
                // is the same sharded join.
                let decompiled_base = self.base.map(CompiledSchema::decompile);
                let refs: Vec<&WeakSchema> = decompiled_base
                    .iter()
                    .chain(weak_refs.iter().copied())
                    .collect();
                let compiled =
                    compile::join_compiled_ids(&refs, threads).map_err(schema_to_merge)?;
                Ok((None, Some(compiled), None))
            }
        }
    }

    /// Every input as an annotated schema (weak inputs and assertion
    /// atoms read as all-required), preserving input order.
    fn annotated_inputs(&self, base: Option<WeakSchema>, atoms: &[WeakSchema]) -> Vec<Ann<'_>> {
        let mut anns: Vec<Ann<'_>> = Vec::new();
        if let Some(base) = base {
            anns.push(Ann::Owned(AnnotatedSchema::all_required(base)));
        }
        for input in &self.inputs {
            anns.push(match input.kind {
                InputKind::Annotated(annotated) => Ann::Borrowed(annotated),
                InputKind::Weak(weak) => Ann::Owned(AnnotatedSchema::all_required(weak.clone())),
            });
        }
        for atom in atoms {
            anns.push(Ann::Owned(AnnotatedSchema::all_required(atom.clone())));
        }
        anns
    }

    fn execute_upper(&self, plan: MergePlan) -> Result<MergeReport, MergeError> {
        let atoms = self.materialize_assertions()?;
        let threads = execution_threads(&plan);
        let (weak, compiled, joined_annotated) = if self.is_base_only(plan.engine) {
            (None, None, None)
        } else {
            let mut span = telemetry::span(MergePass::Join.as_str());
            let joined = self.join_stage(plan.engine, threads, &atoms)?;
            match (&joined.0, &joined.1) {
                (_, Some(compiled)) => {
                    span.attr_usize("classes", compiled.num_classes());
                    span.attr_usize("arrows", compiled.num_arrows());
                }
                (Some(weak), None) => {
                    span.attr_usize("classes", weak.num_classes());
                    span.attr_usize("arrows", weak.num_arrows());
                }
                (None, None) => {}
            }
            joined
        };

        let mut completion_span = telemetry::span(MergePass::Completion.as_str());
        let (proper, implicit) = match (&weak, &compiled, plan.engine) {
            (Some(weak), _, PlannedEngine::Symbolic) => {
                complete_impl(weak, None, CompletionEngine::Symbolic).map_err(MergeError::Schema)?
            }
            (Some(weak), Some(compiled), _) => {
                complete_impl(weak, Some(compiled), CompletionEngine::Compiled { threads })
                    .map_err(MergeError::Schema)?
            }
            (Some(weak), None, _) => {
                complete_impl(weak, None, CompletionEngine::Compiled { threads })
                    .map_err(MergeError::Schema)?
            }
            (None, Some(compiled), _) => {
                complete_from_compiled_impl(compiled, threads).map_err(MergeError::Schema)?
            }
            (None, None, _) => {
                let base = self.base.expect("the base-only path implies a base");
                complete_from_compiled_impl(base, threads).map_err(MergeError::Schema)?
            }
        };
        completion_span.attr_usize("classes", proper.as_weak().num_classes());
        completion_span.attr_usize("implicit_classes", implicit.num_implicit());
        drop(completion_span);

        if let Some(consistency) = self.consistency {
            let _span = telemetry::span(MergePass::ConsistencyCheck.as_str());
            check_consistency(&implicit, consistency)?;
        }

        let keys = if self.keys.is_empty() {
            KeyAssignment::new()
        } else {
            let mut span = telemetry::span(MergePass::KeyAssignment.as_str());
            let keys = self.key_pass(&proper);
            span.attr_usize("keyed_classes", keys.num_keyed_classes());
            keys
        };
        let annotated = joined_annotated.map(|joined| {
            let _span = telemetry::span(MergePass::ParticipationTransfer.as_str());
            joined.transfer_to(proper.as_weak())
        });
        let mut diagnostics = self.input_diagnostics();
        if self.engine == EnginePreference::Partitioned && plan.engine != PlannedEngine::Partitioned
        {
            diagnostics.push(Diagnostic::warning(
                "W-PARTITION-CONNECTED",
                "partitioned engine requested, but the combined \
                 specialization+arrow graph is a single weakly-connected \
                 component (or the shape is ineligible); fell back to the \
                 auto-resolved engine",
            ));
        }
        diagnostics.extend(self.target_diagnostics(proper.as_weak(), &implicit));
        // Only the onto-base engine actually transfers the base in id
        // space; the symbolic/annotated/forced-compiled plans decompile
        // and re-walk it, so claiming reuse there would be false.
        if plan.engine == PlannedEngine::CompiledOntoBase {
            diagnostics.push(Diagnostic::info(
                "I-BASE-REUSED",
                format!(
                    "reused a cached compiled base of {} classes; only {} input(s) interned",
                    plan.base_classes,
                    plan.num_inputs + plan.num_assertions
                ),
            ));
        }
        if implicit.num_implicit() > 0 {
            diagnostics.push(
                Diagnostic::info(
                    "I-IMPLICIT-CLASSES",
                    format!(
                        "completion introduced {} implicit class(es)",
                        implicit.num_implicit()
                    ),
                )
                .with_classes(implicit.implicit.iter().map(|info| info.class.clone())),
            );
        }

        Ok(MergeReport {
            plan,
            provenance: self.provenance(),
            weak,
            proper,
            implicit,
            keys,
            annotated,
            lower: None,
            diagnostics,
            compiled,
            trace: None,
            origins: None,
        })
    }

    /// The partitioned pipeline: restrict every input (and assertion
    /// atom) to each weakly-connected component, merge the components
    /// independently — each on the engine auto-planned for its size —
    /// and stitch the results back together. Components never interact
    /// under any pipeline rule (see [`crate::partition`]), so the
    /// stitched result is identical to the unpartitioned merge: the
    /// weak join is the disjoint union of per-component joins, and the
    /// implicit-class report re-sorted by class is exactly the
    /// unpartitioned report.
    fn execute_partitioned(
        &self,
        plan: MergePlan,
        parts: &Partitioning,
    ) -> Result<MergeReport, MergeError> {
        let atoms = self.materialize_assertions()?;
        let threads = execution_threads(&plan);

        // Bucket the restriction of every input by component.
        let mut buckets: Vec<Vec<WeakSchema>> = Vec::new();
        buckets.resize_with(parts.count(), Vec::new);
        {
            let mut split_span = telemetry::span("partition-split");
            split_span.attr_usize("components", parts.count());
            split_span.attr_usize("largest_component", parts.largest());
            for weak in self
                .inputs
                .iter()
                .map(|input| input.kind.weak())
                .chain(atoms.iter())
            {
                for (component, piece) in parts.split(weak) {
                    buckets[component as usize].push(piece);
                }
            }
        }

        // Merge each component independently — across the thread budget,
        // one *single-threaded* sub-merge per component (the components
        // are the parallelism; nesting the parallel engine underneath
        // them would oversubscribe the budget). Components are numbered
        // by their smallest class and stitched in component order, so
        // the result is deterministic regardless of sizes or scheduling.
        let work: Vec<&Vec<WeakSchema>> = buckets.iter().filter(|b| !b.is_empty()).collect();
        // Component sub-merges run on worker threads, where the calling
        // thread's trace scope does not reach; propagating the flag lets
        // each sub-merge capture its own spans, collected below.
        let trace_components = self.trace;
        let chunk_reports = parallel::map_chunks(work.len(), threads, |range| {
            range
                .map(|i| {
                    let mut sub = Merger::new()
                        .schemas(work[i].iter())
                        .threads(1)
                        .trace(trace_components);
                    sub.no_partition = true;
                    sub.execute()
                })
                .collect::<Vec<Result<MergeReport, MergeError>>>()
        });

        let mut component_spans: Vec<SpanRecord> = Vec::new();
        let mut stitch_span = telemetry::span("partition-stitch");
        let mut weak = WeakSchema::empty();
        let mut propers = Vec::with_capacity(work.len());
        let mut implicit = CompletionReport::default();
        for report in chunk_reports.into_iter().flatten() {
            let mut report = report?;
            if let Some(trace) = report.trace.take() {
                component_spans.extend(trace.spans);
            }
            let piece = match report.weak {
                Some(piece) => piece,
                None => report
                    .compiled
                    .as_ref()
                    .expect("a join always produces at least one representation")
                    .decompile(),
            };
            weak.classes.extend(piece.classes);
            weak.supers.extend(piece.supers);
            weak.arrows.extend(piece.arrows);
            implicit.implicit.extend(report.implicit.implicit);
            propers.push(report.proper);
        }
        implicit.implicit.sort_by(|a, b| a.class.cmp(&b.class));
        let proper = ProperSchema::disjoint_union(propers);
        stitch_span.attr_usize("classes", proper.as_weak().num_classes());
        drop(stitch_span);

        if let Some(consistency) = self.consistency {
            check_consistency(&implicit, consistency)?;
        }
        let keys = self.key_pass(&proper);

        let mut diagnostics = self.input_diagnostics();
        diagnostics.extend(self.target_diagnostics(proper.as_weak(), &implicit));
        diagnostics.push(Diagnostic::info(
            "I-PARTITIONED",
            format!(
                "split the merge into {} weakly-connected component(s) \
                 (largest: {} class(es)); each merged independently",
                parts.count(),
                parts.largest()
            ),
        ));
        if implicit.num_implicit() > 0 {
            diagnostics.push(
                Diagnostic::info(
                    "I-IMPLICIT-CLASSES",
                    format!(
                        "completion introduced {} implicit class(es)",
                        implicit.num_implicit()
                    ),
                )
                .with_classes(implicit.implicit.iter().map(|info| info.class.clone())),
            );
        }

        Ok(MergeReport {
            plan,
            provenance: self.provenance(),
            weak: Some(weak),
            proper,
            implicit,
            keys,
            annotated: None,
            lower: None,
            diagnostics,
            compiled: None,
            trace: (!component_spans.is_empty()).then_some(MergeTrace {
                spans: component_spans,
            }),
            origins: None,
        })
    }

    fn execute_lower(&self, plan: MergePlan) -> Result<MergeReport, MergeError> {
        let atoms = self.materialize_assertions()?;
        let merged = {
            let mut span = telemetry::span(MergePass::Join.as_str());
            let anns = self.annotated_inputs(self.base.map(CompiledSchema::decompile), &atoms);
            let merged = lower_merge(anns.iter().map(Ann::get));
            span.attr_usize("classes", merged.schema().num_classes());
            span.attr_usize("arrows", merged.schema().num_arrows());
            merged
        };
        let (annotated, proper, lower_report) = {
            let mut span = telemetry::span(MergePass::LowerCompletion.as_str());
            let completed = lower_complete(&merged).map_err(MergeError::Schema)?;
            span.attr_usize("union_classes", completed.2.unions.len());
            completed
        };

        let keys = if self.keys.is_empty() {
            KeyAssignment::new()
        } else {
            let mut span = telemetry::span(MergePass::KeyAssignment.as_str());
            let keys = self.key_pass(&proper);
            span.attr_usize("keyed_classes", keys.num_keyed_classes());
            keys
        };
        let mut diagnostics = self.input_diagnostics();
        if self.consistency.is_some() {
            diagnostics.push(Diagnostic::warning(
                "W-CONSISTENCY-IGNORED",
                "consistency relations constrain implicit meet classes; \
                 the lower merge introduces union classes and ignores them",
            ));
        }
        if self.target.is_some() {
            diagnostics.push(Diagnostic::warning(
                "W-TARGET-IGNORED",
                "target-driven reporting diagnoses upper-merge additions; \
                 the lower merge subtracts and has no target to preserve",
            ));
        }
        if !lower_report.unions.is_empty() {
            diagnostics.push(
                Diagnostic::info(
                    "I-UNION-CLASSES",
                    format!(
                        "lower completion introduced {} union class(es)",
                        lower_report.unions.len()
                    ),
                )
                .with_classes(lower_report.unions.iter().map(|info| info.class.clone())),
            );
        }

        Ok(MergeReport {
            plan,
            provenance: self.provenance(),
            weak: Some(merged.schema().clone()),
            proper,
            implicit: CompletionReport::default(),
            keys,
            annotated: Some(annotated),
            lower: Some(lower_report),
            diagnostics,
            compiled: None,
            trace: None,
            origins: None,
        })
    }

    fn key_pass(&self, proper: &ProperSchema) -> KeyAssignment {
        if self.keys.is_empty() {
            return KeyAssignment::new();
        }
        KeyAssignment::minimal_satisfactory(
            proper.as_weak(),
            self.keys.iter().map(|(class, family)| (class, family)),
        )
    }

    fn provenance(&self) -> Vec<InputProvenance> {
        self.inputs
            .iter()
            .enumerate()
            .map(|(index, input)| {
                let weak = input.kind.weak();
                InputProvenance {
                    index,
                    name: input.name.clone(),
                    classes: weak.num_classes(),
                    arrows: weak.num_arrows(),
                    specializations: weak.num_specializations(),
                    optional_arrows: input.kind.optional_arrows(),
                    content_hash: input.name.as_ref().map(|_| weak.content_hash()),
                }
            })
            .collect()
    }

    /// Target-driven reporting (the ATOM taxonomy-merging mode): with a
    /// [`prefer_hierarchy`](Merger::prefer_hierarchy) target named, scan
    /// the merged result for everything the *other* inputs forced onto
    /// the target's hierarchy. The merge itself is still the least upper
    /// bound — §4's order-independence is not negotiable — so preference
    /// is a reporting stance, not a different result.
    fn target_diagnostics(
        &self,
        merged: &WeakSchema,
        implicit: &CompletionReport,
    ) -> Vec<Diagnostic> {
        const SHOWN: usize = 8;
        let Some(target_name) = self.target.as_deref() else {
            return Vec::new();
        };
        let Some(target) = self
            .inputs
            .iter()
            .find(|input| input.name.as_deref() == Some(target_name))
            .map(|input| input.kind.weak())
        else {
            return vec![Diagnostic::warning(
                "W-TARGET-UNKNOWN",
                format!(
                    "target hierarchy '{target_name}' names no input; \
                     add the target with `schema_named`"
                ),
            )];
        };

        let mut diagnostics = Vec::new();
        // Specializations the merge added between target classes. The
        // target arrives closed, so anything new really came from
        // another input or transitively through one.
        let forced_spec: Vec<&Class> = merged
            .specialization_pairs()
            .filter(|(sub, sup)| {
                target.contains_class(sub)
                    && target.contains_class(sup)
                    && !target.specializes(sub, sup)
            })
            .map(|(sub, _)| sub)
            .collect();
        if !forced_spec.is_empty() {
            diagnostics.push(
                Diagnostic::info(
                    "I-TARGET-SPEC",
                    format!(
                        "merge added {} specialization(s) between classes of \
                         target '{target_name}'",
                        forced_spec.len()
                    ),
                )
                .with_classes(forced_spec.iter().take(SHOWN).map(|&sub| sub.clone())),
            );
        }
        // Arrows added to target classes (implicit targets are reported
        // separately below — their origin sets name what forced them).
        let forced_arrows: Vec<&Class> = merged
            .arrow_triples()
            .filter(|(src, label, tgt)| {
                tgt.origin().is_none()
                    && target.contains_class(src)
                    && !target.has_arrow(src, label, tgt)
            })
            .map(|(src, _, _)| src)
            .collect();
        if !forced_arrows.is_empty() {
            diagnostics.push(
                Diagnostic::info(
                    "I-TARGET-ARROW",
                    format!(
                        "merge added {} arrow(s) to classes of target '{target_name}'",
                        forced_arrows.len()
                    ),
                )
                .with_classes(forced_arrows.iter().take(SHOWN).map(|&src| src.clone())),
            );
        }
        // Implicit classes whose member sets reach into the target.
        let entangled: Vec<&Class> = implicit
            .implicit
            .iter()
            .filter(|info| {
                info.members
                    .iter()
                    .any(|member| target.contains_class(member))
            })
            .map(|info| &info.class)
            .collect();
        if !entangled.is_empty() {
            diagnostics.push(
                Diagnostic::info(
                    "I-TARGET-IMPLICIT",
                    format!(
                        "completion introduced {} implicit class(es) below \
                         classes of target '{target_name}'",
                        entangled.len()
                    ),
                )
                .with_classes(entangled.iter().take(SHOWN).map(|&class| class.clone())),
            );
        }
        if diagnostics.is_empty() {
            diagnostics.push(Diagnostic::info(
                "I-TARGET-PRESERVED",
                format!(
                    "merge preserved the hierarchy of target '{target_name}': \
                     no foreign specializations, arrows or implicit classes"
                ),
            ));
        }
        diagnostics
    }

    fn input_diagnostics(&self) -> Vec<Diagnostic> {
        self.inputs
            .iter()
            .enumerate()
            .filter(|(_, input)| input.kind.weak().num_classes() == 0)
            .map(|(index, input)| {
                Diagnostic::warning(
                    "W-EMPTY-INPUT",
                    "input schema contributes no classes to the merge",
                )
                .with_input(index, input.name.as_deref())
            })
            .collect()
    }
}

impl fmt::Debug for Merger<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Merger")
            .field("inputs", &self.inputs.len())
            .field("assertions", &self.assertions.len())
            .field("base", &self.base.is_some())
            .field("engine", &self.engine)
            .field("lower", &self.lower)
            .finish_non_exhaustive()
    }
}

/// What the join pass hands to completion: the symbolic and/or compiled
/// join, plus (on the participation-aware path) the joined annotated
/// schema for the later transfer pass.
type JoinStageOutput = (
    Option<WeakSchema>,
    Option<CompiledSchema>,
    Option<AnnotatedSchema>,
);

/// The worker count a plan actually runs with: the budget, capped at
/// the machine's available parallelism — the engine's passes are
/// CPU-bound bit sweeps, so oversubscribing cores only adds scheduler
/// overhead (a budget is a cap, not a mandate). [`MergePlan::threads`]
/// keeps the uncapped budget for display and reporting.
fn execution_threads(plan: &MergePlan) -> usize {
    plan.threads.min(parallel::default_threads()).max(1)
}

/// The standard error mapping: a specialization cycle discovered while
/// joining means the inputs are incompatible (§4.1).
fn schema_to_merge(err: SchemaError) -> MergeError {
    match err {
        SchemaError::SpecializationCycle(witness) => MergeError::Incompatible(witness),
        other => MergeError::Schema(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Class;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn dogs() -> (WeakSchema, WeakSchema) {
        let g1 = WeakSchema::builder()
            .arrow("Dog", "license", "int")
            .arrow("Dog", "owner", "Person")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .arrow("Dog", "name", "string")
            .specialize("Guide-dog", "Dog")
            .build()
            .unwrap();
        (g1, g2)
    }

    #[test]
    fn plan_resolves_engine_and_passes() {
        let (g1, g2) = dogs();
        let merger = Merger::new().schema(&g1).schema(&g2);
        let plan = merger.plan();
        assert_eq!(plan.engine, PlannedEngine::Compiled);
        assert_eq!(plan.mode, MergeMode::Upper);
        assert_eq!(plan.passes, vec![MergePass::Join, MergePass::Completion]);
        assert_eq!(plan.num_inputs, 2);
        assert!(!plan.reuses_base);
        assert!(plan.estimated_classes >= 4);

        let rel = ConsistencyRelation::assume_consistent();
        let merger = Merger::new()
            .schema(&g1)
            .with_consistency(&rel)
            .with_keys(
                "Dog",
                SuperkeyFamily::single(crate::keys::KeySet::new(["license"])),
            )
            .engine(EnginePreference::Symbolic);
        let plan = merger.plan();
        assert_eq!(plan.engine, PlannedEngine::Symbolic);
        assert_eq!(
            plan.passes,
            vec![
                MergePass::Join,
                MergePass::Completion,
                MergePass::ConsistencyCheck,
                MergePass::KeyAssignment
            ]
        );
    }

    #[test]
    fn plan_display_is_stable() {
        let (g1, g2) = dogs();
        let plan = Merger::new()
            .schema(&g1)
            .schema(&g2)
            .assert_specialization("Puppy", "Dog")
            .plan();
        let text = plan.to_string();
        assert_eq!(
            text,
            "plan: upper merge, engine=compiled, inputs=2 (+1 assertions)\n\
             passes: join -> completion\n\
             estimated work: <= 8 classes, <= 4 arrows, <= 2 spec pairs (14 work units)"
        );
    }

    #[test]
    fn execute_matches_reference_merge() {
        let (g1, g2) = dogs();
        let report = Merger::new().schema(&g1).schema(&g2).execute().unwrap();
        let expected = crate::reference::merge([&g1, &g2]).unwrap();
        assert_eq!(report.proper, expected.proper);
        assert_eq!(report.weak.as_ref().unwrap(), &expected.weak);
        assert_eq!(report.implicit, expected.report);
        assert!(report.compiled.is_some());
    }

    #[test]
    fn symbolic_and_onto_base_configurations_agree() {
        let (g1, g2) = dogs();
        let g3 = WeakSchema::builder()
            .arrow("Dog", "owner", "Company")
            .build()
            .unwrap();
        let expected = crate::reference::merge([&g1, &g2, &g3]).unwrap();

        let symbolic = Merger::new()
            .schemas([&g1, &g2, &g3])
            .engine(EnginePreference::Symbolic)
            .execute()
            .unwrap();
        assert_eq!(symbolic.plan.engine, PlannedEngine::Symbolic);
        assert_eq!(symbolic.proper, expected.proper);
        assert_eq!(symbolic.implicit, expected.report);

        let base = Merger::new()
            .schemas([&g1, &g2])
            .join()
            .unwrap()
            .into_parts()
            .1
            .unwrap();
        let onto = Merger::new()
            .onto_base(&base)
            .schema(&g3)
            .execute()
            .unwrap();
        assert_eq!(onto.plan.engine, PlannedEngine::CompiledOntoBase);
        assert_eq!(onto.proper, expected.proper);
        assert_eq!(onto.implicit, expected.report);
        assert!(onto.weak.is_none(), "onto-base skips the symbolic join");
        // The symbolic engine overrides the base reuse but not the result.
        let sym_onto = Merger::new()
            .onto_base(&base)
            .schema(&g3)
            .engine(EnginePreference::Symbolic)
            .execute()
            .unwrap();
        assert_eq!(sym_onto.plan.engine, PlannedEngine::Symbolic);
        assert_eq!(sym_onto.proper, expected.proper);
        // And an explicit `Compiled` forces the batch engine even over a
        // base — the differential knob for batch vs onto-base — again
        // with the same result.
        let forced = Merger::new()
            .onto_base(&base)
            .schema(&g3)
            .engine(EnginePreference::Compiled)
            .execute()
            .unwrap();
        assert_eq!(forced.plan.engine, PlannedEngine::Compiled);
        assert_eq!(forced.proper, expected.proper);
        assert!(
            !forced
                .diagnostics
                .iter()
                .any(|d| d.code() == "I-BASE-REUSED"),
            "the forced-compiled plan re-interns the base and must not claim reuse"
        );
    }

    #[test]
    fn base_only_plan_skips_the_join_pass() {
        let (g1, g2) = dogs();
        let base = Merger::new()
            .schemas([&g1, &g2])
            .join()
            .unwrap()
            .into_parts()
            .1
            .unwrap();
        let merger = Merger::new().onto_base(&base);
        let plan = merger.plan();
        assert_eq!(plan.engine, PlannedEngine::CompiledOntoBase);
        assert_eq!(
            plan.passes,
            vec![MergePass::Completion],
            "the base IS the join; no join pass runs or is reported"
        );
        let report = merger.execute().unwrap();
        assert_eq!(report.plan, plan);
        assert!(
            report.compiled.is_none(),
            "the caller already holds the base"
        );
        assert_eq!(
            report.proper,
            Merger::new().schemas([&g1, &g2]).execute().unwrap().proper
        );
    }

    #[test]
    fn assertions_merge_like_elementary_schemas() {
        let (g1, g2) = dogs();
        let report = Merger::new()
            .schema(&g1)
            .schema(&g2)
            .assert_specialization("Puppy", "Dog")
            .assert_arrow("Dog", "chip", "Chip")
            .execute()
            .unwrap();
        assert!(report.proper.specializes(&c("Puppy"), &c("Dog")));
        assert!(report
            .proper
            .has_arrow(&c("Puppy"), &Label::new("chip"), &c("Chip")));
    }

    #[test]
    fn incompatibility_is_reported_with_witness() {
        let up = WeakSchema::builder().specialize("A", "B").build().unwrap();
        let down = WeakSchema::builder().specialize("B", "A").build().unwrap();
        let err = Merger::new()
            .schema(&up)
            .schema(&down)
            .execute()
            .unwrap_err();
        match err {
            MergeError::Incompatible(witness) => {
                assert_eq!(witness.path.first(), witness.path.last());
            }
            other => panic!("expected incompatibility, got {other}"),
        }
    }

    #[test]
    fn consistency_pass_vetoes_identifications() {
        let g = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .build()
            .unwrap();
        let mut rel = ConsistencyRelation::assume_consistent();
        rel.declare_inconsistent(c("B1"), c("B2"));
        let err = Merger::new()
            .schema(&g)
            .with_consistency(&rel)
            .execute()
            .unwrap_err();
        assert!(matches!(err, MergeError::Inconsistent { .. }));
        // Same merger without the veto succeeds and reports the implicit
        // class as a diagnostic.
        let report = Merger::new().schema(&g).execute().unwrap();
        assert_eq!(report.implicit.num_implicit(), 1);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code() == "I-IMPLICIT-CLASSES"));
    }

    #[test]
    fn keys_pass_computes_minimal_satisfactory_assignment() {
        let (g1, g2) = dogs();
        let report = Merger::new()
            .schema(&g1)
            .schema(&g2)
            .with_keys(
                "Dog",
                SuperkeyFamily::single(crate::keys::KeySet::new(["license"])),
            )
            .execute()
            .unwrap();
        assert!(report
            .keys
            .family(&c("Guide-dog"))
            .is_superkey(&crate::keys::KeySet::new(["license"])));
    }

    #[test]
    fn participation_flows_through_upper_merge() {
        let site_a = AnnotatedSchema::builder()
            .arrow("Dog", "license", "int")
            .optional_arrow("Dog", "chip", "Chip")
            .build()
            .unwrap();
        let site_b = AnnotatedSchema::builder()
            .optional_arrow("Dog", "chip", "Chip")
            .build()
            .unwrap();
        let report = Merger::new()
            .with_participation(&site_a)
            .with_participation(&site_b)
            .execute()
            .unwrap();
        let annotated = report.annotated.expect("annotated inputs produce one");
        assert_eq!(
            annotated.participation(&c("Dog"), &Label::new("chip"), &c("Chip")),
            crate::participation::Participation::ZeroOrOne
        );
        assert_eq!(
            annotated.participation(&c("Dog"), &Label::new("license"), &c("int")),
            crate::participation::Participation::One
        );
        assert!(report
            .plan
            .passes
            .contains(&MergePass::ParticipationTransfer));
    }

    #[test]
    fn lower_mode_produces_union_classes() {
        let a = AnnotatedSchema::builder()
            .arrow("Pet", "home", "House")
            .build()
            .unwrap();
        let b = AnnotatedSchema::builder()
            .arrow("Pet", "home", "Kennel")
            .build()
            .unwrap();
        let report = Merger::new()
            .with_participation(&a)
            .with_participation(&b)
            .lower()
            .execute()
            .unwrap();
        assert_eq!(report.plan.mode, MergeMode::Lower);
        let lower = report.lower.expect("lower mode fills the union report");
        assert_eq!(lower.unions.len(), 1);
        assert!(report.annotated.is_some());
        let expected = {
            let merged = lower_merge([&a, &b]);
            lower_complete(&merged).unwrap().1
        };
        assert_eq!(report.proper, expected);
    }

    #[test]
    fn lower_mode_warns_about_ignored_consistency() {
        let a = AnnotatedSchema::builder()
            .arrow("Pet", "home", "House")
            .build()
            .unwrap();
        let rel = ConsistencyRelation::assume_consistent();
        let report = Merger::new()
            .with_participation(&a)
            .with_consistency(&rel)
            .lower()
            .execute()
            .unwrap();
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code() == "W-CONSISTENCY-IGNORED"));
    }

    #[test]
    fn provenance_records_names_and_shapes() {
        let (g1, g2) = dogs();
        let empty = WeakSchema::empty();
        let report = Merger::new()
            .schema_named("municipal", &g1)
            .schema(&g2)
            .schema_named("void", &empty)
            .execute()
            .unwrap();
        assert_eq!(report.provenance.len(), 3);
        assert_eq!(report.provenance[0].name.as_deref(), Some("municipal"));
        assert_eq!(report.provenance[0].content_hash, Some(g1.content_hash()));
        assert_eq!(report.provenance[1].name, None);
        assert_eq!(
            report.provenance[1].content_hash, None,
            "anonymous inputs skip the hashing walk"
        );
        let warning = report
            .diagnostics
            .iter()
            .find(|d| d.code() == "W-EMPTY-INPUT")
            .expect("empty input warned about");
        assert_eq!(warning.origin.input, Some(2));
        assert_eq!(warning.origin.input_name.as_deref(), Some("void"));
    }

    #[test]
    fn join_returns_both_representations() {
        let (g1, g2) = dogs();
        let joined = Merger::new().schema(&g1).schema(&g2).join().unwrap();
        assert!(joined.weak().is_some());
        assert!(joined.compiled().is_some());
        let weak = joined.into_weak();
        assert_eq!(weak, crate::reference::weak_join_all([&g1, &g2]).unwrap());

        // Onto-base join skips the symbolic materialization; into_weak
        // decompiles on demand.
        let base = Merger::new()
            .schema(&g1)
            .join()
            .unwrap()
            .into_parts()
            .1
            .unwrap();
        let onto = Merger::new().onto_base(&base).schema(&g2).join().unwrap();
        assert!(onto.weak().is_none());
        assert_eq!(onto.into_weak(), weak);
    }

    #[test]
    fn report_summary_is_deterministic() {
        let g1 = WeakSchema::builder().arrow("C", "a", "B1").build().unwrap();
        let g2 = WeakSchema::builder().arrow("C", "a", "B2").build().unwrap();
        let report = Merger::new()
            .schema_named("one", &g1)
            .schema_named("two", &g2)
            .execute()
            .unwrap();
        assert_eq!(
            report.summary(),
            "plan: upper merge, engine=compiled, inputs=2\n\
             passes: join -> completion\n\
             estimated work: <= 4 classes, <= 2 arrows, <= 0 spec pairs (6 work units)\n\
             result: 4 classes, 3 arrows, 2 specializations, 1 implicit\n\
             implicit: {B1,B2} demanded by C --a-->\n\
             info[I-IMPLICIT-CLASSES]: completion introduced 1 implicit class(es) (classes: {B1,B2})\n"
        );
    }

    #[test]
    fn empty_merger_produces_the_empty_merge() {
        let report = Merger::new().execute().unwrap();
        assert_eq!(report.proper.num_classes(), 0);
        assert_eq!(report.weak.as_ref().unwrap(), &WeakSchema::empty());
    }

    /// A branchy NFA-shaped schema: few classes and arrows, but every
    /// `(class, label)` pair has two targets.
    fn branchy(n: usize) -> WeakSchema {
        let mut builder = WeakSchema::builder();
        for i in 0..n {
            for label in ["zero", "one"] {
                builder = builder
                    .arrow(format!("S{i}"), label, format!("S{}", (i + 1) % n))
                    .arrow(format!("S{i}"), label, format!("S{}", (i + 2) % n));
            }
        }
        builder.build().unwrap()
    }

    #[test]
    fn work_estimate_weighs_closure_density_not_just_size() {
        // A pathological NFA shape: tiny by raw counts, exponential by
        // fixpoint. The old estimate (raw classes + arrows) ranked it
        // below a plain 100-class schema; the density-aware one must not.
        let nfa = branchy(12);
        let mut plain_builder = WeakSchema::builder();
        for i in 0..100 {
            plain_builder = plain_builder.arrow(format!("C{i}"), format!("f{i}"), "T");
        }
        let plain = plain_builder.build().unwrap();

        let nfa_plan = Merger::new().schema(&nfa).plan();
        let plain_plan = Merger::new().schema(&plain).plan();
        assert!(nfa_plan.estimated_classes < plain_plan.estimated_classes);
        assert!(
            nfa_plan.work_units() > plain_plan.work_units(),
            "branching must dominate raw size: {} vs {}",
            nfa_plan.work_units(),
            plain_plan.work_units()
        );
        // And the estimate routes the NFA to the parallel engine while
        // the plain schema stays on the sequential compiled one.
        assert_eq!(nfa_plan.engine, PlannedEngine::Parallel);
        assert_eq!(plain_plan.engine, PlannedEngine::Compiled);
    }

    #[test]
    fn parallel_engine_matches_compiled_at_every_thread_count() {
        let nfa = branchy(10);
        let extra = WeakSchema::builder()
            .arrow("S0", "zero", "Sink")
            .specialize("Sink", "S1")
            .build()
            .unwrap();
        let compiled = Merger::new()
            .schemas([&nfa, &extra])
            .engine(EnginePreference::Compiled)
            .execute()
            .unwrap();
        for threads in [1, 2, 4, 8] {
            let parallel = Merger::new()
                .schemas([&nfa, &extra])
                .engine(EnginePreference::Parallel)
                .threads(threads)
                .execute()
                .unwrap();
            assert_eq!(parallel.plan.engine, PlannedEngine::Parallel);
            assert_eq!(parallel.plan.threads, threads);
            assert_eq!(parallel.proper, compiled.proper, "at {threads} threads");
            assert_eq!(parallel.implicit, compiled.implicit);
            assert_eq!(
                parallel.compiled.as_ref().unwrap(),
                compiled.compiled.as_ref().unwrap(),
                "compiled joins are bit-identical"
            );
            assert!(
                parallel.weak.is_none(),
                "the parallel engine never materializes the symbolic join"
            );
        }
    }

    #[test]
    fn forced_parallel_over_a_base_reinterns_like_forced_compiled() {
        let (g1, g2) = dogs();
        let g3 = WeakSchema::builder()
            .arrow("Dog", "owner", "Company")
            .build()
            .unwrap();
        let base = Merger::new()
            .schemas([&g1, &g2])
            .join()
            .unwrap()
            .into_parts()
            .1
            .unwrap();
        let expected = Merger::new().schemas([&g1, &g2, &g3]).execute().unwrap();
        let forced = Merger::new()
            .onto_base(&base)
            .schema(&g3)
            .engine(EnginePreference::Parallel)
            .threads(2)
            .execute()
            .unwrap();
        assert_eq!(forced.plan.engine, PlannedEngine::Parallel);
        assert_eq!(forced.proper, expected.proper);
        assert_eq!(forced.implicit, expected.implicit);
    }

    #[test]
    fn plan_threads_default_is_sequential_off_the_parallel_engine() {
        let (g1, g2) = dogs();
        let plan = Merger::new().schemas([&g1, &g2]).plan();
        assert_eq!(plan.engine, PlannedEngine::Compiled);
        assert_eq!(plan.threads, 1, "small auto plans stay sequential");
        let plan = Merger::new().schemas([&g1, &g2]).threads(3).plan();
        assert_eq!(plan.threads, 3, "an explicit budget always applies");
        let plan = Merger::new()
            .schemas([&g1, &g2])
            .engine(EnginePreference::Parallel)
            .plan();
        assert!(plan.threads >= 1, "parallel defaults to the machine");
        let display = plan.to_string();
        assert!(
            display.contains("engine=parallel") && display.contains(", threads="),
            "plan display names the budget: {display}"
        );
    }

    /// Three families (`A*`, `B*`, `C*`) with no edges between them, the
    /// `B` family branching enough to demand an implicit class.
    fn three_families() -> (WeakSchema, WeakSchema) {
        let g1 = WeakSchema::builder()
            .specialize("A1", "A0")
            .arrow("A0", "f", "A2")
            .arrow("B0", "g", "B1")
            .arrow("B0", "g", "B2")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .specialize("A2", "A1")
            .arrow("B0", "g", "B3")
            .arrow("C0", "h", "C1")
            .build()
            .unwrap();
        (g1, g2)
    }

    #[test]
    fn partitioned_engine_matches_unpartitioned() {
        let (g1, g2) = three_families();
        let expected = Merger::new()
            .schemas([&g1, &g2])
            .engine(EnginePreference::Compiled)
            .execute()
            .unwrap();
        let reference = crate::reference::merge([&g1, &g2]).unwrap();
        let part = Merger::new()
            .schemas([&g1, &g2])
            .engine(EnginePreference::Partitioned)
            .execute()
            .unwrap();
        assert_eq!(part.plan.engine, PlannedEngine::Partitioned);
        assert_eq!(part.plan.partitions, 3);
        assert_eq!(part.proper, expected.proper);
        assert_eq!(part.proper, reference.proper);
        assert_eq!(part.weak.as_ref().unwrap(), expected.weak.as_ref().unwrap());
        assert_eq!(part.implicit, expected.implicit);
        assert_eq!(part.implicit, reference.report);
        assert!(
            part.implicit.num_implicit() > 0,
            "the B family must exercise implicit-class stitching"
        );
        assert!(part.diagnostics.iter().any(|d| d.code() == "I-PARTITIONED"));
        let display = part.plan.to_string();
        assert!(
            display.contains("engine=partitioned") && display.contains(", partitions=3, threads="),
            "plan display names the split: {display}"
        );
    }

    #[test]
    fn forced_partitioned_falls_back_when_connected() {
        let (g1, g2) = dogs();
        let report = Merger::new()
            .schemas([&g1, &g2])
            .engine(EnginePreference::Partitioned)
            .execute()
            .unwrap();
        assert_ne!(report.plan.engine, PlannedEngine::Partitioned);
        assert_eq!(report.plan.partitions, 1);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code() == "W-PARTITION-CONNECTED"));
        let expected = crate::reference::merge([&g1, &g2]).unwrap();
        assert_eq!(report.proper, expected.proper);
    }

    #[test]
    fn assertions_bridge_partition_components() {
        // An assertion relates classes like any other input, so a
        // specialization between the A and B families fuses their
        // components — and the merged result must reflect the bridge.
        let (g1, g2) = three_families();
        let part = Merger::new()
            .schemas([&g1, &g2])
            .assert_specialization("B0", "A0")
            .engine(EnginePreference::Partitioned)
            .execute()
            .unwrap();
        assert_eq!(part.plan.engine, PlannedEngine::Partitioned);
        assert_eq!(part.plan.partitions, 2, "A+B fused, C separate");
        let expected = Merger::new()
            .schemas([&g1, &g2])
            .assert_specialization("B0", "A0")
            .engine(EnginePreference::Compiled)
            .execute()
            .unwrap();
        assert_eq!(part.proper, expected.proper);
        assert_eq!(part.implicit, expected.implicit);
        assert!(part.proper.specializes(&c("B0"), &c("A0")));
    }

    #[test]
    fn auto_partitioning_is_gated_by_size() {
        // Disconnected but tiny: the auto planner never pays for the
        // component walk below the class threshold.
        let g = WeakSchema::builder().class("X").class("Y").build().unwrap();
        let plan = Merger::new().schema(&g).plan();
        assert_eq!(plan.engine, PlannedEngine::Compiled);
        assert_eq!(plan.partitions, 1);
    }

    #[test]
    fn work_estimate_weighs_excess_by_row_population_not_dense_width() {
        // A 3k-class taxonomy shape: shallow closure (about one closed
        // ancestor per class), mild arrow branching. The old mild-excess
        // weight was the dense row width (`classes`), pushing this to
        // 1.5M work units and the parallel engine; the adaptive-row
        // weight is the average closed-row population, keeping the
        // estimate honest and the merge sequential.
        let (g1, _) = dogs();
        let mut plan = Merger::new().schema(&g1).plan();
        plan.estimated_classes = 3_000;
        plan.estimated_spec_pairs = 2_000;
        plan.estimated_arrows = 2_200;
        plan.estimated_arrow_pairs = 1_700; // excess 500, mild: 2*500 < 1700
        assert!(
            plan.work_units() < PARALLEL_WORK_THRESHOLD,
            "sparse taxonomy must stay below the parallel threshold: {}",
            plan.work_units()
        );
        let dense_width_estimate = 3_000u64 * 500;
        assert!(
            dense_width_estimate >= PARALLEL_WORK_THRESHOLD,
            "the regression this guards against: the dense-width weight over-routed"
        );
    }

    #[test]
    fn target_mode_reports_forced_additions() {
        let target = WeakSchema::builder()
            .specialize("Dog", "Animal")
            .class("Cat")
            .arrow("Dog", "name", "string")
            .arrow("Dog", "friend", "Dog")
            .build()
            .unwrap();
        let other = WeakSchema::builder()
            .specialize("Cat", "Animal")
            .arrow("Dog", "age", "int")
            .arrow("Dog", "friend", "Cat")
            .build()
            .unwrap();
        let report = Merger::new()
            .schema_named("zoo", &target)
            .schema(&other)
            .prefer_hierarchy("zoo")
            .execute()
            .unwrap();
        let code = |c: &str| report.diagnostics.iter().find(|d| d.code() == c).cloned();
        let spec = code("I-TARGET-SPEC").expect("Cat <= Animal was forced");
        assert!(spec.to_string().contains("1 specialization(s)"), "{spec}");
        let arrow = code("I-TARGET-ARROW").expect("Dog.age was forced");
        assert!(arrow.to_string().contains("arrow(s)"), "{arrow}");
        assert!(
            code("I-TARGET-IMPLICIT").is_some(),
            "friend branching entangles Dog and Cat in an implicit class"
        );
        assert!(code("I-TARGET-PRESERVED").is_none());
        // The preference never changes the result itself.
        let plain = Merger::new().schemas([&target, &other]).execute().unwrap();
        assert_eq!(report.proper, plain.proper);
    }

    #[test]
    fn target_mode_preserved_unknown_and_lower() {
        let (g1, _) = dogs();
        let subset = WeakSchema::builder()
            .arrow("Dog", "license", "int")
            .build()
            .unwrap();
        let report = Merger::new()
            .schema_named("registry", &g1)
            .schema(&subset)
            .prefer_hierarchy("registry")
            .execute()
            .unwrap();
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code() == "I-TARGET-PRESERVED"),
            "a subschema forces nothing onto the target"
        );

        let report = Merger::new()
            .schema(&g1)
            .prefer_hierarchy("nope")
            .execute()
            .unwrap();
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code() == "W-TARGET-UNKNOWN"));

        let report = Merger::new()
            .schema_named("registry", &g1)
            .schema(&subset)
            .prefer_hierarchy("registry")
            .lower()
            .execute()
            .unwrap();
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code() == "W-TARGET-IGNORED"));
    }

    #[test]
    fn untraced_merges_carry_no_trace() {
        let (g1, g2) = dogs();
        let report = Merger::new().schema(&g1).schema(&g2).execute().unwrap();
        assert!(report.trace.is_none());
    }

    #[test]
    fn traced_merge_emits_one_span_per_executed_pass() {
        let (g1, g2) = dogs();
        let rel = ConsistencyRelation::assume_consistent();
        let merger = Merger::new()
            .schema(&g1)
            .schema(&g2)
            .with_consistency(&rel)
            .with_keys(
                "Dog",
                SuperkeyFamily::single(crate::keys::KeySet::new(["license"])),
            )
            .trace(true);
        let plan = merger.plan();
        let report = merger.execute().unwrap();
        let trace = report.trace.as_ref().expect("trace requested");
        let root = trace.root().expect("a merge root span");
        assert!(root.parent.is_none());
        assert!(
            root.attrs.iter().any(|&(key, v)| key == "inputs" && v == 2),
            "{root:?}"
        );
        // One span per planned pass, named by `MergePass::as_str`, all
        // children of the root.
        for pass in &plan.passes {
            let span = trace
                .spans
                .iter()
                .find(|span| span.name == pass.as_str())
                .unwrap_or_else(|| panic!("no span for pass {pass}: {:?}", trace.spans));
            assert_eq!(span.parent, Some(root.id), "pass {pass} hangs off the root");
        }
        // Pass durations are contained in the root's wall-clock window.
        let pass_total: u64 = trace.phase_ns().iter().map(|(_, ns)| ns).sum();
        assert!(
            pass_total <= root.duration_ns,
            "pass total {pass_total} exceeds root {}",
            root.duration_ns
        );
        // The join span carries work attrs.
        let join = trace.spans.iter().find(|s| s.name == "join").unwrap();
        assert!(join.attrs.iter().any(|&(key, _)| key == "classes"));
        // The rendering is a tree rooted at `merge`.
        let rendered = trace.render();
        assert!(rendered.starts_with("merge "), "{rendered}");
        assert!(rendered.contains("\n  join "), "{rendered}");
        assert!(rendered.contains("\n  completion "), "{rendered}");
    }

    #[test]
    fn tracing_never_changes_the_result() {
        // The differential guarantee: a traced merge and an untraced
        // merge produce bit-identical reports (modulo the trace itself).
        let (g1, g2) = dogs();
        let g3 = WeakSchema::builder()
            .arrow("Dog", "owner", "Company")
            .specialize("Puppy", "Dog")
            .build()
            .unwrap();
        for engine in [
            EnginePreference::Auto,
            EnginePreference::Symbolic,
            EnginePreference::Compiled,
            EnginePreference::Parallel,
        ] {
            let plain = Merger::new()
                .schemas([&g1, &g2, &g3])
                .engine(engine)
                .execute()
                .unwrap();
            let traced = Merger::new()
                .schemas([&g1, &g2, &g3])
                .engine(engine)
                .trace(true)
                .execute()
                .unwrap();
            assert_eq!(plain.proper, traced.proper, "{engine:?}");
            assert_eq!(plain.weak, traced.weak, "{engine:?}");
            assert_eq!(plain.implicit, traced.implicit, "{engine:?}");
            assert_eq!(plain.keys, traced.keys, "{engine:?}");
            assert_eq!(plain.provenance, traced.provenance, "{engine:?}");
            assert_eq!(plain.plan, traced.plan, "{engine:?}");
            assert_eq!(plain.summary(), traced.summary(), "{engine:?}");
            assert!(plain.trace.is_none());
            assert!(traced.trace.is_some());
        }
    }

    #[test]
    fn traced_partitioned_merge_collects_component_and_stitch_spans() {
        // Two disconnected vocabularies force two components.
        let left = WeakSchema::builder()
            .arrow("Dog", "name", "string")
            .specialize("Puppy", "Dog")
            .build()
            .unwrap();
        let right = WeakSchema::builder()
            .arrow("Star", "magnitude", "float")
            .build()
            .unwrap();
        let report = Merger::new()
            .schemas([&left, &right])
            .engine(EnginePreference::Partitioned)
            .trace(true)
            .execute()
            .unwrap();
        assert_eq!(report.plan.engine, PlannedEngine::Partitioned);
        let trace = report.trace.as_ref().expect("trace requested");
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"partition-split"), "{names:?}");
        assert!(names.contains(&"partition-stitch"), "{names:?}");
        // Each component sub-merge contributed its own join+completion.
        assert_eq!(
            names.iter().filter(|&&n| n == "join").count(),
            2,
            "{names:?}"
        );
        let phases = trace.phase_ns();
        assert!(
            phases.iter().any(|&(name, _)| name == "join"),
            "component joins fold into one phase entry: {phases:?}"
        );
        // The untraced result is identical.
        let plain = Merger::new()
            .schemas([&left, &right])
            .engine(EnginePreference::Partitioned)
            .execute()
            .unwrap();
        assert_eq!(plain.proper, report.proper);
    }

    #[test]
    fn traced_lower_merge_spans_lower_completion() {
        let (g1, g2) = dogs();
        let report = Merger::new()
            .schemas([&g1, &g2])
            .lower()
            .trace(true)
            .execute()
            .unwrap();
        let trace = report.trace.as_ref().expect("trace requested");
        assert!(trace.spans.iter().any(|s| s.name == "join"));
        assert!(trace.spans.iter().any(|s| s.name == "lower-completion"));
    }
}
