//! Error types for schema construction, validation and merging.
//!
//! Merging can fail in exactly the ways the paper enumerates (§4.2 end):
//! *incompatibility* — the combined specialization relation has a cycle, so
//! no common upper bound exists (Prop. 4.1) — and *inconsistency* — an
//! implicit class would identify classes the user has declared disjoint.
//! Both are reported with explicit witnesses so an interactive tool can
//! point at the offending assertions.

use std::fmt;

use crate::class::Class;
use crate::name::Label;

/// A cycle in a specialization relation, as a witness path
/// `c0 ⇒ c1 ⇒ … ⇒ c0` (the first class is repeated at the end).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleWitness {
    /// The classes along the cycle; `path.first() == path.last()`.
    pub path: Vec<Class>,
}

impl fmt::Display for CycleWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, class) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, " => ")?;
            }
            write!(f, "{class}")?;
        }
        Ok(())
    }
}

/// Errors raised while building or validating a single schema.
///
/// Marked `#[non_exhaustive]`: new failure modes may be added without a
/// breaking release, so downstream matches need a wildcard arm. Every
/// variant has a stable machine-readable [`code`](SchemaError::code)
/// surfaced in CLI output.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchemaError {
    /// The declared specialization edges form a cycle, so `S` cannot be a
    /// partial order (antisymmetry fails).
    SpecializationCycle(CycleWitness),
    /// A proper schema was required but some `(class, label)` pair has no
    /// least arrow target (condition 1 of §2 fails). The offending minimal
    /// targets are listed.
    NoCanonicalClass {
        /// The arrow source.
        class: Class,
        /// The arrow label.
        label: Label,
        /// The (≥ 2) minimal targets none of which is least.
        minimal_targets: Vec<Class>,
    },
    /// An operation referred to a class the schema does not contain.
    UnknownClass(Class),
    /// A key constraint used a label that is not an arrow out of the class
    /// it is declared on (§5: "each aᵢ is the label of some arrow out of
    /// p").
    KeyLabelNotAnArrow {
        /// The class carrying the key.
        class: Class,
        /// The offending label.
        label: Label,
    },
    /// A key assignment violates `p ⇒ q  ⟹  SK(p) ⊇ SK(q)` (§5).
    KeyNotInherited {
        /// The specialization source (the subclass).
        sub: Class,
        /// The specialization target (the superclass).
        sup: Class,
    },
    /// A participation annotation was supplied for an arrow that does not
    /// exist in the schema.
    AnnotationOnMissingArrow {
        /// The arrow source.
        class: Class,
        /// The arrow label.
        label: Label,
        /// The arrow target.
        target: Class,
    },
}

impl SchemaError {
    /// The stable machine-readable code for this error (`E-SCHEMA-…`).
    /// Codes never change meaning across releases; scripts and CI should
    /// match on them rather than on message prose.
    pub fn code(&self) -> &'static str {
        match self {
            SchemaError::SpecializationCycle(_) => "E-SCHEMA-CYCLE",
            SchemaError::NoCanonicalClass { .. } => "E-SCHEMA-NO-CANONICAL",
            SchemaError::UnknownClass(_) => "E-SCHEMA-UNKNOWN-CLASS",
            SchemaError::KeyLabelNotAnArrow { .. } => "E-SCHEMA-KEY-LABEL",
            SchemaError::KeyNotInherited { .. } => "E-SCHEMA-KEY-INHERIT",
            SchemaError::AnnotationOnMissingArrow { .. } => "E-SCHEMA-ANNOTATION",
        }
    }
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::SpecializationCycle(witness) => {
                write!(f, "specialization relation is cyclic: {witness}")
            }
            SchemaError::NoCanonicalClass {
                class,
                label,
                minimal_targets,
            } => {
                write!(
                    f,
                    "no canonical class for the {label}-arrow of {class}: minimal targets are "
                )?;
                for (i, t) in minimal_targets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            SchemaError::UnknownClass(class) => write!(f, "unknown class {class}"),
            SchemaError::KeyLabelNotAnArrow { class, label } => {
                write!(
                    f,
                    "key on {class} uses {label}, which is not an arrow out of {class}"
                )
            }
            SchemaError::KeyNotInherited { sub, sup } => write!(
                f,
                "key assignment violates inheritance: {sub} => {sup} but SK({sub}) does not \
                 contain SK({sup})"
            ),
            SchemaError::AnnotationOnMissingArrow {
                class,
                label,
                target,
            } => write!(
                f,
                "participation annotation on missing arrow {class} --{label}--> {target}"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Errors raised while merging schemas.
///
/// Marked `#[non_exhaustive]`: new failure modes may be added without a
/// breaking release, so downstream matches need a wildcard arm. Every
/// variant has a stable machine-readable [`code`](MergeError::code)
/// surfaced in CLI output.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MergeError {
    /// The schemas are *incompatible*: the transitive closure of the union
    /// of their specialization relations is not antisymmetric (§4.1), so no
    /// upper bound — and hence no merge — exists.
    Incompatible(CycleWitness),
    /// The schemas are *inconsistent*: completion would introduce an
    /// implicit class identifying two classes declared unmergeable in the
    /// consistency relationship (§4.2).
    Inconsistent {
        /// The first of the clashing classes.
        left: Class,
        /// The second of the clashing classes.
        right: Class,
    },
    /// Participation constraints clash: one schema requires an arrow
    /// (constraint `1`) that another forbids (constraint `0`), so no upper
    /// bound exists in the annotated information order (§6).
    ParticipationConflict {
        /// The arrow source.
        class: Class,
        /// The arrow label.
        label: Label,
        /// The arrow target.
        target: Class,
    },
    /// A schema participating in the merge was itself invalid.
    Schema(SchemaError),
}

impl MergeError {
    /// The stable machine-readable code for this error (`E-MERGE-…`, or
    /// the wrapped [`SchemaError::code`] for [`MergeError::Schema`]).
    pub fn code(&self) -> &'static str {
        match self {
            MergeError::Incompatible(_) => "E-MERGE-INCOMPATIBLE",
            MergeError::Inconsistent { .. } => "E-MERGE-INCONSISTENT",
            MergeError::ParticipationConflict { .. } => "E-MERGE-PARTICIPATION",
            MergeError::Schema(err) => err.code(),
        }
    }
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Incompatible(witness) => {
                write!(
                    f,
                    "schemas are incompatible (specialization cycle): {witness}"
                )
            }
            MergeError::Inconsistent { left, right } => write!(
                f,
                "schemas are inconsistent: merging would identify {left} with {right}"
            ),
            MergeError::ParticipationConflict {
                class,
                label,
                target,
            } => write!(
                f,
                "participation conflict on {class} --{label}--> {target}: \
                 required (1) in one schema, forbidden (0) in another"
            ),
            MergeError::Schema(err) => write!(f, "invalid input schema: {err}"),
        }
    }
}

impl std::error::Error for MergeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MergeError::Schema(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SchemaError> for MergeError {
    fn from(err: SchemaError) -> Self {
        MergeError::Schema(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_witness_display() {
        let w = CycleWitness {
            path: vec![Class::named("A"), Class::named("B"), Class::named("A")],
        };
        assert_eq!(w.to_string(), "A => B => A");
    }

    #[test]
    fn schema_error_display() {
        let err = SchemaError::NoCanonicalClass {
            class: Class::named("C"),
            label: Label::new("a"),
            minimal_targets: vec![Class::named("B1"), Class::named("B2")],
        };
        assert_eq!(
            err.to_string(),
            "no canonical class for the a-arrow of C: minimal targets are B1, B2"
        );
    }

    #[test]
    fn merge_error_wraps_schema_error() {
        let err: MergeError = SchemaError::UnknownClass(Class::named("X")).into();
        assert!(err.to_string().contains("unknown class X"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn participation_conflict_display() {
        let err = MergeError::ParticipationConflict {
            class: Class::named("Dog"),
            label: Label::new("owner"),
            target: Class::named("Person"),
        };
        assert!(err.to_string().contains("Dog --owner--> Person"));
    }
}
