//! The functional data model view (§2) and multivalued arrows (§7).
//!
//! §2 observes that arrows "could equally well have been defined as
//! partial functions from classes to classes, which is how they are
//! expressed in the definition of a functional schema" — DAPLEX-style
//! models (\[6\], \[2\], \[1\] in the paper). [`FunctionalSchema`] is that
//! presentation: per class, a partial map from labels to a *single*
//! canonical class, satisfying D1/D2. It converts losslessly to and from
//! [`ProperSchema`].
//!
//! §7 lists "allowing arrows to be 'multivalued functions' as in \[2\]" as
//! an extension; here a function may be declared [`Valence::Multi`],
//! meaning instances carry a *set* of values in the target class. The
//! merge rule for valences is a join: if any input declares a function
//! multivalued, the merged function is multivalued (a single-valued
//! reading is a special case of the multivalued one, so the join is the
//! least commitment containing both).

use std::collections::BTreeMap;
use std::fmt;

use crate::class::Class;
use crate::error::{MergeError, SchemaError};
use crate::name::Label;
use crate::proper::ProperSchema;
use crate::weak::WeakSchema;

/// Whether a function is single-valued (a partial function on instances)
/// or multivalued (instances carry sets of values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Valence {
    /// At most one value per instance (the §2 reading).
    #[default]
    Single,
    /// A set of values per instance (the §7 / DAPLEX extension).
    Multi,
}

impl Valence {
    /// The merge rule: multivalued absorbs single-valued.
    pub fn join(self, other: Valence) -> Valence {
        if self == Valence::Multi || other == Valence::Multi {
            Valence::Multi
        } else {
            Valence::Single
        }
    }
}

impl fmt::Display for Valence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Valence::Single => write!(f, "single"),
            Valence::Multi => write!(f, "multi"),
        }
    }
}

/// One function of a functional schema: `class.label ⇀ target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// The (canonical) result class.
    pub target: Class,
    /// Single- or multivalued.
    pub valence: Valence,
}

/// A schema in functional presentation: classes with typed partial
/// functions and a specialization order. Equivalent to [`ProperSchema`]
/// (for single-valued functions) via [`FunctionalSchema::to_proper`] /
/// [`FunctionalSchema::from_proper`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FunctionalSchema {
    /// class ↦ label ↦ function.
    functions: BTreeMap<Class, BTreeMap<Label, Function>>,
    /// Strict specialization pairs (generators; closure is re-derived).
    specializations: Vec<(Class, Class)>,
    /// Classes with no functions still need declaring.
    classes: Vec<Class>,
}

impl FunctionalSchema {
    /// Starts building a functional schema.
    pub fn builder() -> FunctionalSchemaBuilder {
        FunctionalSchemaBuilder::default()
    }

    /// The function for `class.label`, if declared (no inheritance — use
    /// [`FunctionalSchema::valence`] for the D2-aware lookup after
    /// conversion to a proper schema).
    pub fn function(&self, class: &Class, label: &Label) -> Option<&Function> {
        self.functions.get(class).and_then(|fns| fns.get(label))
    }

    /// All declared functions.
    pub fn functions(&self) -> impl Iterator<Item = (&Class, &Label, &Function)> {
        self.functions.iter().flat_map(|(class, fns)| {
            fns.iter()
                .map(move |(label, function)| (class, label, function))
        })
    }

    /// Number of declared functions.
    pub fn num_functions(&self) -> usize {
        self.functions.values().map(BTreeMap::len).sum()
    }

    /// The valence of `class.label` (declared on the class or any
    /// generalization in the converted schema; here: declared only).
    pub fn valence(&self, class: &Class, label: &Label) -> Option<Valence> {
        self.function(class, label).map(|f| f.valence)
    }

    /// Converts to a proper schema. Single- and multivalued functions
    /// both become arrows (the graph model does not distinguish them —
    /// valences are carried alongside and re-attached by
    /// [`FunctionalSchema::from_proper_with_valences`]).
    ///
    /// # Errors
    ///
    /// Fails if the declared functions violate D1/D2 — e.g. a subclass
    /// redirects a function to a class that is not below the
    /// superclass's target, which produces incomparable targets.
    pub fn to_proper(&self) -> Result<ProperSchema, SchemaError> {
        let mut builder = WeakSchema::builder();
        for class in &self.classes {
            builder = builder.class(class.clone());
        }
        for (sub, sup) in &self.specializations {
            builder = builder.specialize(sub.clone(), sup.clone());
        }
        for (class, label, function) in self.functions() {
            builder = builder.arrow(class.clone(), label.clone(), function.target.clone());
        }
        ProperSchema::try_new(builder.build()?)
    }

    /// The valence table keyed by `(class, label)`, for carrying through
    /// graph-model operations.
    pub fn valences(&self) -> BTreeMap<(Class, Label), Valence> {
        self.functions()
            .map(|(class, label, function)| ((class.clone(), label.clone()), function.valence))
            .collect()
    }

    /// Reads a proper schema back into functional presentation: one
    /// function per canonical arrow, dropping the W1/W2-derivable
    /// declarations (a subclass keeps its function only when it refines
    /// the inherited target).
    pub fn from_proper(proper: &ProperSchema) -> FunctionalSchema {
        Self::from_proper_with_valences(proper, &BTreeMap::new())
    }

    /// [`FunctionalSchema::from_proper`] with a valence table (entries
    /// default to single-valued). A function inherited from a
    /// generalization uses the generalization's valence.
    pub fn from_proper_with_valences(
        proper: &ProperSchema,
        valences: &BTreeMap<(Class, Label), Valence>,
    ) -> FunctionalSchema {
        let mut builder = FunctionalSchema::builder();
        for class in proper.classes() {
            builder = builder.class(class.clone());
        }
        for (sub, sup) in proper.specialization_pairs() {
            let covered = proper
                .strict_supers(sub)
                .iter()
                .any(|mid| mid != sup && proper.specializes(mid, sup));
            if !covered {
                builder = builder.specialize(sub.clone(), sup.clone());
            }
        }
        for (class, label, target) in proper.canonical_arrows() {
            // Keep the function only where it is not exactly inherited.
            let inherited = proper
                .strict_supers(class)
                .iter()
                .any(|sup| proper.canonical_target(sup, label) == Some(target));
            if inherited {
                continue;
            }
            let valence = valences
                .get(&(class.clone(), label.clone()))
                .copied()
                .unwrap_or_default();
            builder = builder.function_with(class.clone(), label.clone(), target.clone(), valence);
        }
        builder.build_unchecked()
    }
}

impl fmt::Display for FunctionalSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "functional schema {{")?;
        for class in &self.classes {
            writeln!(f, "  class {class};")?;
        }
        for (sub, sup) in &self.specializations {
            writeln!(f, "  {sub} => {sup};")?;
        }
        for (class, label, function) in self.functions() {
            let arrow = match function.valence {
                Valence::Single => "⇀",
                Valence::Multi => "⇀*",
            };
            writeln!(f, "  {class}.{label} {arrow} {};", function.target)?;
        }
        write!(f, "}}")
    }
}

/// Builder for [`FunctionalSchema`].
#[derive(Debug, Clone, Default)]
pub struct FunctionalSchemaBuilder {
    schema: FunctionalSchema,
}

impl FunctionalSchemaBuilder {
    /// Declares a class.
    pub fn class(mut self, class: impl Into<Class>) -> Self {
        self.schema.classes.push(class.into());
        self
    }

    /// Declares `sub ⇒ sup`.
    pub fn specialize(mut self, sub: impl Into<Class>, sup: impl Into<Class>) -> Self {
        self.schema.specializations.push((sub.into(), sup.into()));
        self
    }

    /// Declares a single-valued function `class.label ⇀ target`.
    pub fn function(
        self,
        class: impl Into<Class>,
        label: impl Into<Label>,
        target: impl Into<Class>,
    ) -> Self {
        self.function_with(class, label, target, Valence::Single)
    }

    /// Declares a multivalued function `class.label ⇀* target` (§7).
    pub fn multi_function(
        self,
        class: impl Into<Class>,
        label: impl Into<Label>,
        target: impl Into<Class>,
    ) -> Self {
        self.function_with(class, label, target, Valence::Multi)
    }

    /// Declares a function with an explicit valence. Re-declaring a
    /// `(class, label)` pair replaces the previous function.
    pub fn function_with(
        mut self,
        class: impl Into<Class>,
        label: impl Into<Label>,
        target: impl Into<Class>,
        valence: Valence,
    ) -> Self {
        self.schema
            .functions
            .entry(class.into())
            .or_default()
            .insert(
                label.into(),
                Function {
                    target: target.into(),
                    valence,
                },
            );
        self
    }

    /// Validates D1/D2 (by conversion) and returns the schema.
    pub fn build(self) -> Result<FunctionalSchema, SchemaError> {
        self.schema.to_proper()?;
        Ok(self.schema)
    }

    fn build_unchecked(self) -> FunctionalSchema {
        self.schema
    }
}

/// Merges functional schemas through the graph calculus: convert, merge,
/// complete, convert back, joining valences per `(class, label)` (§7's
/// multivalued extension rides along untouched by the graph operations).
pub fn merge_functional<'a>(
    schemas: impl IntoIterator<Item = &'a FunctionalSchema>,
) -> Result<FunctionalSchema, MergeError> {
    let inputs: Vec<&FunctionalSchema> = schemas.into_iter().collect();
    let mut valences: BTreeMap<(Class, Label), Valence> = BTreeMap::new();
    let mut translated = Vec::with_capacity(inputs.len());
    for input in &inputs {
        for ((class, label), valence) in input.valences() {
            let entry = valences.entry((class, label)).or_default();
            *entry = entry.join(valence);
        }
        translated.push(input.to_proper()?.into_weak());
    }
    let outcome = crate::merger::Merger::new()
        .schemas(translated.iter())
        .execute()?;
    // Valences propagate down the merged specialization order so that a
    // subclass's refined function keeps (at least) the superclass's
    // valence.
    let proper = &outcome.proper;
    let mut propagated = valences.clone();
    for (class, label, _) in proper.canonical_arrows() {
        let mut valence = valences
            .get(&(class.clone(), label.clone()))
            .copied()
            .unwrap_or_default();
        for sup in proper.strict_supers(class) {
            if let Some(&v) = valences.get(&(sup.clone(), label.clone())) {
                valence = valence.join(v);
            }
        }
        propagated.insert((class.clone(), label.clone()), valence);
    }
    Ok(FunctionalSchema::from_proper_with_valences(
        proper,
        &propagated,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn valence_join() {
        use Valence::*;
        assert_eq!(Single.join(Single), Single);
        assert_eq!(Single.join(Multi), Multi);
        assert_eq!(Multi.join(Single), Multi);
        assert_eq!(Multi.join(Multi), Multi);
    }

    #[test]
    fn build_and_convert_to_proper() {
        let f = FunctionalSchema::builder()
            .specialize("Guide-dog", "Dog")
            .function("Dog", "age", "int")
            .multi_function("Dog", "toys", "Toy")
            .build()
            .unwrap();
        assert_eq!(f.num_functions(), 2);
        let proper = f.to_proper().unwrap();
        assert_eq!(
            proper.canonical_target(&c("Dog"), &l("age")),
            Some(&c("int"))
        );
        // Multivalued functions are still arrows in the graph model.
        assert_eq!(
            proper.canonical_target(&c("Dog"), &l("toys")),
            Some(&c("Toy"))
        );
    }

    #[test]
    fn d2_violation_is_rejected() {
        // Guide-dog redirects home to an unrelated class: targets
        // {Kennel, Tent} have no least element.
        let err = FunctionalSchema::builder()
            .specialize("Guide-dog", "Dog")
            .function("Dog", "home", "Kennel")
            .function("Guide-dog", "home", "Tent")
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::NoCanonicalClass { .. }));

        // Redirecting to a refinement is fine (D2).
        let ok = FunctionalSchema::builder()
            .specialize("Guide-dog", "Dog")
            .specialize("TrainingKennel", "Kennel")
            .function("Dog", "home", "Kennel")
            .function("Guide-dog", "home", "TrainingKennel")
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn proper_round_trip_drops_inherited_functions() {
        let f = FunctionalSchema::builder()
            .specialize("Guide-dog", "Dog")
            .function("Dog", "age", "int")
            .build()
            .unwrap();
        let proper = f.to_proper().unwrap();
        let back = FunctionalSchema::from_proper(&proper);
        // Guide-dog.age is inherited, so only Dog declares it.
        assert!(back.function(&c("Dog"), &l("age")).is_some());
        assert!(back.function(&c("Guide-dog"), &l("age")).is_none());
        assert_eq!(back.to_proper().unwrap(), proper, "information-equal");
    }

    #[test]
    fn refined_functions_survive_round_trip() {
        let f = FunctionalSchema::builder()
            .specialize("Guide-dog", "Dog")
            .specialize("TrainingKennel", "Kennel")
            .function("Dog", "home", "Kennel")
            .function("Guide-dog", "home", "TrainingKennel")
            .build()
            .unwrap();
        let back = FunctionalSchema::from_proper(&f.to_proper().unwrap());
        assert_eq!(
            back.function(&c("Guide-dog"), &l("home")).unwrap().target,
            c("TrainingKennel")
        );
    }

    #[test]
    fn merge_functional_is_order_independent() {
        let f1 = FunctionalSchema::builder()
            .function("Dog", "age", "int")
            .build()
            .unwrap();
        let f2 = FunctionalSchema::builder()
            .function("Dog", "name", "string")
            .specialize("Guide-dog", "Dog")
            .build()
            .unwrap();
        let a = merge_functional([&f1, &f2]).unwrap();
        let b = merge_functional([&f2, &f1]).unwrap();
        assert_eq!(a, b);
        assert!(a.function(&c("Dog"), &l("age")).is_some());
        assert!(a.function(&c("Dog"), &l("name")).is_some());
    }

    #[test]
    fn merge_introduces_implicit_target_functions() {
        // Disagreeing single-valued targets produce the implicit class as
        // the merged function's target — the Fig. 3 situation in
        // functional dress.
        let f1 = FunctionalSchema::builder()
            .function("C", "a", "B1")
            .build()
            .unwrap();
        let f2 = FunctionalSchema::builder()
            .function("C", "a", "B2")
            .build()
            .unwrap();
        let merged = merge_functional([&f1, &f2]).unwrap();
        assert_eq!(
            merged.function(&c("C"), &l("a")).unwrap().target,
            Class::implicit([c("B1"), c("B2")])
        );
    }

    #[test]
    fn multivalued_wins_in_merges() {
        // §7: one model sees `owner` as single-valued, another as
        // multivalued (dogs can be co-owned). The merge is multivalued.
        let f1 = FunctionalSchema::builder()
            .function("Dog", "owner", "Person")
            .build()
            .unwrap();
        let f2 = FunctionalSchema::builder()
            .multi_function("Dog", "owner", "Person")
            .build()
            .unwrap();
        let merged = merge_functional([&f1, &f2]).unwrap();
        assert_eq!(
            merged.function(&c("Dog"), &l("owner")).unwrap().valence,
            Valence::Multi
        );
        // And in the other order.
        let merged2 = merge_functional([&f2, &f1]).unwrap();
        assert_eq!(merged, merged2);
    }

    #[test]
    fn valence_propagates_to_refining_subclasses() {
        let f1 = FunctionalSchema::builder()
            .specialize("Guide-dog", "Dog")
            .specialize("Charity", "Person")
            .multi_function("Dog", "owner", "Person")
            .function("Guide-dog", "owner", "Charity")
            .build();
        // Declared directly: builder rejects nothing here (D2 holds).
        let f1 = f1.unwrap();
        let merged = merge_functional([&f1]).unwrap();
        assert_eq!(
            merged
                .function(&c("Guide-dog"), &l("owner"))
                .unwrap()
                .valence,
            Valence::Multi,
            "a subclass cannot silently make an inherited function single-valued"
        );
    }

    #[test]
    fn incompatible_functional_schemas_fail() {
        let f1 = FunctionalSchema::builder()
            .specialize("A", "B")
            .build()
            .unwrap();
        let f2 = FunctionalSchema::builder()
            .specialize("B", "A")
            .build()
            .unwrap();
        assert!(matches!(
            merge_functional([&f1, &f2]),
            Err(MergeError::Incompatible(_))
        ));
    }

    #[test]
    fn display_marks_multivalued() {
        let f = FunctionalSchema::builder()
            .function("Dog", "age", "int")
            .multi_function("Dog", "toys", "Toy")
            .build()
            .unwrap();
        let text = f.to_string();
        assert!(text.contains("Dog.age ⇀ int"));
        assert!(text.contains("Dog.toys ⇀* Toy"));
    }
}
