//! Finite partial-order utilities shared by the schema machinery.
//!
//! A specialization relation `S` is stored as a *strict* adjacency map
//! `x ↦ { y | x ⇒ y, x ≠ y }` ("everything strictly above x"), kept
//! transitively closed. The paper's `S` is reflexive (§2); reflexivity is
//! left implicit here and restored by the `_eq` query variants.
//!
//! All functions are generic over the node type so the same code serves
//! classes (schemas), labels (key reasoning) and test scaffolding.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A strict, transitively closed "above" relation.
pub(crate) type UpSet<T> = BTreeMap<T, BTreeSet<T>>;

/// Computes the strict transitive closure of `edges`, or returns a cycle
/// witness `v0 → v1 → … → v0` if the relation is not antisymmetric.
///
/// Self-loops in the input are tolerated (the paper's `S` is reflexive) and
/// simply dropped from the strict closure.
pub(crate) fn transitive_closure<T: Ord + Clone>(
    edges: &BTreeMap<T, BTreeSet<T>>,
) -> Result<UpSet<T>, Vec<T>> {
    // Iterative DFS with memoized reach sets. Gray nodes are on the current
    // stack; reaching one again is a cycle.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }

    let mut nodes: BTreeSet<&T> = BTreeSet::new();
    for (src, dsts) in edges {
        nodes.insert(src);
        nodes.extend(dsts.iter());
    }

    let mut color: BTreeMap<&T, Color> = nodes.iter().map(|&n| (n, Color::White)).collect();
    let mut reach: BTreeMap<T, BTreeSet<T>> = BTreeMap::new();
    let empty = BTreeSet::new();

    for &root in &nodes {
        if color[root] != Color::White {
            continue;
        }
        // Stack of (node, whether children were already expanded).
        let mut stack: Vec<(&T, bool)> = vec![(root, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                // Post-order: fold children's reach sets.
                let mut set = BTreeSet::new();
                for next in edges.get(node).unwrap_or(&empty) {
                    if next == node {
                        continue; // tolerated self-loop
                    }
                    set.insert(next.clone());
                    if let Some(r) = reach.get(next) {
                        set.extend(r.iter().cloned());
                    }
                }
                color.insert(node, Color::Black);
                reach.insert(node.clone(), set);
                continue;
            }
            match color[node] {
                Color::Black => continue,
                Color::Gray => continue, // revisit through another parent
                Color::White => {}
            }
            color.insert(node, Color::Gray);
            stack.push((node, true));
            for next in edges.get(node).unwrap_or(&empty) {
                if next == node {
                    continue;
                }
                match color[next] {
                    Color::White => stack.push((next, false)),
                    Color::Gray => {
                        // `next` is an ancestor on the DFS stack: cycle.
                        return Err(extract_cycle(edges, next));
                    }
                    Color::Black => {}
                }
            }
        }
    }

    reach.retain(|_, ups| !ups.is_empty());
    Ok(reach)
}

/// Reconstructs a concrete (shortest) cycle through `start`, which is known
/// to lie on one: a BFS from `start` records predecessors until an edge
/// back into `start` is found, then the path is read off backwards. Every
/// consecutive pair of the result is an edge of `edges`.
fn extract_cycle<T: Ord + Clone>(edges: &BTreeMap<T, BTreeSet<T>>, start: &T) -> Vec<T> {
    let empty = BTreeSet::new();
    let mut pred: BTreeMap<&T, &T> = BTreeMap::new();
    let mut queue: VecDeque<&T> = VecDeque::new();
    queue.push_back(start);
    while let Some(node) = queue.pop_front() {
        for next in edges.get(node).unwrap_or(&empty) {
            if next == start {
                // Close the cycle: start →* node → start, read backwards.
                let mut rev = vec![start.clone(), node.clone()];
                let mut current = node;
                while current != start {
                    current = pred[current];
                    rev.push(current.clone());
                }
                rev.reverse();
                return rev;
            }
            if next != node && !pred.contains_key(next) {
                pred.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    // Defensive: `start` was not on a cycle after all; report a trivial
    // witness rather than panicking inside error reporting.
    vec![start.clone(), start.clone()]
}

/// Whether `sub` is strictly below `sup` in the closed relation.
pub(crate) fn lt<T: Ord>(up: &UpSet<T>, sub: &T, sup: &T) -> bool {
    up.get(sub).is_some_and(|s| s.contains(sup))
}

/// Whether `sub ⇒ sup` including reflexivity (`sub == sup`).
pub(crate) fn le<T: Ord>(up: &UpSet<T>, sub: &T, sup: &T) -> bool {
    sub == sup || lt(up, sub, sup)
}

/// The minimal elements of `set`: members with no other member strictly
/// below them. This is the paper's `MinS(X)` (§4.2).
pub(crate) fn minimal_elements<'a, T: Ord + 'a>(
    up: &UpSet<T>,
    set: impl IntoIterator<Item = &'a T>,
) -> BTreeSet<&'a T> {
    let members: Vec<&T> = set.into_iter().collect();
    members
        .iter()
        .copied()
        .filter(|&candidate| {
            !members
                .iter()
                .any(|&other| other != candidate && lt(up, other, candidate))
        })
        .collect()
}

/// The maximal elements of `set`: members with no other member strictly
/// above them (the dual of [`minimal_elements`], used by lower merges).
pub(crate) fn maximal_elements<'a, T: Ord + 'a>(
    up: &UpSet<T>,
    set: impl IntoIterator<Item = &'a T>,
) -> BTreeSet<&'a T> {
    let members: Vec<&T> = set.into_iter().collect();
    members
        .iter()
        .copied()
        .filter(|&candidate| {
            !members
                .iter()
                .any(|&other| other != candidate && lt(up, candidate, other))
        })
        .collect()
}

/// The least element of `set` (below-or-equal every member), if any.
///
/// For finite posets this is exactly "the unique minimal element", which is
/// how condition 1 of §2 (canonical classes) is checked.
pub(crate) fn least_element<'a, T: Ord + 'a>(
    up: &UpSet<T>,
    set: impl IntoIterator<Item = &'a T> + Clone,
) -> Option<&'a T> {
    let minimal = minimal_elements(up, set.clone());
    if minimal.len() != 1 {
        return None;
    }
    let candidate = *minimal.iter().next().expect("len checked");
    set.into_iter()
        .all(|member| le(up, candidate, member))
        .then_some(candidate)
}

/// Checks that `up` is transitively closed and irreflexive — the invariant
/// every stored specialization relation maintains. Used by debug assertions
/// and validation tests.
pub(crate) fn is_strictly_closed<T: Ord>(up: &UpSet<T>) -> bool {
    for (node, ups) in up {
        if ups.contains(node) {
            return false;
        }
        for mid in ups {
            for far in up.get(mid).map(|s| s.iter()).into_iter().flatten() {
                if !ups.contains(far) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(&str, &str)]) -> BTreeMap<String, BTreeSet<String>> {
        let mut map: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (a, b) in pairs {
            map.entry(a.to_string()).or_default().insert(b.to_string());
        }
        map
    }

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn closure_of_chain() {
        let up = transitive_closure(&edges(&[("a", "b"), ("b", "c")])).unwrap();
        assert_eq!(up["a"], set(&["b", "c"]));
        assert_eq!(up["b"], set(&["c"]));
        assert!(!up.contains_key("c"), "empty entries are dropped");
        assert!(is_strictly_closed(&up));
    }

    #[test]
    fn closure_of_diamond() {
        let up =
            transitive_closure(&edges(&[("d", "b"), ("d", "c"), ("b", "a"), ("c", "a")])).unwrap();
        assert_eq!(up["d"], set(&["a", "b", "c"]));
        assert_eq!(up["b"], set(&["a"]));
        assert!(is_strictly_closed(&up));
    }

    #[test]
    fn closure_tolerates_self_loops() {
        let up = transitive_closure(&edges(&[("a", "a"), ("a", "b")])).unwrap();
        assert_eq!(up["a"], set(&["b"]));
    }

    #[test]
    fn closure_detects_two_cycle() {
        let err = transitive_closure(&edges(&[("a", "b"), ("b", "a")])).unwrap_err();
        assert_eq!(err.first(), err.last());
        assert!(err.len() >= 3, "cycle path closes on itself: {err:?}");
    }

    #[test]
    fn closure_detects_long_cycle() {
        let err = transitive_closure(&edges(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "b")]))
            .unwrap_err();
        assert_eq!(err.first(), err.last());
        // The witness must actually follow edges.
        let e = edges(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "b")]);
        for pair in err.windows(2) {
            assert!(
                e[&pair[0]].contains(&pair[1]),
                "non-edge in witness: {pair:?}"
            );
        }
    }

    #[test]
    fn closure_of_empty_and_disconnected() {
        assert!(transitive_closure::<String>(&BTreeMap::new())
            .unwrap()
            .is_empty());
        let up = transitive_closure(&edges(&[("a", "b"), ("x", "y")])).unwrap();
        assert_eq!(up["a"], set(&["b"]));
        assert_eq!(up["x"], set(&["y"]));
    }

    #[test]
    fn le_and_lt() {
        let up = transitive_closure(&edges(&[("a", "b")])).unwrap();
        assert!(lt(&up, &"a".to_string(), &"b".to_string()));
        assert!(!lt(&up, &"b".to_string(), &"a".to_string()));
        assert!(le(&up, &"a".to_string(), &"a".to_string()), "reflexive");
        assert!(!lt(&up, &"a".to_string(), &"a".to_string()), "strict");
    }

    #[test]
    fn minimal_of_antichain_is_everything() {
        let up = transitive_closure(&edges(&[("x", "top")])).unwrap();
        let s = set(&["a", "b", "c"]);
        let min = minimal_elements(&up, &s);
        assert_eq!(min.len(), 3);
    }

    #[test]
    fn minimal_respects_order() {
        // c ⇒ a, c ⇒ b: MinS({a,b,c}) = {c}.
        let up = transitive_closure(&edges(&[("c", "a"), ("c", "b")])).unwrap();
        let s = set(&["a", "b", "c"]);
        let min = minimal_elements(&up, &s);
        assert_eq!(
            min.into_iter().cloned().collect::<BTreeSet<_>>(),
            set(&["c"])
        );
    }

    #[test]
    fn maximal_is_dual() {
        let up = transitive_closure(&edges(&[("c", "a"), ("c", "b")])).unwrap();
        let s = set(&["a", "b", "c"]);
        let max = maximal_elements(&up, &s);
        assert_eq!(
            max.into_iter().cloned().collect::<BTreeSet<_>>(),
            set(&["a", "b"])
        );
    }

    #[test]
    fn least_exists_only_with_unique_minimum_below_all() {
        let up = transitive_closure(&edges(&[("c", "a"), ("c", "b")])).unwrap();
        let s = set(&["a", "b", "c"]);
        assert_eq!(least_element(&up, &s), Some(&"c".to_string()));

        // {a, b} has two minimal elements, no least.
        let ab = set(&["a", "b"]);
        assert_eq!(least_element(&up, &ab), None);

        // Singleton is trivially least.
        let single = set(&["a"]);
        assert_eq!(least_element(&up, &single), Some(&"a".to_string()));
    }

    #[test]
    fn is_strictly_closed_rejects_unclosed() {
        // a→b, b→c without a→c.
        let mut up: UpSet<String> = BTreeMap::new();
        up.insert("a".into(), set(&["b"]));
        up.insert("b".into(), set(&["c"]));
        assert!(!is_strictly_closed(&up));
    }
}
