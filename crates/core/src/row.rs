//! Shared bitset-row primitives and the adaptive row representation.
//!
//! Every id-space engine works on *rows*: sets of [`ClassId`]s encoding
//! "the classes above `p`", "the targets of `p`'s `a`-arrows", or an
//! `Imp`-fixpoint state. Historically each row was a dense `Vec<u64>`
//! bitset and the word-twiddling helpers (`set_bit`, `or_into`,
//! `intersects`, …) were private to [`crate::compile`]; this module is
//! now the single home of those primitives, shared by the closure
//! engine, the sharded join, the frontier fixpoint, the scratch pool and
//! the registry's join cache.
//!
//! On top of the dense primitives it provides `SpecRow`, the
//! **adaptive** row: dense `u64` words below a density/size threshold,
//! sorted `u32` ids above it. A 50 000-class schema costs ~6.1 KB per
//! dense row — ~312 MB per closure matrix — while real taxonomy rows
//! hold a few dozen ancestors; storing those as sorted ids is the
//! difference between "fits in cache" and "fits in nothing". The
//! representation is chosen **per row** by `use_sparse_rep`: sparse
//! exactly when the schema is wide enough (`SPARSE_MIN_WORDS`) *and*
//! the id form is smaller than the word form. Equality of `SpecRow`s
//! is logical (set equality), never representational, so engines remain
//! free to pick either form without perturbing schema equality.
//!
//! [`ClassId`]: crate::compile::ClassId

use std::sync::atomic::{AtomicBool, Ordering};

// ---------------------------------------------------------------------------
// Dense-row primitives (the historical free functions, now shared)
// ---------------------------------------------------------------------------

/// Sets bit `i` of a dense row.
#[inline]
pub(crate) fn set_bit(row: &mut [u64], i: u32) {
    row[(i / 64) as usize] |= 1u64 << (i % 64);
}

/// Clears bit `i` of a dense row.
#[inline]
pub(crate) fn clear_bit(row: &mut [u64], i: u32) {
    row[(i / 64) as usize] &= !(1u64 << (i % 64));
}

/// Tests bit `i` of a dense row.
#[inline]
pub(crate) fn get_bit(row: &[u64], i: u32) -> bool {
    row[(i / 64) as usize] >> (i % 64) & 1 == 1
}

/// `dst |= src`, word-wise over the common prefix.
#[inline]
pub(crate) fn or_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// `dst &= src`, word-wise over the common prefix.
#[inline]
pub(crate) fn and_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= s;
    }
}

/// Whether two dense rows share any set bit.
#[inline]
pub(crate) fn intersects(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

/// Whether a dense row is all zeros.
pub(crate) fn is_zero(row: &[u64]) -> bool {
    row.iter().all(|&w| w == 0)
}

/// Number of set bits in a dense row.
pub(crate) fn popcount(row: &[u64]) -> u32 {
    row.iter().map(|w| w.count_ones()).sum()
}

/// FNV-1a over a dense row, word-wise — the dedup key of the fixpoint's
/// state table (full rows are compared on hash collision).
pub(crate) fn hash_row(row: &[u64]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &word in row {
        hash ^= word;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Iterates the set bit positions of a dense row in ascending order.
pub(crate) fn iter_bits(row: &[u64]) -> impl Iterator<Item = u32> + '_ {
    row.iter().enumerate().flat_map(|(word, &bits)| BitIter {
        bits,
        base: (word * 64) as u32,
    })
}

pub(crate) struct BitIter {
    bits: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.bits == 0 {
            return None;
        }
        let tz = self.bits.trailing_zeros();
        self.bits &= self.bits - 1;
        Some(self.base + tz)
    }
}

// ---------------------------------------------------------------------------
// Representation policy
// ---------------------------------------------------------------------------

/// Rows narrower than this many words are always dense: at 64 words
/// (4 096 classes, 512 bytes a row) the dense form is already cheap, and
/// small schemas keep the branch-free hot path they had before adaptive
/// rows existed.
pub(crate) const SPARSE_MIN_WORDS: usize = 64;

/// Benchmark escape hatch: forces every row dense so the memory and
/// speed of the historical all-dense representation can be measured
/// honestly. `true` (adaptive) by default.
static SPARSE_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables the sparse row representation globally — **for
/// benchmarking only** (the dense-baseline twin of
/// [`crate::scratch`]'s pool toggle). Representation is an encoding
/// choice, never a semantics choice, so results are identical either
/// way; only footprint and speed move.
#[doc(hidden)]
pub fn set_sparse_enabled(enabled: bool) {
    SPARSE_ENABLED.store(enabled, Ordering::Relaxed);
}

pub(crate) fn sparse_enabled() -> bool {
    SPARSE_ENABLED.load(Ordering::Relaxed)
}

/// The per-row representation policy: sorted-sparse ids exactly when the
/// row is wide enough to matter and the id form (4 bytes an id) is
/// smaller than the word form (8 bytes a word).
#[inline]
pub(crate) fn use_sparse_rep(count: usize, words: usize) -> bool {
    sparse_enabled() && words >= SPARSE_MIN_WORDS && count * 2 < words
}

/// Whether rows of `words` words should *accumulate* sparsely (before
/// their final population is known): schema-level width is the only
/// signal available at that point.
#[inline]
pub(crate) fn accumulate_sparse(words: usize) -> bool {
    sparse_enabled() && words >= SPARSE_MIN_WORDS
}

// ---------------------------------------------------------------------------
// RowRef: one read surface over both representations
// ---------------------------------------------------------------------------

/// A borrowed row in either representation — the argument type of every
/// representation-agnostic consumer (closure, sharded join, fixpoint,
/// `assemble_ids`).
#[derive(Clone, Copy)]
pub(crate) enum RowRef<'a> {
    /// Dense words.
    Dense(&'a [u64]),
    /// Sorted, deduplicated set-bit ids.
    Sparse(&'a [u32]),
}

impl<'a> RowRef<'a> {
    /// Iterates the set ids in ascending order.
    pub(crate) fn iter(self) -> RowIter<'a> {
        match self {
            RowRef::Dense(words) => RowIter::Dense {
                words,
                word: 0,
                bits: words.first().copied().unwrap_or(0),
            },
            RowRef::Sparse(ids) => RowIter::Sparse(ids.iter()),
        }
    }

    /// Tests membership of `i`.
    pub(crate) fn test(self, i: u32) -> bool {
        match self {
            RowRef::Dense(words) => get_bit(words, i),
            RowRef::Sparse(ids) => ids.binary_search(&i).is_ok(),
        }
    }

    /// Number of set ids.
    pub(crate) fn popcount(self) -> u32 {
        match self {
            RowRef::Dense(words) => popcount(words),
            RowRef::Sparse(ids) => ids.len() as u32,
        }
    }

    /// Whether no id is set.
    pub(crate) fn is_empty(self) -> bool {
        match self {
            RowRef::Dense(words) => is_zero(words),
            RowRef::Sparse(ids) => ids.is_empty(),
        }
    }

    /// `dst |= self` into a dense row. Sparse ids beyond `dst`'s width
    /// would be a logic error upstream (rows never outgrow their
    /// schema), mirrored by the dense arm's prefix zip.
    pub(crate) fn or_into_dense(self, dst: &mut [u64]) {
        match self {
            RowRef::Dense(words) => or_into(dst, words),
            RowRef::Sparse(ids) => {
                for &id in ids {
                    set_bit(dst, id);
                }
            }
        }
    }

    /// Whether `self` and a dense row share any id.
    pub(crate) fn intersects_dense(self, other: &[u64]) -> bool {
        match self {
            RowRef::Dense(words) => intersects(words, other),
            RowRef::Sparse(ids) => ids
                .iter()
                .any(|&id| ((id / 64) as usize) < other.len() && get_bit(other, id)),
        }
    }

    /// Whether every set bit of the dense `state` is set in `self` —
    /// `state ⊆ self`.
    pub(crate) fn contains_all_dense(self, state: &[u64]) -> bool {
        match self {
            RowRef::Dense(words) => state.iter().zip(words).all(|(s, r)| s & !r == 0),
            RowRef::Sparse(ids) => iter_bits(state).all(|b| ids.binary_search(&b).is_ok()),
        }
    }
}

/// Iterator over a [`RowRef`]'s ids, ascending.
pub(crate) enum RowIter<'a> {
    Dense {
        words: &'a [u64],
        word: usize,
        bits: u64,
    },
    Sparse(std::slice::Iter<'a, u32>),
}

impl Iterator for RowIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            RowIter::Dense { words, word, bits } => loop {
                if *bits != 0 {
                    let tz = bits.trailing_zeros();
                    *bits &= *bits - 1;
                    return Some((*word * 64) as u32 + tz);
                }
                *word += 1;
                if *word >= words.len() {
                    return None;
                }
                *bits = words[*word];
            },
            RowIter::Sparse(ids) => ids.next().copied(),
        }
    }
}

// ---------------------------------------------------------------------------
// SpecRow: the owned adaptive row
// ---------------------------------------------------------------------------

/// An owned set of class ids in whichever representation
/// [`use_sparse_rep`] picked — the storage cell of closure matrices and
/// raw-arrow accumulation. See the module docs for the policy.
#[derive(Clone, Debug)]
pub(crate) enum SpecRow {
    /// Dense words.
    Dense(Vec<u64>),
    /// Sorted, deduplicated set-bit ids.
    Sparse(Vec<u32>),
}

impl SpecRow {
    /// An empty row for a schema of `words` words, in the accumulation
    /// representation ([`accumulate_sparse`]).
    pub(crate) fn empty(words: usize) -> SpecRow {
        if accumulate_sparse(words) {
            SpecRow::Sparse(Vec::new())
        } else {
            SpecRow::Dense(vec![0u64; words])
        }
    }

    /// Builds a row from a dense scratch row, choosing the final
    /// representation adaptively.
    pub(crate) fn from_dense(row: &[u64], words: usize) -> SpecRow {
        let count = popcount(row) as usize;
        if use_sparse_rep(count, words) {
            SpecRow::Sparse(iter_bits(row).collect())
        } else {
            let mut dense = row.to_vec();
            dense.resize(words, 0);
            SpecRow::Dense(dense)
        }
    }

    /// Builds a row from already-sorted, deduplicated ids.
    pub(crate) fn from_sorted_ids(ids: Vec<u32>, words: usize) -> SpecRow {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
        if use_sparse_rep(ids.len(), words) {
            SpecRow::Sparse(ids)
        } else {
            let mut dense = vec![0u64; words];
            for &id in &ids {
                set_bit(&mut dense, id);
            }
            SpecRow::Dense(dense)
        }
    }

    /// The borrowed view.
    #[inline]
    pub(crate) fn as_ref(&self) -> RowRef<'_> {
        match self {
            SpecRow::Dense(words) => RowRef::Dense(words),
            SpecRow::Sparse(ids) => RowRef::Sparse(ids),
        }
    }

    /// Sets id `i`. Sparse rows keep sorted order by insertion; the
    /// engines' construction paths emit ids in ascending order almost
    /// everywhere, so the insert is an append in practice.
    pub(crate) fn set(&mut self, i: u32) {
        match self {
            SpecRow::Dense(words) => set_bit(words, i),
            SpecRow::Sparse(ids) => {
                if let Err(at) = ids.binary_search(&i) {
                    ids.insert(at, i);
                }
            }
        }
    }

    /// `self |= other` (set union), preserving `self`'s representation.
    pub(crate) fn or_row(&mut self, other: RowRef<'_>) {
        match self {
            SpecRow::Dense(words) => other.or_into_dense(words),
            SpecRow::Sparse(ids) => match other {
                RowRef::Sparse(rhs) => {
                    if rhs.is_empty() {
                        return;
                    }
                    let merged = merge_sorted_ids(ids, rhs);
                    *ids = merged;
                }
                RowRef::Dense(words) => {
                    let merged = merge_sorted_iter(ids, iter_bits(words));
                    *ids = merged;
                }
            },
        }
    }

    /// Consumes the row, recycling a dense payload into `pool` (sparse
    /// payloads are ordinary small vectors, not pool material).
    pub(crate) fn recycle(self, pool: &mut crate::scratch::ScratchPool) {
        if let SpecRow::Dense(words) = self {
            pool.put(words);
        }
    }

    pub(crate) fn iter(&self) -> RowIter<'_> {
        self.as_ref().iter()
    }

    pub(crate) fn popcount(&self) -> u32 {
        self.as_ref().popcount()
    }
}

/// Logical (set) equality: representation never influences schema
/// equality, so a sparse row equals the dense row with the same ids.
impl PartialEq for SpecRow {
    fn eq(&self, other: &SpecRow) -> bool {
        match (self, other) {
            (SpecRow::Dense(a), SpecRow::Dense(b)) => {
                let common = a.len().min(b.len());
                a[..common] == b[..common] && is_zero(&a[common..]) && is_zero(&b[common..])
            }
            (SpecRow::Sparse(a), SpecRow::Sparse(b)) => a == b,
            (mixed_a, mixed_b) => mixed_a.iter().eq(mixed_b.iter()),
        }
    }
}

impl Eq for SpecRow {}

fn merge_sorted_ids(a: &[u32], b: &[u32]) -> Vec<u32> {
    merge_sorted_iter(a, b.iter().copied())
}

fn merge_sorted_iter(a: &[u32], b: impl Iterator<Item = u32>) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut left = a.iter().copied().peekable();
    let mut right = b.peekable();
    loop {
        match (left.peek(), right.peek()) {
            (Some(&l), Some(&r)) => {
                if l < r {
                    out.push(l);
                    left.next();
                } else if r < l {
                    out.push(r);
                    right.next();
                } else {
                    out.push(l);
                    left.next();
                    right.next();
                }
            }
            (Some(&l), None) => {
                out.push(l);
                left.next();
            }
            (None, Some(&r)) => {
                out.push(r);
                right.next();
            }
            (None, None) => break,
        }
    }
    out
}

// ---------------------------------------------------------------------------
// SpecMatrix: one adaptive row per class
// ---------------------------------------------------------------------------

/// A rectangular matrix of [`SpecRow`]s — the storage of the compiled
/// schema's closed `supers`/`subs` relations and of every direct-edge
/// accumulation. Row `i` is the id set of class `i`'s relation partners;
/// each row picks its own representation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct SpecMatrix {
    words: usize,
    rows: Vec<SpecRow>,
}

impl SpecMatrix {
    /// `rows` empty rows of `words` words each, in the accumulation
    /// representation.
    pub(crate) fn new(rows: usize, words: usize) -> Self {
        SpecMatrix {
            words,
            rows: (0..rows).map(|_| SpecRow::empty(words)).collect(),
        }
    }

    /// Builds a matrix from finished rows (all of `words` width).
    pub(crate) fn from_rows(rows: Vec<SpecRow>, words: usize) -> Self {
        SpecMatrix { words, rows }
    }

    /// Dense row width in words.
    #[inline]
    pub(crate) fn words(&self) -> usize {
        self.words
    }

    /// Number of rows.
    pub(crate) fn len(&self) -> usize {
        self.rows.len()
    }

    /// The borrowed view of row `i`.
    #[inline]
    pub(crate) fn row(&self, i: u32) -> RowRef<'_> {
        self.rows[i as usize].as_ref()
    }

    /// The owned row `i`, mutably.
    #[inline]
    pub(crate) fn row_mut(&mut self, i: u32) -> &mut SpecRow {
        &mut self.rows[i as usize]
    }

    /// Sets bit `(i, j)`.
    #[inline]
    pub(crate) fn set(&mut self, i: u32, j: u32) {
        self.rows[i as usize].set(j);
    }

    /// Tests bit `(i, j)`.
    #[inline]
    pub(crate) fn get(&self, i: u32, j: u32) -> bool {
        self.row(i).test(j)
    }

    /// Total set bits across all rows.
    pub(crate) fn count_ones(&self) -> usize {
        self.rows.iter().map(|r| r.popcount() as usize).sum()
    }

    /// `self |= other` row-wise: ORs every row of `other` into the
    /// corresponding row of `self` (the tree-reduction node of the
    /// sharded join).
    pub(crate) fn or_matrix(&mut self, other: &SpecMatrix) {
        for (dst, src) in self.rows.iter_mut().zip(&other.rows) {
            dst.or_row(src.as_ref());
        }
    }

    /// Heap bytes of the row payloads — the memory the adaptive
    /// representation exists to shrink; reported by the bench suite.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|row| match row {
                SpecRow::Dense(words) => words.capacity() * 8,
                SpecRow::Sparse(ids) => ids.capacity() * 4,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_primitives_round_trip() {
        let mut row = vec![0u64; 2];
        for i in [0u32, 63, 64, 100] {
            set_bit(&mut row, i);
        }
        assert_eq!(iter_bits(&row).collect::<Vec<_>>(), vec![0, 63, 64, 100]);
        assert!(get_bit(&row, 63) && !get_bit(&row, 62));
        clear_bit(&mut row, 63);
        assert!(!get_bit(&row, 63));
        assert_eq!(popcount(&row), 3);
        assert!(!is_zero(&row));
        assert!(is_zero(&[0, 0]));
    }

    #[test]
    fn or_and_intersects_are_word_wise() {
        let a = vec![0b1010u64, 1];
        let b = vec![0b0110u64, 0];
        let mut dst = a.clone();
        or_into(&mut dst, &b);
        assert_eq!(dst, vec![0b1110, 1]);
        let mut dst = a.clone();
        and_into(&mut dst, &b);
        assert_eq!(dst, vec![0b0010, 0]);
        assert!(intersects(&a, &b));
        assert!(!intersects(&[0b1000], &[0b0111]));
    }

    #[test]
    fn sparse_and_dense_rows_agree() {
        let words = SPARSE_MIN_WORDS + 4;
        let ids: Vec<u32> = vec![3, 64, 65, 1000, (words as u32 * 64) - 1];
        let sparse = SpecRow::Sparse(ids.clone());
        let mut dense_words = vec![0u64; words];
        for &id in &ids {
            set_bit(&mut dense_words, id);
        }
        let dense = SpecRow::Dense(dense_words.clone());

        assert_eq!(sparse, dense, "logical equality crosses representations");
        assert_eq!(
            sparse.iter().collect::<Vec<_>>(),
            dense.iter().collect::<Vec<_>>()
        );
        assert_eq!(sparse.popcount(), dense.popcount());
        for &id in &ids {
            assert!(sparse.as_ref().test(id) && dense.as_ref().test(id));
        }
        assert!(!sparse.as_ref().test(4) && !dense.as_ref().test(4));

        let mut from_sparse = vec![0u64; words];
        sparse.as_ref().or_into_dense(&mut from_sparse);
        assert_eq!(from_sparse, dense_words);

        let mut state = vec![0u64; words];
        set_bit(&mut state, 64);
        set_bit(&mut state, 1000);
        assert!(sparse.as_ref().contains_all_dense(&state));
        assert!(sparse.as_ref().intersects_dense(&state));
        set_bit(&mut state, 5);
        assert!(!sparse.as_ref().contains_all_dense(&state));
    }

    #[test]
    fn representation_policy_is_size_driven() {
        // Narrow rows are always dense.
        assert!(!use_sparse_rep(0, 2));
        assert!(!use_sparse_rep(1, SPARSE_MIN_WORDS - 1));
        // Wide sparse rows go sparse; wide full rows stay dense.
        assert!(use_sparse_rep(3, SPARSE_MIN_WORDS));
        assert!(!use_sparse_rep(SPARSE_MIN_WORDS * 2, SPARSE_MIN_WORDS));
        // from_dense applies the policy.
        let words = SPARSE_MIN_WORDS;
        let mut row = vec![0u64; words];
        set_bit(&mut row, 7);
        assert!(matches!(
            SpecRow::from_dense(&row, words),
            SpecRow::Sparse(_)
        ));
        let full: Vec<u64> = vec![u64::MAX; words];
        assert!(matches!(
            SpecRow::from_dense(&full, words),
            SpecRow::Dense(_)
        ));
    }

    #[test]
    fn spec_row_set_and_or_accumulate() {
        let mut sparse = SpecRow::Sparse(Vec::new());
        for id in [9u32, 3, 9, 77] {
            sparse.set(id);
        }
        assert_eq!(sparse.iter().collect::<Vec<_>>(), vec![3, 9, 77]);

        let mut other = SpecRow::Sparse(vec![1, 9, 100]);
        other.or_row(sparse.as_ref());
        assert_eq!(other.iter().collect::<Vec<_>>(), vec![1, 3, 9, 77, 100]);

        let mut dense = SpecRow::Dense(vec![0u64; 2]);
        dense.set(64);
        dense.or_row(RowRef::Sparse(&[0, 65]));
        assert_eq!(dense.iter().collect::<Vec<_>>(), vec![0, 64, 65]);

        let mut sparse_from_dense = SpecRow::Sparse(vec![2]);
        sparse_from_dense.or_row(dense.as_ref());
        assert_eq!(
            sparse_from_dense.iter().collect::<Vec<_>>(),
            vec![0, 2, 64, 65]
        );
    }

    #[test]
    fn matrix_round_trips_and_ors() {
        let mut m = SpecMatrix::new(3, 2);
        m.set(0, 5);
        m.set(2, 64);
        m.set(2, 3);
        assert!(m.get(0, 5) && m.get(2, 64) && !m.get(1, 0));
        assert_eq!(m.count_ones(), 3);
        assert_eq!(m.row(2).iter().collect::<Vec<_>>(), vec![3, 64]);

        let mut other = SpecMatrix::new(3, 2);
        other.set(0, 6);
        other.or_matrix(&m);
        assert!(other.get(0, 5) && other.get(0, 6) && other.get(2, 3));
        assert_eq!(m.len(), 3);
        assert_eq!(m.words(), 2);
        assert!(m.heap_bytes() > 0);
    }
}

/// Differential property tests: every [`RowRef`]/[`SpecRow`] operation
/// must agree between the dense and sparse representations on random
/// rows — the ground truth that lets the rest of the crate stay
/// representation-agnostic.
#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    const WORDS: usize = 3;
    const BITS: u32 = (WORDS as u32) * 64;

    fn ids() -> impl Strategy<Value = Vec<u32>> {
        vec(0u32..BITS, 0..40).prop_map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v
        })
    }

    fn to_dense(ids: &[u32]) -> Vec<u64> {
        let mut row = vec![0u64; WORDS];
        for &id in ids {
            set_bit(&mut row, id);
        }
        row
    }

    /// Both representations of one id set.
    fn both(ids: &[u32]) -> (SpecRow, SpecRow) {
        (SpecRow::Dense(to_dense(ids)), SpecRow::Sparse(ids.to_vec()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn readers_agree_across_representations(a in ids(), probe in 0u32..BITS) {
            let (dense, sparse) = both(&a);
            prop_assert_eq!(&dense, &sparse, "logical equality");
            prop_assert_eq!(
                dense.iter().collect::<Vec<_>>(),
                sparse.iter().collect::<Vec<_>>()
            );
            prop_assert_eq!(dense.popcount(), sparse.popcount());
            prop_assert_eq!(dense.as_ref().is_empty(), sparse.as_ref().is_empty());
            prop_assert_eq!(dense.as_ref().test(probe), sparse.as_ref().test(probe));
        }

        #[test]
        fn or_row_agrees_in_all_four_combinations(a in ids(), b in ids()) {
            let (da, sa) = both(&a);
            let (db, sb) = both(&b);
            let mut expected: Vec<u32> = a.clone();
            expected.extend(&b);
            expected.sort_unstable();
            expected.dedup();
            for dst in [&da, &sa] {
                for src in [&db, &sb] {
                    let mut acc = dst.clone();
                    acc.or_row(src.as_ref());
                    prop_assert_eq!(
                        acc.iter().collect::<Vec<_>>(),
                        expected.clone(),
                        "or_row must union regardless of representations"
                    );
                }
            }
        }

        #[test]
        fn set_agrees_across_representations(a in ids(), extra in vec(0u32..BITS, 0..8)) {
            let (mut dense, mut sparse) = both(&a);
            for &id in &extra {
                dense.set(id);
                sparse.set(id);
            }
            prop_assert_eq!(&dense, &sparse);
            prop_assert!(extra.iter().all(|&id| sparse.as_ref().test(id)));
        }

        #[test]
        fn dense_interop_agrees(a in ids(), b in ids()) {
            let (da, sa) = both(&a);
            let dense_b = to_dense(&b);

            let mut from_dense = vec![0u64; WORDS];
            da.as_ref().or_into_dense(&mut from_dense);
            let mut from_sparse = vec![0u64; WORDS];
            sa.as_ref().or_into_dense(&mut from_sparse);
            prop_assert_eq!(&from_dense, &from_sparse);
            prop_assert_eq!(&from_dense, &to_dense(&a));

            prop_assert_eq!(
                da.as_ref().intersects_dense(&dense_b),
                sa.as_ref().intersects_dense(&dense_b)
            );
            prop_assert_eq!(
                da.as_ref().contains_all_dense(&dense_b),
                sa.as_ref().contains_all_dense(&dense_b)
            );
            // Ground truth via the set view.
            let bset: std::collections::BTreeSet<u32> = b.iter().copied().collect();
            let aset: std::collections::BTreeSet<u32> = a.iter().copied().collect();
            prop_assert_eq!(
                da.as_ref().intersects_dense(&dense_b),
                !aset.is_disjoint(&bset)
            );
            prop_assert_eq!(
                da.as_ref().contains_all_dense(&dense_b),
                bset.is_subset(&aset)
            );
        }

        #[test]
        fn from_dense_and_from_sorted_ids_round_trip(a in ids()) {
            let row = to_dense(&a);
            let adaptive = SpecRow::from_dense(&row, WORDS);
            prop_assert_eq!(adaptive.iter().collect::<Vec<_>>(), a.clone());
            let adaptive = SpecRow::from_sorted_ids(a.clone(), WORDS);
            prop_assert_eq!(adaptive.iter().collect::<Vec<_>>(), a);
        }
    }
}
