//! Partitioned merging: splitting a merge along weakly-connected
//! components.
//!
//! The paper's merge is a least upper bound over the *union* of the
//! inputs' specialization orders and arrow relations, and every rule the
//! pipeline runs — transitive closure, W1/W2 arrow closure, the `Imp`
//! fixpoint, the S̄/Ē extension rules — only ever relates classes that
//! are connected in the combined specialization+arrow graph. Classes in
//! different weakly-connected components therefore never interact:
//!
//! * closure and W1/W2 propagate along edges, which stay inside a
//!   component;
//! * an `Imp` state is `MinS(R(X, a))` for `X` inside one component, so
//!   every state (and every implicit class it demands) stays inside it;
//! * the S̄/Ē extension rules relate implicit classes to their origin
//!   classes, again inside one component.
//!
//! The merge of the whole is consequently the **disjoint union of the
//! merges of the components** — which is exactly how partition-based
//! schema matchers scale to 10k–100k-class taxonomies. [`analyze`]
//! computes the components with a union–find over the class vocabulary;
//! [`Partitioning::split`] restricts each input to each component (the
//! restriction of a closed schema to a component-closed class set is
//! still closed, so no re-closure runs). The planner surfaces the
//! decision as `PlannedEngine::Partitioned` with
//! `MergePlan::partitions` components.

use std::collections::BTreeMap;

use crate::class::Class;
use crate::weak::WeakSchema;

/// Union–find with path halving and union by rank.
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
    }
}

/// The weakly-connected components of a merge's combined
/// specialization+arrow graph, with a component index per class.
/// Components are numbered `0..count` in order of their smallest class,
/// so the numbering — and everything derived from it — is deterministic.
pub(crate) struct Partitioning {
    component_of: BTreeMap<Class, u32>,
    /// Classes per component, indexed by component.
    sizes: Vec<usize>,
}

/// Computes the weakly-connected components of the union graph of
/// `schemas` plus `extra_edges` (user assertions, which relate classes
/// like any other input).
pub(crate) fn analyze(schemas: &[&WeakSchema], extra_edges: &[(Class, Class)]) -> Partitioning {
    // Intern every class name mentioned anywhere.
    let mut ids: BTreeMap<&Class, u32> = BTreeMap::new();
    for schema in schemas {
        for class in schema.classes() {
            let next = ids.len() as u32;
            ids.entry(class).or_insert(next);
        }
    }
    for (a, b) in extra_edges {
        for class in [a, b] {
            let next = ids.len() as u32;
            ids.entry(class).or_insert(next);
        }
    }

    // Union across every specialization pair and arrow. The closed
    // relations contain their direct edges, so walking them connects
    // exactly what the direct graph connects.
    let mut uf = UnionFind::new(ids.len());
    for schema in schemas {
        for (sub, sups) in &schema.supers {
            let sub = ids[sub];
            for sup in sups {
                uf.union(sub, ids[sup]);
            }
        }
        for (src, by_label) in &schema.arrows {
            let src = ids[src];
            for targets in by_label.values() {
                for tgt in targets {
                    uf.union(src, ids[tgt]);
                }
            }
        }
    }
    for (a, b) in extra_edges {
        uf.union(ids[a], ids[b]);
    }

    // Number components by first appearance in sorted class order.
    let mut component_of = BTreeMap::new();
    let mut sizes: Vec<usize> = Vec::new();
    let mut root_component: BTreeMap<u32, u32> = BTreeMap::new();
    for (class, &id) in &ids {
        let root = uf.find(id);
        let next = sizes.len() as u32;
        let component = *root_component.entry(root).or_insert_with(|| {
            sizes.push(0);
            next
        });
        sizes[component as usize] += 1;
        component_of.insert((*class).clone(), component);
    }
    Partitioning {
        component_of,
        sizes,
    }
}

impl Partitioning {
    /// Number of components.
    pub(crate) fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Classes in the largest component.
    pub(crate) fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Splits `schema` into its induced sub-schemas, one per component it
    /// touches, in component order. Every edge of a closed schema stays
    /// inside one component (components are WCCs of a graph containing
    /// all of the schema's edges), so each piece is the *restriction* of
    /// the closed schema — itself closed, no re-closure needed — and the
    /// pieces partition the schema's classes.
    pub(crate) fn split(&self, schema: &WeakSchema) -> Vec<(u32, WeakSchema)> {
        let mut pieces: BTreeMap<u32, WeakSchema> = BTreeMap::new();
        for class in schema.classes() {
            let component = self.component_of[class];
            pieces
                .entry(component)
                .or_default()
                .classes
                .insert(class.clone());
        }
        for (sub, sups) in &schema.supers {
            let piece = pieces
                .get_mut(&self.component_of[sub])
                .expect("a schema class always lands in a piece");
            piece.supers.insert(sub.clone(), sups.clone());
        }
        for (src, by_label) in &schema.arrows {
            let piece = pieces
                .get_mut(&self.component_of[src])
                .expect("a schema class always lands in a piece");
            piece.arrows.insert(src.clone(), by_label.clone());
        }
        pieces.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    #[test]
    fn components_follow_spec_and_arrow_edges() {
        let g1 = WeakSchema::builder()
            .specialize("A1", "A0")
            .arrow("B0", "f", "B1")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .specialize("A2", "A1")
            .class("Lone")
            .build()
            .unwrap();
        let parts = analyze(&[&g1, &g2], &[]);
        // {A0,A1,A2}, {B0,B1}, {Lone} — numbered by smallest class.
        assert_eq!(parts.count(), 3);
        assert_eq!(parts.largest(), 3);
        assert_eq!(parts.component_of[&c("A0")], parts.component_of[&c("A2")]);
        assert_ne!(parts.component_of[&c("A0")], parts.component_of[&c("B1")]);
        assert_eq!(parts.component_of[&c("A0")], 0);
        assert_eq!(parts.component_of[&c("B0")], 1);
        assert_eq!(parts.component_of[&c("Lone")], 2);
    }

    #[test]
    fn assertion_edges_bridge_components() {
        let g = WeakSchema::builder().class("X").class("Y").build().unwrap();
        assert_eq!(analyze(&[&g], &[]).count(), 2);
        assert_eq!(analyze(&[&g], &[(c("X"), c("Y"))]).count(), 1);
    }

    #[test]
    fn split_restricts_without_reclosing() {
        let g = WeakSchema::builder()
            .specialize("A1", "A0")
            .arrow("A1", "f", "A0")
            .arrow("B0", "g", "B1")
            .build()
            .unwrap();
        let parts = analyze(&[&g], &[]);
        let pieces = parts.split(&g);
        assert_eq!(pieces.len(), 2);
        let (_, ref a) = pieces[0];
        let (_, ref b) = pieces[1];
        assert_eq!(a.num_classes(), 2);
        assert!(a.specializes(&c("A1"), &c("A0")));
        // W1 lifted f onto A1's generalization walk already in g; the
        // restriction carries the closed rows verbatim.
        assert_eq!(a.num_arrows(), g.num_arrows() - b.num_arrows());
        assert!(b.has_arrow(&c("B0"), &crate::name::Label::new("g"), &c("B1")));
        assert!(a.validate().is_ok());
        assert!(b.validate().is_ok());
    }
}
