//! Schema differences: what separates two schemas in the information
//! ordering.
//!
//! The interactive §3 workflow needs to *show* the designer what a merge
//! added, or why two schemas are not `⊑`-comparable. [`SchemaDiff`]
//! decomposes the symmetric difference of two closed schemas into
//! classes, specialization pairs and arrows; `diff(G, G ⊔ H)` is exactly
//! H's contribution, and an empty left side witnesses `G ⊑ H`.

use std::collections::BTreeSet;
use std::fmt;

use crate::class::Class;
use crate::name::Label;
use crate::weak::WeakSchema;

/// One side of a difference: the items present in one schema but not the
/// other.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffSide {
    /// Classes present only on this side.
    pub classes: BTreeSet<Class>,
    /// Strict specialization pairs present only on this side.
    pub specializations: BTreeSet<(Class, Class)>,
    /// Arrows present only on this side.
    pub arrows: BTreeSet<(Class, Label, Class)>,
}

impl DiffSide {
    /// Whether this side contributes nothing.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty() && self.specializations.is_empty() && self.arrows.is_empty()
    }

    /// Total number of differing items.
    pub fn len(&self) -> usize {
        self.classes.len() + self.specializations.len() + self.arrows.len()
    }
}

/// The symmetric difference of two schemas, in closed form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaDiff {
    /// Present in the left schema only.
    pub left_only: DiffSide,
    /// Present in the right schema only.
    pub right_only: DiffSide,
}

impl SchemaDiff {
    /// Whether the schemas are equal.
    pub fn is_empty(&self) -> bool {
        self.left_only.is_empty() && self.right_only.is_empty()
    }

    /// `left ⊑ right`: nothing is on the left side only.
    pub fn left_is_subschema(&self) -> bool {
        self.left_only.is_empty()
    }

    /// `right ⊑ left`: nothing is on the right side only.
    pub fn right_is_subschema(&self) -> bool {
        self.right_only.is_empty()
    }
}

impl fmt::Display for SchemaDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (marker, side) in [("-", &self.left_only), ("+", &self.right_only)] {
            for class in &side.classes {
                writeln!(f, "{marker} class {class};")?;
            }
            for (sub, sup) in &side.specializations {
                writeln!(f, "{marker} {sub} => {sup};")?;
            }
            for (src, label, tgt) in &side.arrows {
                writeln!(f, "{marker} {src} --{label}--> {tgt};")?;
            }
        }
        Ok(())
    }
}

/// Computes the symmetric difference between two (closed) schemas. The
/// convention matches unified diffs read left-to-right: items only in
/// `left` print with `-`, items only in `right` with `+`.
pub fn diff(left: &WeakSchema, right: &WeakSchema) -> SchemaDiff {
    fn side(a: &WeakSchema, b: &WeakSchema) -> DiffSide {
        let classes = a
            .classes()
            .filter(|c| !b.contains_class(c))
            .cloned()
            .collect();
        let specializations = a
            .specialization_pairs()
            .filter(|(sub, sup)| !(b.specializes(sub, sup) && sub != sup))
            .map(|(sub, sup)| (sub.clone(), sup.clone()))
            .collect();
        let arrows = a
            .arrow_triples()
            .filter(|(src, label, tgt)| !b.has_arrow(src, label, tgt))
            .map(|(src, label, tgt)| (src.clone(), label.clone(), tgt.clone()))
            .collect();
        DiffSide {
            classes,
            specializations,
            arrows,
        }
    }
    SchemaDiff {
        left_only: side(left, right),
        right_only: side(right, left),
    }
}

/// What a merge added on top of one input: `diff(input, merged).right_only`
/// (the left side is empty whenever `input ⊑ merged`, which the weak join
/// guarantees).
pub fn merge_contribution(input: &WeakSchema, merged: &WeakSchema) -> DiffSide {
    diff(input, merged).right_only
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::weak_join;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn equal_schemas_have_empty_diff() {
        let g = WeakSchema::builder()
            .specialize("B", "A")
            .arrow("A", "f", "T")
            .build()
            .unwrap();
        let d = diff(&g, &g);
        assert!(d.is_empty());
        assert!(d.left_is_subschema() && d.right_is_subschema());
        assert_eq!(d.to_string(), "");
    }

    #[test]
    fn diff_decomposes_by_kind() {
        let g1 = WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .class("Spare")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .arrow("Dog", "name", "text")
            .specialize("Puppy", "Dog")
            .build()
            .unwrap();
        let d = diff(&g1, &g2);
        assert_eq!(
            d.left_only.classes,
            [c("Spare"), c("int")].into_iter().collect()
        );
        assert!(d.left_only.arrows.contains(&(c("Dog"), l("age"), c("int"))));
        assert!(d.right_only.classes.contains(&c("Puppy")));
        assert!(d
            .right_only
            .specializations
            .contains(&(c("Puppy"), c("Dog"))));
        assert_eq!(d.left_only.len(), 3);
        assert!(!d.left_is_subschema() && !d.right_is_subschema());
    }

    #[test]
    fn subschema_shows_as_one_sided_diff() {
        let small = WeakSchema::builder().arrow("A", "f", "B").build().unwrap();
        let big = WeakSchema::builder()
            .arrow("A", "f", "B")
            .arrow("A", "g", "C")
            .build()
            .unwrap();
        let d = diff(&small, &big);
        assert!(d.left_is_subschema());
        assert!(!d.right_is_subschema());
        assert_eq!(d.right_only.arrows.len(), 1);
        // Consistency with the ⊑ predicate.
        assert_eq!(d.left_is_subschema(), small.is_subschema_of(&big));
    }

    #[test]
    fn merge_contribution_is_the_other_inputs_information() {
        let g1 = WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .arrow("Dog", "name", "text")
            .build()
            .unwrap();
        let joined = weak_join(&g1, &g2).unwrap();
        let contribution = merge_contribution(&g1, &joined);
        assert!(contribution
            .arrows
            .contains(&(c("Dog"), l("name"), c("text"))));
        assert!(contribution.classes.contains(&c("text")));
        assert!(!contribution
            .arrows
            .contains(&(c("Dog"), l("age"), c("int"))));
        // The left side is empty: g1 ⊑ join.
        assert!(diff(&g1, &joined).left_is_subschema());
    }

    #[test]
    fn diff_sees_closure_differences() {
        // Same declarations, but one schema adds an isa that induces
        // inherited arrows; the diff reports the induced arrows too.
        let flat = WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .class("Puppy")
            .build()
            .unwrap();
        let inherited = WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .specialize("Puppy", "Dog")
            .build()
            .unwrap();
        let d = diff(&flat, &inherited);
        assert!(d
            .right_only
            .arrows
            .contains(&(c("Puppy"), l("age"), c("int"))));
    }

    #[test]
    fn display_uses_diff_markers() {
        let g1 = WeakSchema::builder().class("A").build().unwrap();
        let g2 = WeakSchema::builder().class("B").build().unwrap();
        let text = diff(&g1, &g2).to_string();
        assert!(text.contains("- class A;"));
        assert!(text.contains("+ class B;"));
    }
}
