//! Restructuring: §7's "normal form" operations on schema graphs.
//!
//! §7 observes that beyond naming conflicts, *structural* conflicts
//! occur: "a many-one relationship may be a single arrow in one schema
//! but introduce a relationship node in another schema. In these cases,
//! the merge will not 'resolve' the differences but present both
//! interpretations. To force an integration, we need some kind of
//! 'normal form'."
//!
//! This module supplies the two inverse transformations between those
//! presentations in the graph model:
//!
//! * [`reify_arrow`] — replace a direct arrow `p --a--> q` with a
//!   relationship node `R` carrying role arrows `R --src--> p` and
//!   `R --tgt--> q` (the "introduce a relationship node" form);
//! * [`flatten_class`] — the inverse: collapse a *bare* binary node back
//!   into a direct arrow.
//!
//! Both preserve the informational content they touch — on applicable
//! inputs, `flatten_class ∘ reify_arrow` is the identity — so a designer
//! can bring two schemas to either normal form before merging and the
//! result is independent of which schema was restructured first (the
//! operations act on disjoint parts of the graph and the merge is a
//! least upper bound).
//!
//! A recorded sequence of operations, including §3 renamings, is a
//! [`Restructuring`] script: the audit trail an interactive tool keeps so
//! that source schemas can be re-normalized mechanically when they
//! change.

use std::fmt;

use crate::class::Class;
use crate::error::SchemaError;
use crate::name::Label;
use crate::rename::Renaming;
use crate::weak::WeakSchema;

/// Why a restructuring operation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestructureError {
    /// The class the operation targets is not in the schema.
    MissingClass(Class),
    /// The source class has no arrow with the given label.
    MissingArrow {
        /// The class that was supposed to carry the arrow.
        class: Class,
        /// The absent label.
        label: Label,
    },
    /// The arrow is inherited from a strict superclass (W1), so removing
    /// it at the subclass is impossible — the closure would immediately
    /// restore it. Reify at the named ancestor instead.
    InheritedArrow {
        /// The class at which reification was requested.
        class: Class,
        /// The label in question.
        label: Label,
        /// A strict superclass that also carries the arrow.
        from: Class,
    },
    /// The node name chosen for reification is already a class.
    NodeExists(Class),
    /// Flattening requires the node to be *bare*: exactly the two role
    /// arrows, no other arrows, no specializations, and nothing pointing
    /// at it. The string says which requirement failed.
    NodeNotBare {
        /// The offending node.
        node: Class,
        /// Human-readable reason.
        reason: String,
    },
    /// Flattening requires each role to have a unique minimal target.
    AmbiguousRole {
        /// The node being flattened.
        node: Class,
        /// The role whose target is not unique.
        role: Label,
    },
    /// Rebuilding the schema after the edit failed (e.g. a renaming in a
    /// script created a specialization cycle).
    Schema(SchemaError),
}

impl fmt::Display for RestructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestructureError::MissingClass(class) => {
                write!(f, "class {class} is not in the schema")
            }
            RestructureError::MissingArrow { class, label } => {
                write!(f, "class {class} has no {label}-arrow")
            }
            RestructureError::InheritedArrow { class, label, from } => {
                write!(
                    f,
                    "the {label}-arrow of {class} is inherited from {from}; reify it there"
                )
            }
            RestructureError::NodeExists(class) => {
                write!(f, "cannot reify into {class}: the class already exists")
            }
            RestructureError::NodeNotBare { node, reason } => {
                write!(f, "cannot flatten {node}: {reason}")
            }
            RestructureError::AmbiguousRole { node, role } => {
                write!(
                    f,
                    "cannot flatten {node}: role {role} has no unique minimal target"
                )
            }
            RestructureError::Schema(err) => write!(f, "restructured schema is invalid: {err}"),
        }
    }
}

impl std::error::Error for RestructureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestructureError::Schema(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SchemaError> for RestructureError {
    fn from(err: SchemaError) -> Self {
        RestructureError::Schema(err)
    }
}

/// Replaces the direct arrow family `src --label--> *` with a
/// relationship node.
///
/// The node `node` is added with a `src_role`-arrow to `src` and a
/// `tgt_role`-arrow to each *minimal* target of `src`'s `label`-arrows
/// (the closure re-adds the implied supertargets). The `label`-arrows are
/// removed from `src` and from every strict specialization of `src` that
/// only carried them by inheritance.
///
/// This is the graph-model half of the ER transform that turns an
/// attribute edge into a relationship entity; see
/// `schema-merge-er::restructure` for the stratified version.
pub fn reify_arrow(
    schema: &WeakSchema,
    src: &Class,
    label: &Label,
    node: impl Into<Class>,
    src_role: impl Into<Label>,
    tgt_role: impl Into<Label>,
) -> Result<WeakSchema, RestructureError> {
    let node = node.into();
    let src_role = src_role.into();
    let tgt_role = tgt_role.into();
    if !schema.contains_class(src) {
        return Err(RestructureError::MissingClass(src.clone()));
    }
    if schema.contains_class(&node) {
        return Err(RestructureError::NodeExists(node));
    }
    let targets = schema.arrow_targets(src, label);
    if targets.is_empty() {
        return Err(RestructureError::MissingArrow {
            class: src.clone(),
            label: label.clone(),
        });
    }
    // W1 forces the arrow onto every specialization, so an arrow that a
    // strict superclass also carries cannot be removed here: the closure
    // would put it straight back.
    if let Some(ancestor) = schema
        .strict_supers(src)
        .into_iter()
        .find(|sup| !schema.arrow_targets(sup, label).is_empty())
    {
        return Err(RestructureError::InheritedArrow {
            class: src.clone(),
            label: label.clone(),
            from: ancestor,
        });
    }
    let canonical_targets = schema.min_s(targets.iter());

    // The cone below src inherits the arrow via W1; drop it there too,
    // unless a subclass has *extra* targets of its own (then only the
    // inherited part disappears — handled by keeping its surplus).
    let mut dropped_sources = schema.strict_subs(src);
    dropped_sources.insert(src.clone());

    let mut builder = WeakSchema::builder().class(node.clone());
    for class in schema.classes() {
        builder = builder.class(class.clone());
    }
    for (sub, sup) in schema.specialization_pairs() {
        if sub != sup {
            builder = builder.specialize(sub.clone(), sup.clone());
        }
    }
    for (p, a, q) in schema.arrow_triples() {
        let inherited_copy = a == label && dropped_sources.contains(p) && targets.contains(q);
        if !inherited_copy {
            builder = builder.arrow(p.clone(), a.clone(), q.clone());
        }
    }
    builder = builder.arrow(node.clone(), src_role, src.clone());
    for target in canonical_targets {
        builder = builder.arrow(node.clone(), tgt_role.clone(), target);
    }
    Ok(builder.build()?)
}

/// Collapses a bare binary node back into a direct arrow — the inverse
/// of [`reify_arrow`].
///
/// `node` must carry exactly the labels `src_role` and `tgt_role`, have a
/// unique minimal target under each, and be otherwise disconnected (no
/// other arrows in or out, no strict specializations either way). The
/// node is removed and a `new_label`-arrow is drawn from the
/// `src_role`-target to the `tgt_role`-target.
pub fn flatten_class(
    schema: &WeakSchema,
    node: &Class,
    src_role: &Label,
    tgt_role: &Label,
    new_label: impl Into<Label>,
) -> Result<WeakSchema, RestructureError> {
    if !schema.contains_class(node) {
        return Err(RestructureError::MissingClass(node.clone()));
    }
    let bare = |reason: &str| RestructureError::NodeNotBare {
        node: node.clone(),
        reason: reason.to_string(),
    };
    let labels = schema.labels_of(node);
    if !labels.contains(src_role) || !labels.contains(tgt_role) {
        return Err(RestructureError::MissingArrow {
            class: node.clone(),
            label: if labels.contains(src_role) {
                tgt_role.clone()
            } else {
                src_role.clone()
            },
        });
    }
    if labels.len() != 2 {
        return Err(bare("it carries arrows besides the two roles"));
    }
    if !schema.strict_subs(node).is_empty() || !schema.strict_supers(node).is_empty() {
        return Err(bare("it participates in specializations"));
    }
    if schema.arrow_triples().any(|(_, _, q)| q == node) {
        return Err(bare("other classes have arrows into it"));
    }

    let unique_min = |role: &Label| -> Result<Class, RestructureError> {
        let min = schema.min_s(schema.arrow_targets(node, role).iter());
        if min.len() == 1 {
            Ok(min.into_iter().next().expect("len checked"))
        } else {
            Err(RestructureError::AmbiguousRole {
                node: node.clone(),
                role: role.clone(),
            })
        }
    };
    let src = unique_min(src_role)?;
    let tgt = unique_min(tgt_role)?;

    let mut builder = WeakSchema::builder();
    for class in schema.classes() {
        if class != node {
            builder = builder.class(class.clone());
        }
    }
    for (sub, sup) in schema.specialization_pairs() {
        if sub != sup {
            builder = builder.specialize(sub.clone(), sup.clone());
        }
    }
    for (p, a, q) in schema.arrow_triples() {
        if p != node && q != node {
            builder = builder.arrow(p.clone(), a.clone(), q.clone());
        }
    }
    builder = builder.arrow(src, new_label, tgt);
    Ok(builder.build()?)
}

/// Whether [`flatten_class`] would accept `node` with the given roles.
pub fn is_flattenable(
    schema: &WeakSchema,
    node: &Class,
    src_role: &Label,
    tgt_role: &Label,
) -> bool {
    flatten_class(schema, node, src_role, tgt_role, "probe").is_ok()
}

/// One step of a recorded restructuring script.
#[derive(Debug, Clone, PartialEq)]
pub enum RestructureOp {
    /// Apply a §3 renaming.
    Rename(Renaming),
    /// Reify `src --label--> *` into `node` with the given role labels.
    Reify {
        /// Source class of the arrow being reified.
        src: Class,
        /// Label of the arrow being reified.
        label: Label,
        /// Name for the new relationship node.
        node: Class,
        /// Role label pointing back at `src`.
        src_role: Label,
        /// Role label pointing at the arrow's targets.
        tgt_role: Label,
    },
    /// Flatten `node` into a direct `new_label`-arrow.
    Flatten {
        /// The bare binary node to remove.
        node: Class,
        /// Role label identifying the arrow's source.
        src_role: Label,
        /// Role label identifying the arrow's target.
        tgt_role: Label,
        /// Label for the restored direct arrow.
        new_label: Label,
    },
}

impl fmt::Display for RestructureOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestructureOp::Rename(renaming) => write!(f, "rename {renaming}"),
            RestructureOp::Reify {
                src, label, node, ..
            } => {
                write!(f, "reify {src} --{label}--> into node {node}")
            }
            RestructureOp::Flatten {
                node, new_label, ..
            } => {
                write!(f, "flatten {node} into a --{new_label}--> arrow")
            }
        }
    }
}

/// A replayable sequence of restructuring operations — the audit trail
/// of an interactive integration session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Restructuring {
    ops: Vec<RestructureOp>,
}

impl Restructuring {
    /// An empty script.
    pub fn new() -> Self {
        Restructuring::default()
    }

    /// Appends a renaming step.
    pub fn rename(mut self, renaming: Renaming) -> Self {
        self.ops.push(RestructureOp::Rename(renaming));
        self
    }

    /// Appends a reification step.
    pub fn reify(
        mut self,
        src: impl Into<Class>,
        label: impl Into<Label>,
        node: impl Into<Class>,
        src_role: impl Into<Label>,
        tgt_role: impl Into<Label>,
    ) -> Self {
        self.ops.push(RestructureOp::Reify {
            src: src.into(),
            label: label.into(),
            node: node.into(),
            src_role: src_role.into(),
            tgt_role: tgt_role.into(),
        });
        self
    }

    /// Appends a flattening step.
    pub fn flatten(
        mut self,
        node: impl Into<Class>,
        src_role: impl Into<Label>,
        tgt_role: impl Into<Label>,
        new_label: impl Into<Label>,
    ) -> Self {
        self.ops.push(RestructureOp::Flatten {
            node: node.into(),
            src_role: src_role.into(),
            tgt_role: tgt_role.into(),
            new_label: new_label.into(),
        });
        self
    }

    /// The recorded steps, in application order.
    pub fn ops(&self) -> &[RestructureOp] {
        &self.ops
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Replays the script against a schema.
    pub fn apply(&self, schema: &WeakSchema) -> Result<WeakSchema, RestructureError> {
        let mut current = schema.clone();
        for op in &self.ops {
            current = match op {
                RestructureOp::Rename(renaming) => renaming.apply(&current)?.0,
                RestructureOp::Reify {
                    src,
                    label,
                    node,
                    src_role,
                    tgt_role,
                } => reify_arrow(
                    &current,
                    src,
                    label,
                    node.clone(),
                    src_role.clone(),
                    tgt_role.clone(),
                )?,
                RestructureOp::Flatten {
                    node,
                    src_role,
                    tgt_role,
                    new_label,
                } => flatten_class(&current, node, src_role, tgt_role, new_label.clone())?,
            };
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::weak_join;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// The §7 example: one schema draws ownership as a direct arrow, the
    /// other reifies it as an `Owns` relationship node.
    fn direct_form() -> WeakSchema {
        WeakSchema::builder()
            .arrow("Person", "owns", "Dog")
            .arrow("Dog", "kind", "breed")
            .build()
            .expect("valid")
    }

    fn reified_form() -> WeakSchema {
        WeakSchema::builder()
            .arrow("Owns", "owner", "Person")
            .arrow("Owns", "pet", "Dog")
            .arrow("Dog", "kind", "breed")
            .build()
            .expect("valid")
    }

    #[test]
    fn reify_introduces_the_node_form() {
        let g = direct_form();
        let reified =
            reify_arrow(&g, &c("Person"), &l("owns"), "Owns", "owner", "pet").expect("reifies");
        assert_eq!(reified, reified_form());
        // The direct arrow is gone.
        assert!(reified.arrow_targets(&c("Person"), &l("owns")).is_empty());
    }

    #[test]
    fn flatten_restores_the_direct_form() {
        let g = reified_form();
        let flat = flatten_class(&g, &c("Owns"), &l("owner"), &l("pet"), "owns").expect("flattens");
        assert_eq!(flat, direct_form());
    }

    #[test]
    fn reify_then_flatten_is_identity() {
        let g = direct_form();
        let reified =
            reify_arrow(&g, &c("Person"), &l("owns"), "Owns", "owner", "pet").expect("reifies");
        let back =
            flatten_class(&reified, &c("Owns"), &l("owner"), &l("pet"), "owns").expect("flattens");
        assert_eq!(back, g);
    }

    #[test]
    fn normalized_schemas_merge_without_duplication() {
        // Without restructuring, merging the two forms "presents both
        // interpretations" (§7): the direct arrow AND the node. After
        // normalizing to the reified form, the merge has only the node.
        let direct = direct_form();
        let reified = reified_form();

        let unnormalized = weak_join(&direct, &reified).expect("compatible");
        assert!(!unnormalized
            .arrow_targets(&c("Person"), &l("owns"))
            .is_empty());
        assert!(unnormalized.contains_class(&c("Owns")));

        let normalized_direct =
            reify_arrow(&direct, &c("Person"), &l("owns"), "Owns", "owner", "pet")
                .expect("reifies");
        let merged = weak_join(&normalized_direct, &reified).expect("compatible");
        assert!(merged.arrow_targets(&c("Person"), &l("owns")).is_empty());
        assert_eq!(merged, reified);
    }

    #[test]
    fn reify_drops_inherited_copies_in_the_cone() {
        let g = WeakSchema::builder()
            .arrow("Dog", "owner", "Person")
            .specialize("Guide-dog", "Dog")
            .build()
            .expect("valid");
        let reified =
            reify_arrow(&g, &c("Dog"), &l("owner"), "Owns", "pet", "owner").expect("reifies");
        assert!(reified
            .arrow_targets(&c("Guide-dog"), &l("owner"))
            .is_empty());
        assert!(reified.arrow_targets(&c("Dog"), &l("owner")).is_empty());
    }

    #[test]
    fn reify_keeps_sibling_arrows_and_specializations() {
        let g = WeakSchema::builder()
            .arrow("Person", "owns", "Dog")
            .arrow("Person", "name", "string")
            .specialize("Employee", "Person")
            .build()
            .expect("valid");
        let reified =
            reify_arrow(&g, &c("Person"), &l("owns"), "Owns", "owner", "pet").expect("reifies");
        assert!(!reified.arrow_targets(&c("Person"), &l("name")).is_empty());
        assert!(reified.specializes(&c("Employee"), &c("Person")));
        // Employee inherits name but not the removed owns.
        assert!(!reified.arrow_targets(&c("Employee"), &l("name")).is_empty());
        assert!(reified.arrow_targets(&c("Employee"), &l("owns")).is_empty());
    }

    #[test]
    fn reify_missing_arrow_is_rejected() {
        let g = direct_form();
        let err = reify_arrow(&g, &c("Person"), &l("age"), "N", "s", "t").unwrap_err();
        assert!(matches!(err, RestructureError::MissingArrow { .. }));
        let err = reify_arrow(&g, &c("Ghost"), &l("owns"), "N", "s", "t").unwrap_err();
        assert!(matches!(err, RestructureError::MissingClass(_)));
        let err = reify_arrow(&g, &c("Person"), &l("owns"), "Dog", "s", "t").unwrap_err();
        assert!(matches!(err, RestructureError::NodeExists(_)));
    }

    #[test]
    fn reify_of_inherited_arrow_points_at_the_ancestor() {
        // Guide-dog's owner-arrow comes from Dog via W1: removing it at
        // Guide-dog is impossible (closure restores it), so the error
        // names Dog as the place to reify.
        let g = WeakSchema::builder()
            .arrow("Dog", "owner", "Person")
            .specialize("Guide-dog", "Dog")
            .build()
            .expect("valid");
        let err = reify_arrow(&g, &c("Guide-dog"), &l("owner"), "Owns", "s", "t").unwrap_err();
        match err {
            RestructureError::InheritedArrow { class, from, .. } => {
                assert_eq!(class, c("Guide-dog"));
                assert_eq!(from, c("Dog"));
            }
            other => panic!("expected InheritedArrow, got {other}"),
        }
        // Reifying at the ancestor is the legal move.
        assert!(reify_arrow(&g, &c("Dog"), &l("owner"), "Owns", "s", "t").is_ok());
    }

    #[test]
    fn flatten_rejects_non_bare_nodes() {
        // Extra arrow besides the roles.
        let g = WeakSchema::builder()
            .arrow("Owns", "owner", "Person")
            .arrow("Owns", "pet", "Dog")
            .arrow("Owns", "since", "date")
            .build()
            .expect("valid");
        let err = flatten_class(&g, &c("Owns"), &l("owner"), &l("pet"), "owns").unwrap_err();
        assert!(matches!(err, RestructureError::NodeNotBare { .. }));

        // Participates in a specialization.
        let g = WeakSchema::builder()
            .arrow("Owns", "owner", "Person")
            .arrow("Owns", "pet", "Dog")
            .specialize("Owns", "Relationship")
            .build()
            .expect("valid");
        let err = flatten_class(&g, &c("Owns"), &l("owner"), &l("pet"), "owns").unwrap_err();
        assert!(matches!(err, RestructureError::NodeNotBare { .. }));

        // Something points at it.
        let g = WeakSchema::builder()
            .arrow("Owns", "owner", "Person")
            .arrow("Owns", "pet", "Dog")
            .arrow("Audit", "entry", "Owns")
            .build()
            .expect("valid");
        let err = flatten_class(&g, &c("Owns"), &l("owner"), &l("pet"), "owns").unwrap_err();
        assert!(matches!(err, RestructureError::NodeNotBare { .. }));
    }

    #[test]
    fn flatten_rejects_ambiguous_roles() {
        // Two incomparable owner-targets: no unique minimal class.
        let g = WeakSchema::builder()
            .arrow("Owns", "owner", "Person")
            .arrow("Owns", "owner", "Company")
            .arrow("Owns", "pet", "Dog")
            .build()
            .expect("valid");
        let err = flatten_class(&g, &c("Owns"), &l("owner"), &l("pet"), "owns").unwrap_err();
        assert!(matches!(err, RestructureError::AmbiguousRole { .. }));
    }

    #[test]
    fn flatten_accepts_comparable_role_targets() {
        // owner targets Person and its superclass Agent: minimal target
        // is unique (Person), so flattening succeeds.
        let g = WeakSchema::builder()
            .arrow("Owns", "owner", "Person")
            .arrow("Owns", "pet", "Dog")
            .specialize("Person", "Agent")
            .build()
            .expect("valid");
        let flat = flatten_class(&g, &c("Owns"), &l("owner"), &l("pet"), "owns").expect("ok");
        assert!(flat.has_arrow(&c("Person"), &l("owns"), &c("Dog")));
    }

    #[test]
    fn is_flattenable_probe() {
        assert!(is_flattenable(
            &reified_form(),
            &c("Owns"),
            &l("owner"),
            &l("pet")
        ));
        assert!(!is_flattenable(
            &direct_form(),
            &c("Dog"),
            &l("kind"),
            &l("kind")
        ));
    }

    #[test]
    fn script_replays_and_is_auditable() {
        let script = Restructuring::new()
            .rename(Renaming::new().class("Hound", "Dog"))
            .reify("Person", "owns", "Owns", "owner", "pet");
        assert_eq!(script.len(), 2);
        assert!(!script.is_empty());

        let g = WeakSchema::builder()
            .arrow("Person", "owns", "Hound")
            .build()
            .expect("valid");
        let result = script.apply(&g).expect("replays");
        assert!(result.contains_class(&c("Owns")));
        assert!(result.has_arrow(&c("Owns"), &l("pet"), &c("Dog")));

        let rendered: Vec<String> = script.ops().iter().map(|op| op.to_string()).collect();
        assert_eq!(rendered[0], "rename Hound→Dog");
        assert_eq!(rendered[1], "reify Person --owns--> into node Owns");
    }

    #[test]
    fn script_failure_reports_offending_step() {
        let script = Restructuring::new().flatten("Ghost", "a", "b", "x");
        let g = WeakSchema::empty();
        assert!(matches!(
            script.apply(&g).unwrap_err(),
            RestructureError::MissingClass(_)
        ));
    }
}
