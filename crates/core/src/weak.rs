//! Weak schemas: the carrier of the merge (§4.1).
//!
//! A weak schema over `N, L` is a triple `(C, E, S)` where `S` is a partial
//! order on `C` and `E ⊆ C × L × C` satisfies
//!
//! * **W1** — if `p ⇒ q` and `q --a--> r` then `p --a--> r` (arrows are
//!   inherited by specializations), and
//! * **W2** — if `p --a--> s` and `s ⇒ r` then `p --a--> r` (arrow targets
//!   are upward closed).
//!
//! [`WeakSchema`] stores the *closed* form: `S` transitively closed (strict,
//! reflexivity implicit) and `E` closed under W1/W2. Two schemas are then
//! equal iff they present the same information, and the paper's information
//! ordering `⊑` (§4.1) is component-wise containment, checked by
//! [`WeakSchema::is_subschema_of`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::class::Class;
use crate::error::{CycleWitness, SchemaError};
use crate::name::Label;
use crate::order::{self, UpSet};

/// The closed arrow relation: source ↦ label ↦ targets.
pub(crate) type ArrowMap = BTreeMap<Class, BTreeMap<Label, BTreeSet<Class>>>;

/// Raw schema parts: (classes, strict specialization map, arrow triples).
pub(crate) type RawParts = (
    BTreeSet<Class>,
    BTreeMap<Class, BTreeSet<Class>>,
    Vec<(Class, Label, Class)>,
);

/// A weak schema in canonical closed form. See the module docs.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct WeakSchema {
    pub(crate) classes: BTreeSet<Class>,
    /// Strict "above" sets: `p ↦ { q ≠ p | p ⇒ q }`, transitively closed.
    pub(crate) supers: UpSet<Class>,
    /// Arrows closed under W1/W2. No empty inner maps or sets are stored.
    pub(crate) arrows: ArrowMap,
}

impl WeakSchema {
    /// The schema with no classes at all — the bottom of the information
    /// ordering and the unit of the merge.
    pub fn empty() -> Self {
        WeakSchema::default()
    }

    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// The classes of the schema, in sorted order.
    pub fn classes(&self) -> impl Iterator<Item = &Class> {
        self.classes.iter()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Whether `class` belongs to the schema.
    pub fn contains_class(&self, class: &Class) -> bool {
        self.classes.contains(class)
    }

    /// Whether `sub ⇒ sup` holds (reflexively: every class specializes
    /// itself, as `S` is reflexive in §2).
    pub fn specializes(&self, sub: &Class, sup: &Class) -> bool {
        order::le(&self.supers, sub, sup)
    }

    /// The classes strictly above `class` (its proper generalizations).
    pub fn strict_supers(&self, class: &Class) -> BTreeSet<Class> {
        self.supers.get(class).cloned().unwrap_or_default()
    }

    /// The classes strictly below `class` (its proper specializations).
    pub fn strict_subs(&self, class: &Class) -> BTreeSet<Class> {
        self.supers
            .iter()
            .filter(|(_, sups)| sups.contains(class))
            .map(|(sub, _)| sub.clone())
            .collect()
    }

    /// All strict specialization pairs `(sub, sup)` of the closed relation.
    pub fn specialization_pairs(&self) -> impl Iterator<Item = (&Class, &Class)> {
        self.supers
            .iter()
            .flat_map(|(sub, sups)| sups.iter().map(move |sup| (sub, sup)))
    }

    /// Number of strict specialization pairs in the closed relation.
    pub fn num_specializations(&self) -> usize {
        self.supers.values().map(BTreeSet::len).sum()
    }

    /// `R(p, a)`: the classes reachable from `p` via an `a`-arrow (§4.2).
    pub fn arrow_targets(&self, class: &Class, label: &Label) -> BTreeSet<Class> {
        self.arrows
            .get(class)
            .and_then(|by_label| by_label.get(label))
            .cloned()
            .unwrap_or_default()
    }

    /// Whether the closed schema contains the arrow `p --a--> q`.
    pub fn has_arrow(&self, class: &Class, label: &Label, target: &Class) -> bool {
        self.arrows
            .get(class)
            .and_then(|by_label| by_label.get(label))
            .is_some_and(|targets| targets.contains(target))
    }

    /// The labels of arrows leaving `class`.
    pub fn labels_of(&self, class: &Class) -> BTreeSet<Label> {
        self.arrows
            .get(class)
            .map(|by_label| by_label.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Every label used anywhere in the schema.
    pub fn all_labels(&self) -> BTreeSet<Label> {
        self.arrows
            .values()
            .flat_map(|by_label| by_label.keys().cloned())
            .collect()
    }

    /// All arrows `(source, label, target)` of the closed relation.
    pub fn arrow_triples(&self) -> impl Iterator<Item = (&Class, &Label, &Class)> {
        self.arrows.iter().flat_map(|(src, by_label)| {
            by_label
                .iter()
                .flat_map(move |(label, targets)| targets.iter().map(move |t| (src, label, t)))
        })
    }

    /// Number of arrows in the closed relation.
    pub fn num_arrows(&self) -> usize {
        self.arrows
            .values()
            .flat_map(|by_label| by_label.values())
            .map(BTreeSet::len)
            .sum()
    }

    /// Number of distinct `(class, label)` arrow pairs. The excess of
    /// [`num_arrows`](WeakSchema::num_arrows) over this count is the
    /// schema's NFA branching — each multi-target pair feeds the `Imp`
    /// fixpoint of completion — which is why merge planning weighs it.
    pub fn num_arrow_pairs(&self) -> usize {
        self.arrows.values().map(BTreeMap::len).sum()
    }

    /// `R(X, a)` for a set `X` of classes (§4.2): the union of `R(p, a)`
    /// over `p ∈ X`.
    pub fn arrow_targets_of_set<'a>(
        &self,
        set: impl IntoIterator<Item = &'a Class>,
        label: &Label,
    ) -> BTreeSet<Class> {
        let mut out = BTreeSet::new();
        for class in set {
            out.extend(self.arrow_targets(class, label));
        }
        out
    }

    /// The information ordering `⊑` of §4.1: every class, specialization
    /// pair and arrow of `self` appears in `other`.
    pub fn is_subschema_of(&self, other: &WeakSchema) -> bool {
        if !self.classes.is_subset(&other.classes) {
            return false;
        }
        for (sub, sups) in &self.supers {
            let other_sups = match other.supers.get(sub) {
                Some(s) => s,
                None => return false,
            };
            if !sups.is_subset(other_sups) {
                return false;
            }
        }
        for (src, by_label) in &self.arrows {
            for (label, targets) in by_label {
                let other_targets = match other.arrows.get(src).and_then(|m| m.get(label)) {
                    Some(t) => t,
                    None => return false,
                };
                if !targets.is_subset(other_targets) {
                    return false;
                }
            }
        }
        true
    }

    /// The minimal elements of `set` under this schema's specialization
    /// order — the paper's `MinS(X)` (§4.2).
    pub fn min_s<'a>(&self, set: impl IntoIterator<Item = &'a Class>) -> BTreeSet<Class> {
        order::minimal_elements(&self.supers, set)
            .into_iter()
            .cloned()
            .collect()
    }

    /// The maximal elements of `set` — `MaxS(X)`, the dual used by lower
    /// merges (§6).
    pub fn max_s<'a>(&self, set: impl IntoIterator<Item = &'a Class>) -> BTreeSet<Class> {
        order::maximal_elements(&self.supers, set)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Removes every implicit class (and all edges touching one).
    ///
    /// Implicit classes carry no information beyond their origin (§4.2), so
    /// stripping before a subsequent merge loses nothing:
    /// `strip(complete(G)) == G` (tested in `complete`). This is how the
    /// "readily identified" extra classes of §1 are handled when a merge
    /// result feeds into another merge.
    pub fn strip_implicit(&self) -> WeakSchema {
        if !self.classes.iter().any(Class::is_implicit) {
            return self.clone();
        }
        let keep = |c: &Class| !c.is_implicit();
        let classes: BTreeSet<Class> = self.classes.iter().filter(|c| keep(c)).cloned().collect();
        let mut supers: UpSet<Class> = BTreeMap::new();
        for (sub, sups) in &self.supers {
            if !keep(sub) {
                continue;
            }
            let kept: BTreeSet<Class> = sups.iter().filter(|c| keep(c)).cloned().collect();
            if !kept.is_empty() {
                supers.insert(sub.clone(), kept);
            }
        }
        let mut arrows: ArrowMap = BTreeMap::new();
        for (src, by_label) in &self.arrows {
            if !keep(src) {
                continue;
            }
            let mut kept_labels = BTreeMap::new();
            for (label, targets) in by_label {
                let kept: BTreeSet<Class> = targets.iter().filter(|c| keep(c)).cloned().collect();
                if !kept.is_empty() {
                    kept_labels.insert(label.clone(), kept);
                }
            }
            if !kept_labels.is_empty() {
                arrows.insert(src.clone(), kept_labels);
            }
        }
        WeakSchema {
            classes,
            supers,
            arrows,
        }
    }

    /// A canonical FNV-1a content hash of the closed schema.
    ///
    /// The hash runs over the canonical (sorted) iteration order of the
    /// closed form — classes, then specialization pairs, then arrow
    /// triples, each length-framed — so it is independent of how the
    /// schema was built: schemas that compare equal hash equal no matter
    /// the declaration or merge order of their parts. Two different
    /// schemas collide only with ordinary 64-bit-hash probability.
    ///
    /// This is the identity of an immutable schema *version* in the
    /// registry (`crates/registry`) and is surfaced by `smerge stats`.
    pub fn content_hash(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut fnv = crate::compile::Fnv::default();
        let item = |fnv: &mut crate::compile::Fnv, text: &str| {
            fnv.write(&(text.len() as u64).to_le_bytes());
            fnv.write(text.as_bytes());
        };
        fnv.write(b"C");
        for class in &self.classes {
            item(&mut fnv, &class.to_string());
        }
        fnv.write(b"S");
        for (sub, sups) in &self.supers {
            for sup in sups {
                item(&mut fnv, &sub.to_string());
                item(&mut fnv, &sup.to_string());
            }
        }
        fnv.write(b"E");
        for (src, label, tgt) in self.arrow_triples() {
            item(&mut fnv, &src.to_string());
            item(&mut fnv, label.as_str());
            item(&mut fnv, &tgt.to_string());
        }
        fnv.finish()
    }

    /// Checks the closed-form invariants: endpoints are classes, `S` is a
    /// strict transitively closed order, and `E` is closed under W1/W2.
    /// Always `Ok` for schemas produced by this crate; exposed so tests and
    /// downstream tools can verify hand-assembled data.
    pub fn validate(&self) -> Result<(), SchemaError> {
        for (sub, sups) in &self.supers {
            if !self.classes.contains(sub) {
                return Err(SchemaError::UnknownClass(sub.clone()));
            }
            for sup in sups {
                if !self.classes.contains(sup) {
                    return Err(SchemaError::UnknownClass(sup.clone()));
                }
            }
        }
        if !order::is_strictly_closed(&self.supers) {
            // A closed relation that is not strictly closed must contain a
            // self-loop introduced by a cycle.
            return Err(SchemaError::SpecializationCycle(CycleWitness {
                path: vec![],
            }));
        }
        for (src, by_label) in &self.arrows {
            if !self.classes.contains(src) {
                return Err(SchemaError::UnknownClass(src.clone()));
            }
            for targets in by_label.values() {
                for target in targets {
                    if !self.classes.contains(target) {
                        return Err(SchemaError::UnknownClass(target.clone()));
                    }
                }
            }
        }
        // W1: subs inherit arrows.
        for (sub, sups) in &self.supers {
            for sup in sups {
                if let Some(by_label) = self.arrows.get(sup) {
                    for (label, targets) in by_label {
                        let sub_targets = self.arrow_targets(sub, label);
                        for t in targets {
                            if !sub_targets.contains(t) {
                                return Err(SchemaError::UnknownClass(t.clone()));
                            }
                        }
                    }
                }
            }
        }
        // W2: targets upward closed.
        for by_label in self.arrows.values() {
            for targets in by_label.values() {
                for target in targets {
                    for above in self.strict_supers(target) {
                        if !targets.contains(&above) {
                            return Err(SchemaError::UnknownClass(above.clone()));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds a closed schema from raw parts, applying the closure. Shared
    /// by the builder and the merge/completion internals.
    ///
    /// Routed through the compiled engine ([`crate::compile`]): the parts
    /// are interned to dense ids, closed on bitsets and decompiled. The
    /// original symbolic closure is retained as
    /// [`WeakSchema::close_symbolic`] for the [`crate::reference`] path.
    pub(crate) fn close(
        classes: BTreeSet<Class>,
        spec_edges: BTreeMap<Class, BTreeSet<Class>>,
        raw_arrows: Vec<(Class, Label, Class)>,
    ) -> Result<WeakSchema, SchemaError> {
        crate::compile::close_ids(classes, spec_edges, raw_arrows)
    }

    /// The symbolic (pre-compilation) closure: `BTreeMap`/`BTreeSet`
    /// algorithms over symbol keys. Kept verbatim as the reference
    /// implementation; produces exactly the same schemas as
    /// [`WeakSchema::close`].
    pub(crate) fn close_symbolic(
        mut classes: BTreeSet<Class>,
        spec_edges: BTreeMap<Class, BTreeSet<Class>>,
        raw_arrows: Vec<(Class, Label, Class)>,
    ) -> Result<WeakSchema, SchemaError> {
        // Classes are whatever was declared plus every edge endpoint.
        for (sub, sups) in &spec_edges {
            classes.insert(sub.clone());
            classes.extend(sups.iter().cloned());
        }
        for (src, _, tgt) in &raw_arrows {
            classes.insert(src.clone());
            classes.insert(tgt.clone());
        }

        let supers = order::transitive_closure(&spec_edges)
            .map_err(|path| SchemaError::SpecializationCycle(CycleWitness { path }))?;

        // Group the raw arrows by source.
        let mut raw: ArrowMap = BTreeMap::new();
        for (src, label, tgt) in raw_arrows {
            raw.entry(src)
                .or_default()
                .entry(label)
                .or_default()
                .insert(tgt);
        }

        // W1 then W2. One pass of each suffices: a class's inherited arrow
        // set already contains everything its subclasses would re-derive
        // from it, and upward target closure commutes with inheritance.
        let mut arrows: ArrowMap = BTreeMap::new();
        for class in &classes {
            // W1: own raw arrows plus raw arrows of every strict super.
            let mut by_label: BTreeMap<Label, BTreeSet<Class>> = BTreeMap::new();
            let mut sources: Vec<&Class> = vec![class];
            if let Some(sups) = supers.get(class) {
                sources.extend(sups.iter());
            }
            for source in sources {
                if let Some(src_labels) = raw.get(source) {
                    for (label, targets) in src_labels {
                        by_label
                            .entry(label.clone())
                            .or_default()
                            .extend(targets.iter().cloned());
                    }
                }
            }
            // W2: close each target set upward.
            for targets in by_label.values_mut() {
                let mut expanded = BTreeSet::new();
                for target in targets.iter() {
                    if let Some(sups) = supers.get(target) {
                        expanded.extend(sups.iter().cloned());
                    }
                }
                targets.extend(expanded);
            }
            if !by_label.is_empty() {
                arrows.insert(class.clone(), by_label);
            }
        }

        // NOTE: `validate()` is deliberately *not* asserted here — closure
        // correctness is covered by the unit and property tests, and
        // completion calls `close` on schemas large enough that an O(C·E)
        // check per call dominates debug-build runtimes.
        Ok(WeakSchema {
            classes,
            supers,
            arrows,
        })
    }

    /// Decomposes the schema into (classes, strict specialization pairs,
    /// arrow triples) — convenient for re-closing after edits.
    pub(crate) fn to_raw_parts(&self) -> RawParts {
        let arrows = self
            .arrow_triples()
            .map(|(p, a, q)| (p.clone(), a.clone(), q.clone()))
            .collect();
        (self.classes.clone(), self.supers.clone(), arrows)
    }
}

impl fmt::Debug for WeakSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WeakSchema({self})")
    }
}

impl fmt::Display for WeakSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema {{")?;
        for class in &self.classes {
            writeln!(f, "  class {class};")?;
        }
        for (sub, sups) in &self.supers {
            for sup in sups {
                writeln!(f, "  {sub} => {sup};")?;
            }
        }
        for (src, by_label) in &self.arrows {
            for (label, targets) in by_label {
                for target in targets {
                    writeln!(f, "  {src} --{label}--> {target};")?;
                }
            }
        }
        write!(f, "}}")
    }
}

/// Builder for [`WeakSchema`]. Endpoints of edges are added as classes
/// automatically; `build` computes the W1/W2 closure and rejects cyclic
/// specialization declarations.
#[derive(Default, Clone, Debug)]
pub struct SchemaBuilder {
    classes: BTreeSet<Class>,
    spec_edges: BTreeMap<Class, BTreeSet<Class>>,
    arrows: Vec<(Class, Label, Class)>,
}

impl SchemaBuilder {
    /// Declares a class.
    pub fn class(mut self, class: impl Into<Class>) -> Self {
        self.classes.insert(class.into());
        self
    }

    /// Declares several classes.
    pub fn classes<I>(mut self, classes: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Class>,
    {
        self.classes.extend(classes.into_iter().map(Into::into));
        self
    }

    /// Declares `sub ⇒ sup` (`sub` is a specialization of `sup`).
    pub fn specialize(mut self, sub: impl Into<Class>, sup: impl Into<Class>) -> Self {
        self.spec_edges
            .entry(sub.into())
            .or_default()
            .insert(sup.into());
        self
    }

    /// Declares the arrow `src --label--> tgt`.
    pub fn arrow(
        mut self,
        src: impl Into<Class>,
        label: impl Into<Label>,
        tgt: impl Into<Class>,
    ) -> Self {
        self.arrows.push((src.into(), label.into(), tgt.into()));
        self
    }

    /// Closes and validates the schema.
    pub fn build(self) -> Result<WeakSchema, SchemaError> {
        WeakSchema::close(self.classes, self.spec_edges, self.arrows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn empty_schema() {
        let g = WeakSchema::empty();
        assert_eq!(g.num_classes(), 0);
        assert_eq!(g.num_arrows(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn content_hash_is_order_independent() {
        // Same information declared in opposite orders: equal schemas,
        // equal hashes.
        let g1 = WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .arrow("Dog", "owner", "Person")
            .specialize("Guide-dog", "Dog")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .specialize("Guide-dog", "Dog")
            .arrow("Dog", "owner", "Person")
            .arrow("Dog", "age", "int")
            .build()
            .unwrap();
        assert_eq!(g1, g2);
        assert_eq!(g1.content_hash(), g2.content_hash());
    }

    #[test]
    fn content_hash_distinguishes_components() {
        let base = WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .build()
            .unwrap();
        let extra_class = WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .class("Cat")
            .build()
            .unwrap();
        let extra_spec = WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .specialize("int", "Dog")
            .build()
            .unwrap();
        assert_ne!(base.content_hash(), extra_class.content_hash());
        assert_ne!(base.content_hash(), extra_spec.content_hash());
        assert_ne!(extra_class.content_hash(), extra_spec.content_hash());
        assert_ne!(base.content_hash(), WeakSchema::empty().content_hash());
    }

    #[test]
    fn builder_auto_adds_endpoints() {
        let g = WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .build()
            .unwrap();
        assert!(g.contains_class(&c("Dog")));
        assert!(g.contains_class(&c("int")));
        assert!(g.has_arrow(&c("Dog"), &l("age"), &c("int")));
    }

    #[test]
    fn w1_closure_inherits_arrows() {
        // Police-dog ⇒ Dog, Dog --age--> int  ⟹  Police-dog --age--> int.
        let g = WeakSchema::builder()
            .specialize("Police-dog", "Dog")
            .arrow("Dog", "age", "int")
            .build()
            .unwrap();
        assert!(g.has_arrow(&c("Police-dog"), &l("age"), &c("int")));
    }

    #[test]
    fn w2_closure_lifts_targets() {
        // Lives --occ--> Police-dog, Police-dog ⇒ Dog ⟹ Lives --occ--> Dog.
        let g = WeakSchema::builder()
            .specialize("Police-dog", "Dog")
            .arrow("Lives", "occ", "Police-dog")
            .build()
            .unwrap();
        assert!(g.has_arrow(&c("Lives"), &l("occ"), &c("Dog")));
    }

    #[test]
    fn w1_and_w2_compose() {
        // p' ⇒ p, p --a--> q, q ⇒ q' ⟹ p' --a--> q'.
        let g = WeakSchema::builder()
            .specialize("p'", "p")
            .specialize("q", "q'")
            .arrow("p", "a", "q")
            .build()
            .unwrap();
        assert!(g.has_arrow(&c("p'"), &l("a"), &c("q'")));
        assert_eq!(g.arrow_targets(&c("p'"), &l("a")).len(), 2);
    }

    #[test]
    fn closure_through_chains() {
        let g = WeakSchema::builder()
            .specialize("c", "b")
            .specialize("b", "a")
            .arrow("a", "f", "t1")
            .specialize("t1", "t2")
            .specialize("t2", "t3")
            .build()
            .unwrap();
        // c inherits a's arrow, and the target set is {t1,t2,t3}.
        assert_eq!(
            g.arrow_targets(&c("c"), &l("f")),
            [c("t1"), c("t2"), c("t3")].into_iter().collect()
        );
        assert!(g.specializes(&c("c"), &c("a")), "transitive");
    }

    #[test]
    fn specialization_is_reflexive_in_queries() {
        let g = WeakSchema::builder().class("A").build().unwrap();
        assert!(g.specializes(&c("A"), &c("A")));
    }

    #[test]
    fn cyclic_specialization_is_rejected() {
        let err = WeakSchema::builder()
            .specialize("A", "B")
            .specialize("B", "A")
            .build()
            .unwrap_err();
        match err {
            SchemaError::SpecializationCycle(w) => {
                assert_eq!(w.path.first(), w.path.last());
            }
            other => panic!("expected cycle, got {other}"),
        }
    }

    #[test]
    fn self_specialization_is_harmless() {
        // S is reflexive in the paper; declaring p ⇒ p is a no-op.
        let g = WeakSchema::builder().specialize("A", "A").build().unwrap();
        assert!(g.specializes(&c("A"), &c("A")));
        assert_eq!(g.num_specializations(), 0, "strict relation stays empty");
    }

    #[test]
    fn figure_2_dog_schema_closure() {
        // The schema of Fig. 2 (drawn with implied edges omitted): after
        // closure, Guide-dog and Police-dog carry all of Dog's arrows.
        let g = WeakSchema::builder()
            .specialize("Guide-dog", "Dog")
            .specialize("Police-dog", "Dog")
            .arrow("Dog", "age", "int")
            .arrow("Dog", "kind", "Breed")
            .arrow("Police-dog", "id-num", "int")
            .arrow("Lives", "occ", "Dog")
            .arrow("Lives", "home", "Kennel")
            .arrow("Kennel", "addr", "Place")
            .arrow("Lives", "owner", "Person")
            .build()
            .unwrap();
        for dog in ["Guide-dog", "Police-dog"] {
            assert!(
                g.has_arrow(&c(dog), &l("age"), &c("int")),
                "{dog} inherits age"
            );
            assert!(
                g.has_arrow(&c(dog), &l("kind"), &c("Breed")),
                "{dog} inherits kind"
            );
        }
        assert!(
            !g.has_arrow(&c("Guide-dog"), &l("id-num"), &c("int")),
            "id-num is specific to Police-dog"
        );
        assert_eq!(g.labels_of(&c("Police-dog")).len(), 3);
    }

    #[test]
    fn subschema_ordering_laws() {
        let small = WeakSchema::builder().arrow("A", "a", "B").build().unwrap();
        let big = WeakSchema::builder()
            .arrow("A", "a", "B")
            .specialize("C", "A")
            .build()
            .unwrap();
        assert!(small.is_subschema_of(&small), "reflexive");
        assert!(small.is_subschema_of(&big));
        assert!(!big.is_subschema_of(&small), "antisymmetric direction");
        assert!(
            WeakSchema::empty().is_subschema_of(&small),
            "empty is bottom"
        );
    }

    #[test]
    fn subschema_requires_edges_not_just_classes() {
        let with_edge = WeakSchema::builder().specialize("A", "B").build().unwrap();
        let just_classes = WeakSchema::builder().classes(["A", "B"]).build().unwrap();
        assert!(just_classes.is_subschema_of(&with_edge));
        assert!(!with_edge.is_subschema_of(&just_classes));
    }

    #[test]
    fn equality_is_information_equality() {
        // Declaring the closure explicitly or letting `build` derive it
        // yields the same canonical schema.
        let derived = WeakSchema::builder()
            .specialize("P", "Q")
            .arrow("Q", "a", "R")
            .build()
            .unwrap();
        let explicit = WeakSchema::builder()
            .specialize("P", "Q")
            .arrow("Q", "a", "R")
            .arrow("P", "a", "R")
            .build()
            .unwrap();
        assert_eq!(derived, explicit);
    }

    #[test]
    fn min_s_and_max_s() {
        let g = WeakSchema::builder()
            .specialize("C", "A")
            .specialize("C", "B")
            .build()
            .unwrap();
        let all = [c("A"), c("B"), c("C")];
        assert_eq!(g.min_s(&all), [c("C")].into_iter().collect());
        assert_eq!(g.max_s(&all), [c("A"), c("B")].into_iter().collect());
    }

    #[test]
    fn arrow_targets_of_set_unions() {
        let g = WeakSchema::builder()
            .arrow("A1", "a", "B1")
            .arrow("A2", "a", "B2")
            .build()
            .unwrap();
        let set = [c("A1"), c("A2")];
        assert_eq!(
            g.arrow_targets_of_set(&set, &l("a")),
            [c("B1"), c("B2")].into_iter().collect()
        );
    }

    #[test]
    fn strip_implicit_removes_classes_and_edges() {
        let x = Class::implicit([c("B1"), c("B2")]);
        let g = WeakSchema::builder()
            .specialize(x.clone(), "B1")
            .specialize(x.clone(), "B2")
            .arrow("C", "a", x.clone())
            .arrow("C", "a", "B1")
            .build()
            .unwrap();
        let stripped = g.strip_implicit();
        assert!(!stripped.contains_class(&x));
        assert!(stripped.has_arrow(&c("C"), &l("a"), &c("B1")));
        assert!(stripped.validate().is_ok());
        // Stripping an implicit-free schema is identity.
        assert_eq!(stripped.strip_implicit(), stripped);
    }

    #[test]
    fn display_round_trips_visually() {
        let g = WeakSchema::builder()
            .specialize("B", "A")
            .arrow("A", "f", "T")
            .build()
            .unwrap();
        let text = g.to_string();
        assert!(text.contains("B => A"));
        assert!(text.contains("A --f--> T"));
        assert!(text.contains("B --f--> T"), "closure is visible: {text}");
    }

    #[test]
    fn duplicate_arrow_declarations_collapse() {
        let g = WeakSchema::builder()
            .arrow("A", "a", "B")
            .arrow("A", "a", "B")
            .build()
            .unwrap();
        assert_eq!(g.num_arrows(), 1);
    }

    #[test]
    fn validate_accepts_all_built_schemas() {
        let g = WeakSchema::builder()
            .specialize("C", "B")
            .specialize("B", "A")
            .arrow("A", "x", "D")
            .arrow("C", "y", "E")
            .specialize("E", "F")
            .build()
            .unwrap();
        assert!(g.validate().is_ok());
    }
}
