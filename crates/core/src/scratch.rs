//! Reusable scratch buffers for the id-space engines.
//!
//! The compiled closure and completion engines work almost entirely on
//! fixed-width bitset rows (`Vec<u64>` of `words` length). Before this
//! module they allocated those rows per step: every `Imp`-fixpoint
//! iteration built a fresh `reached` row, a fresh `MinS` row and a fresh
//! hash-map key, so a completion of a few thousand states paid tens of
//! thousands of allocator round-trips. The pool below recycles rows
//! within and across calls (it is thread-local, so every engine thread —
//! including the [`crate::parallel`] workers — has its own, lock-free),
//! and `StateArena` packs the fixpoint's discovered states into one
//! flat allocation instead of one `Vec` per state.
//!
//! The pool is an optimization, never a semantics change: a row taken
//! from the pool is always zeroed, exactly like a fresh
//! `vec![0u64; words]`. The bench suite's counting allocator
//! (`crates/bench/src/perf.rs`) records the difference as
//! allocations-per-merge; [`set_pool_enabled`] exists so the benchmark
//! can measure the unpooled baseline honestly.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Rows kept per thread; beyond this, [`ScratchPool::put`] drops the row
/// instead of growing the cache without bound. Sized for the widest
/// realistic frontier (a wave of a few thousand candidate states, or one
/// arrow row per `(class, label)` pair of a large schema): at 8 words a
/// row, the worst-case thread-local footprint is ~0.5 MB.
const MAX_POOLED_ROWS: usize = 8192;

/// Benchmark escape hatch (see the module docs). `true` by default.
static POOL_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables row recycling globally — **for benchmarking
/// only**, so the allocation trajectory can compare the pooled engines
/// against the allocate-per-step baseline. Disabled pools hand out
/// fresh allocations and drop returned rows.
#[doc(hidden)]
pub fn set_pool_enabled(enabled: bool) {
    POOL_ENABLED.store(enabled, Ordering::Relaxed);
}

/// A free list of bitset rows. Rows of any historical width live in one
/// list; `take` resizes to the requested width (widths within one merge
/// are nearly always identical, so this is a plain pop in practice).
#[derive(Default)]
pub(crate) struct ScratchPool {
    rows: Vec<Vec<u64>>,
}

impl ScratchPool {
    /// A zeroed row of `words` words — identical to `vec![0u64; words]`
    /// but recycled when the pool has a free row.
    pub(crate) fn take(&mut self, words: usize) -> Vec<u64> {
        match self.rows.pop() {
            Some(mut row) => {
                row.clear();
                row.resize(words, 0);
                row
            }
            None => vec![0u64; words],
        }
    }

    /// Returns a row to the pool for reuse.
    pub(crate) fn put(&mut self, row: Vec<u64>) {
        if POOL_ENABLED.load(Ordering::Relaxed) && self.rows.len() < MAX_POOLED_ROWS {
            self.rows.push(row);
        }
    }
}

thread_local! {
    static POOL: RefCell<ScratchPool> = RefCell::new(ScratchPool::default());
}

/// Runs `f` with this thread's scratch pool.
///
/// Re-entrant use would panic on the `RefCell`; the engines only call
/// this at non-nested points (and the pool is never held across a call
/// into user code). When pooling is disabled ([`set_pool_enabled`]) the
/// pool handed out is empty and discards returns, so every `take` is a
/// fresh allocation.
pub(crate) fn with_pool<R>(f: impl FnOnce(&mut ScratchPool) -> R) -> R {
    if !POOL_ENABLED.load(Ordering::Relaxed) {
        return f(&mut ScratchPool::default());
    }
    POOL.with(|pool| f(&mut pool.borrow_mut()))
}

/// Fixed-width bitset rows packed into one flat allocation — the
/// fixpoint's state store. Row `i` lives at `bits[i*words..][..words]`.
pub(crate) struct StateArena {
    words: usize,
    bits: Vec<u64>,
}

impl StateArena {
    pub(crate) fn new(words: usize) -> Self {
        StateArena {
            words,
            bits: Vec::new(),
        }
    }

    /// Number of rows stored.
    pub(crate) fn len(&self) -> usize {
        self.bits.len().checked_div(self.words).unwrap_or(0)
    }

    /// Appends a row, returning its index.
    pub(crate) fn push(&mut self, row: &[u64]) -> u32 {
        debug_assert_eq!(row.len(), self.words);
        let index = self.len() as u32;
        self.bits.extend_from_slice(row);
        index
    }

    /// The row at `index`.
    pub(crate) fn get(&self, index: u32) -> &[u64] {
        &self.bits[index as usize * self.words..][..self.words]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_rows_come_back_zeroed_and_resized() {
        let mut pool = ScratchPool::default();
        let mut row = pool.take(2);
        assert_eq!(row, vec![0, 0]);
        row[0] = u64::MAX;
        pool.put(row);
        let row = pool.take(3);
        assert_eq!(row, vec![0, 0, 0], "recycled rows are zeroed");
        let row2 = pool.take(1);
        assert_eq!(row2, vec![0]);
    }

    #[test]
    fn arena_stores_and_retrieves_rows() {
        let mut arena = StateArena::new(2);
        assert_eq!(arena.len(), 0);
        let a = arena.push(&[1, 2]);
        let b = arena.push(&[3, 4]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(arena.get(0), &[1, 2]);
        assert_eq!(arena.get(1), &[3, 4]);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn zero_width_arena_is_empty() {
        let mut arena = StateArena::new(0);
        arena.push(&[]);
        assert_eq!(arena.len(), 0, "zero-width rows are indistinguishable");
    }
}
