//! Cross-registry composition provenance — the supergraph layer's
//! extension of the merge report.
//!
//! When many registries' schemas are composed into one supergraph view
//! (the federation shape: each team owns a registry, a gateway owns the
//! composed view), the composed result should not flatten away *where*
//! each symbol came from. [`ComposeProvenance`] records, for every
//! class, contributed arrow and implicit class of a composed merge, the
//! namespaced `registry/member@vN` origin labels that contributed it.
//!
//! The table is computed from the member inputs and the merged result
//! alone, so it is **path-independent**: an incremental onto-base
//! recompose and a one-shot batch merge attach byte-identical
//! provenance. It rides on [`crate::merger::MergeReport::origins`],
//! attached by the composition layer after execution.

use std::collections::BTreeMap;

use crate::class::Class;
use crate::name::Label;
use crate::proper::ProperSchema;
use crate::weak::WeakSchema;

/// An arrow as contributed by an input: source class, label, target
/// class — the pre-closure triple, which is what a member actually
/// declared (the completed schema may canonicalize the target further).
pub type ArrowKey = (Class, Label, Class);

/// Cross-registry provenance of a composed merge: for each symbol of
/// the composed result, the sorted, deduplicated origin labels
/// (conventionally `registry/member@vN`) that contributed it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ComposeProvenance {
    /// Class → origin labels that declared it.
    pub classes: BTreeMap<Class, Vec<String>>,
    /// Contributed arrow triple → origin labels that declared it.
    pub arrows: BTreeMap<ArrowKey, Vec<String>>,
    /// Implicit class of the composed result → origin labels of the
    /// named classes it meets (the registries it spans).
    pub implicit: BTreeMap<Class, Vec<String>>,
}

impl ComposeProvenance {
    /// Computes the provenance table for a composed merge: `inputs` are
    /// the member schemas with their namespaced origin labels, `proper`
    /// the composed result (whose implicit classes are attributed to
    /// the origins of their constituent named classes).
    pub fn compute<'a, I, S>(inputs: I, proper: &ProperSchema) -> ComposeProvenance
    where
        I: IntoIterator<Item = (S, &'a WeakSchema)>,
        S: Into<String>,
    {
        let mut provenance = ComposeProvenance::default();
        for (label, schema) in inputs {
            let label: String = label.into();
            for class in schema.classes() {
                push_label(provenance.classes.entry(class.clone()).or_default(), &label);
            }
            for (src, arrow, tgt) in schema.arrow_triples() {
                let key = (src.clone(), arrow.clone(), tgt.clone());
                push_label(provenance.arrows.entry(key).or_default(), &label);
            }
        }
        for class in proper.as_weak().classes() {
            let Some(origin) = class.origin() else {
                continue;
            };
            let mut labels: Vec<String> = Vec::new();
            for name in origin.iter() {
                let named = Class::named(name.clone());
                if let Some(sources) = provenance.classes.get(&named) {
                    for source in sources {
                        push_label(&mut labels, source);
                    }
                }
            }
            provenance.implicit.insert(class.clone(), labels);
        }
        provenance
    }

    /// Origin labels of `class`, named or implicit (empty when the
    /// class is unknown to the table).
    pub fn origins_of(&self, class: &Class) -> &[String] {
        self.classes
            .get(class)
            .or_else(|| self.implicit.get(class))
            .map_or(&[], Vec::as_slice)
    }

    /// The distinct registry namespaces (the prefix before the first
    /// `/` of each origin label) contributing to `class`.
    pub fn registries_of(&self, class: &Class) -> Vec<&str> {
        let mut registries: Vec<&str> = self
            .origins_of(class)
            .iter()
            .map(|label| registry_of(label))
            .collect();
        registries.sort_unstable();
        registries.dedup();
        registries
    }

    /// Whether the table is empty (no inputs recorded).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty() && self.arrows.is_empty() && self.implicit.is_empty()
    }
}

/// The registry namespace of an origin label: the prefix before the
/// first `/`, or the whole label when it is not namespaced.
pub fn registry_of(label: &str) -> &str {
    label.split('/').next().unwrap_or(label)
}

fn push_label(labels: &mut Vec<String>, label: &str) {
    if let Err(at) = labels.binary_search_by(|probe| probe.as_str().cmp(label)) {
        labels.insert(at, label.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merger::Merger;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    #[test]
    fn classes_and_arrows_carry_their_origin_labels() {
        let g1 = WeakSchema::builder()
            .arrow("Dog", "owner", "Person")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .arrow("Dog", "license", "int")
            .build()
            .unwrap();
        let report = Merger::new().schema(&g1).schema(&g2).execute().unwrap();
        let prov = ComposeProvenance::compute(
            [("pets/base@v1", &g1), ("city/licensing@v2", &g2)],
            &report.proper,
        );
        assert_eq!(
            prov.origins_of(&c("Dog")),
            ["city/licensing@v2", "pets/base@v1"]
        );
        assert_eq!(prov.origins_of(&c("Person")), ["pets/base@v1"]);
        let key = (c("Dog"), Label::new("license"), c("int"));
        assert_eq!(prov.arrows[&key], ["city/licensing@v2"]);
        assert_eq!(prov.registries_of(&c("Dog")), ["city", "pets"]);
    }

    #[test]
    fn implicit_classes_inherit_constituent_origins() {
        let g1 = WeakSchema::builder().arrow("C", "a", "B1").build().unwrap();
        let g2 = WeakSchema::builder().arrow("C", "a", "B2").build().unwrap();
        let report = Merger::new().schema(&g1).schema(&g2).execute().unwrap();
        let prov = ComposeProvenance::compute(
            [("left/one@v1", &g1), ("right/two@v1", &g2)],
            &report.proper,
        );
        let meet = Class::implicit([c("B1"), c("B2")]);
        assert_eq!(prov.origins_of(&meet), ["left/one@v1", "right/two@v1"]);
        assert_eq!(prov.registries_of(&meet), ["left", "right"]);
    }

    #[test]
    fn duplicate_contributions_deduplicate() {
        let g = WeakSchema::builder().arrow("A", "x", "T").build().unwrap();
        let report = Merger::new().schema(&g).schema(&g).execute().unwrap();
        let prov = ComposeProvenance::compute([("r/m@v1", &g), ("r/m@v1", &g)], &report.proper);
        assert_eq!(prov.origins_of(&c("A")), ["r/m@v1"]);
    }

    #[test]
    fn unnamespaced_labels_are_their_own_registry() {
        assert_eq!(registry_of("solo"), "solo");
        assert_eq!(registry_of("reg/member@v3"), "reg");
    }
}
