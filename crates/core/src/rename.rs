//! Renaming: the §3 naming-conflict workflow as a first-class operation.
//!
//! "The designer of the system must be called upon to resolve naming
//! conflicts, whether homonyms or synonyms, by renaming classes and
//! arrows where appropriate" (§3). A [`Renaming`] is a finite map on the
//! class vocabulary `N` and the label vocabulary `L`; applying it to a
//! schema rewrites every class and arrow label, re-closes the result and
//! reports any classes or labels that were deliberately *unified* (a
//! non-injective renaming is how synonyms are collapsed).
//!
//! Renamings also act on implicit classes by renaming inside their origin
//! sets, so a merge result can be renamed and re-merged without losing
//! the §4.2 origin-tracking that makes stepwise merging associative.
//!
//! The module also offers the heuristics an interactive front-end needs
//! to *propose* renamings: [`synonym_candidates`] (different names,
//! similar arrow signatures) and [`homonym_candidates`] (same name,
//! dissimilar signatures). Per §3 these are inherently ad hoc — they rank
//! suggestions for a designer, they never fire automatically.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::class::Class;
use crate::error::SchemaError;
use crate::name::{Label, Name};
use crate::weak::WeakSchema;

/// A finite renaming of class names and arrow labels.
///
/// Identity outside its explicit entries. Non-injective maps are allowed
/// and meaningful: mapping `GS` and `Student` to the same name asserts
/// they are synonyms, and applying the renaming collapses them into one
/// class (the merge then treats them as identical, §3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Renaming {
    classes: BTreeMap<Name, Name>,
    labels: BTreeMap<Label, Label>,
}

/// What a [`Renaming::apply`] call actually changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RenameReport {
    /// Groups of two or more distinct source classes that now share a
    /// name — the synonym unifications.
    pub unified_classes: Vec<BTreeSet<Name>>,
    /// Groups of two or more distinct source labels that now share a
    /// spelling.
    pub unified_labels: Vec<BTreeSet<Label>>,
    /// Number of classes whose name changed.
    pub classes_renamed: usize,
    /// Number of arrow triples whose label changed.
    pub arrows_relabelled: usize,
}

impl RenameReport {
    /// Whether the renaming was a no-op on the schema it was applied to.
    pub fn is_noop(&self) -> bool {
        self.classes_renamed == 0 && self.arrows_relabelled == 0
    }
}

impl Renaming {
    /// The identity renaming.
    pub fn new() -> Self {
        Renaming::default()
    }

    /// Adds a class rename `from → to`.
    pub fn class(mut self, from: impl Into<Name>, to: impl Into<Name>) -> Self {
        self.classes.insert(from.into(), to.into());
        self
    }

    /// Adds an arrow-label rename `from → to`.
    pub fn label(mut self, from: impl Into<Label>, to: impl Into<Label>) -> Self {
        self.labels.insert(from.into(), to.into());
        self
    }

    /// Whether this renaming has no entries at all.
    pub fn is_identity(&self) -> bool {
        self.classes.iter().all(|(from, to)| from == to)
            && self.labels.iter().all(|(from, to)| from == to)
    }

    /// The image of a class name.
    pub fn map_name(&self, name: &Name) -> Name {
        self.classes
            .get(name)
            .cloned()
            .unwrap_or_else(|| name.clone())
    }

    /// The image of an arrow label.
    pub fn map_label(&self, label: &Label) -> Label {
        self.labels
            .get(label)
            .cloned()
            .unwrap_or_else(|| label.clone())
    }

    /// The image of a class: named classes via the name map, implicit
    /// classes by renaming inside their origin set (which may shrink it —
    /// unifying two origins of a `{C,D}` class turns it back into the
    /// named class the origins collapsed to).
    pub fn map_class(&self, class: &Class) -> Class {
        match class {
            Class::Named(name) => Class::Named(self.map_name(name)),
            Class::Implicit(origin) => {
                let members: Vec<Class> = origin
                    .iter()
                    .map(|n| Class::Named(self.map_name(n)))
                    .collect();
                Class::try_implicit(members.clone())
                    .unwrap_or_else(|| members.into_iter().next().expect("origin is non-empty"))
            }
            Class::ImplicitUnion(origin) => {
                let members: Vec<Class> = origin
                    .iter()
                    .map(|n| Class::Named(self.map_name(n)))
                    .collect();
                Class::try_implicit_union(members.clone())
                    .unwrap_or_else(|| members.into_iter().next().expect("origin is non-empty"))
            }
        }
    }

    /// Sequential composition: `self.then(other)` first applies `self`,
    /// then `other`.
    pub fn then(&self, other: &Renaming) -> Renaming {
        let mut classes = BTreeMap::new();
        for (from, to) in &self.classes {
            classes.insert(from.clone(), other.map_name(to));
        }
        for (from, to) in &other.classes {
            classes.entry(from.clone()).or_insert_with(|| to.clone());
        }
        let mut labels = BTreeMap::new();
        for (from, to) in &self.labels {
            labels.insert(from.clone(), other.map_label(to));
        }
        for (from, to) in &other.labels {
            labels.entry(from.clone()).or_insert_with(|| to.clone());
        }
        Renaming { classes, labels }
    }

    /// Whether the renaming is injective on the classes of `schema`
    /// (i.e. it only *re-labels*, never unifies). Homonym separation
    /// requires injectivity; synonym unification deliberately breaks it.
    pub fn is_injective_on(&self, schema: &WeakSchema) -> bool {
        let mut seen = BTreeSet::new();
        schema
            .classes()
            .all(|class| seen.insert(self.map_class(class)))
    }

    /// Applies the renaming to a schema, re-closing the result.
    ///
    /// Fails with [`SchemaError`] if a unification creates a
    /// specialization cycle (e.g. renaming `C` to `A` in `A ⇒ B ⇒ C`):
    /// the collapsed schema would not have an antisymmetric `S`, so per
    /// §4.1 it is not a schema at all.
    pub fn apply(&self, schema: &WeakSchema) -> Result<(WeakSchema, RenameReport), SchemaError> {
        let mut builder = WeakSchema::builder();
        let mut class_images: BTreeMap<Class, Class> = BTreeMap::new();
        for class in schema.classes() {
            let image = self.map_class(class);
            class_images.insert(class.clone(), image.clone());
            builder = builder.class(image);
        }
        for (sub, sup) in schema.specialization_pairs() {
            if sub == sup {
                continue;
            }
            builder = builder.specialize(class_images[sub].clone(), class_images[sup].clone());
        }
        let mut arrows_relabelled = 0usize;
        for (src, label, tgt) in schema.arrow_triples() {
            let new_label = self.map_label(label);
            if &new_label != label {
                arrows_relabelled += 1;
            }
            builder = builder.arrow(
                class_images[src].clone(),
                new_label,
                class_images[tgt].clone(),
            );
        }
        let renamed = builder.build()?;

        let mut by_image: BTreeMap<Class, BTreeSet<Name>> = BTreeMap::new();
        let mut classes_renamed = 0usize;
        for (class, image) in &class_images {
            if class != image {
                classes_renamed += 1;
            }
            if let (Class::Named(name), Class::Named(_)) = (class, image) {
                by_image
                    .entry(image.clone())
                    .or_default()
                    .insert(name.clone());
            }
        }
        let unified_classes: Vec<BTreeSet<Name>> = by_image
            .into_values()
            .filter(|group| group.len() > 1)
            .collect();

        let mut label_groups: BTreeMap<Label, BTreeSet<Label>> = BTreeMap::new();
        for label in schema.all_labels() {
            label_groups
                .entry(self.map_label(&label))
                .or_default()
                .insert(label);
        }
        let unified_labels: Vec<BTreeSet<Label>> = label_groups
            .into_values()
            .filter(|group| group.len() > 1)
            .collect();

        Ok((
            renamed,
            RenameReport {
                unified_classes,
                unified_labels,
                classes_renamed,
                arrows_relabelled,
            },
        ))
    }
}

impl fmt::Display for Renaming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (from, to) in &self.classes {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{from}→{to}")?;
            first = false;
        }
        for (from, to) in &self.labels {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, ".{from}→.{to}")?;
            first = false;
        }
        if first {
            write!(f, "(identity)")?;
        }
        Ok(())
    }
}

/// A ranked suggestion that `left` (in one schema) and `right` (in the
/// other) name the same real-world class under different spellings.
#[derive(Debug, Clone, PartialEq)]
pub struct SynonymCandidate {
    /// The class name in the left schema.
    pub left: Name,
    /// The class name in the right schema.
    pub right: Name,
    /// Jaccard similarity of the outgoing arrow-label signatures, in
    /// `(0, 1]`.
    pub similarity: f64,
    /// The labels the two signatures share.
    pub shared_labels: BTreeSet<Label>,
}

impl SynonymCandidate {
    /// The renaming that would unify the pair (right takes left's name).
    pub fn unifying_renaming(&self) -> Renaming {
        Renaming::new().class(self.right.clone(), self.left.clone())
    }
}

/// A warning that the two schemas use the same class name with
/// substantially different arrow signatures — a possible homonym that the
/// merge would silently collapse (§3: "if two classes in different
/// schemas have the same name, then they are the same class").
#[derive(Debug, Clone, PartialEq)]
pub struct HomonymCandidate {
    /// The shared spelling.
    pub name: Name,
    /// Labels only the left schema gives the class.
    pub left_only: BTreeSet<Label>,
    /// Labels only the right schema gives the class.
    pub right_only: BTreeSet<Label>,
    /// Jaccard similarity of the signatures (low = suspicious).
    pub similarity: f64,
}

impl HomonymCandidate {
    /// A renaming that separates the homonym by suffixing the right
    /// schema's copy.
    pub fn separating_renaming(&self, suffix: &str) -> Renaming {
        let fresh = Name::new(format!("{}{suffix}", self.name));
        Renaming::new().class(self.name.clone(), fresh)
    }
}

fn signature(schema: &WeakSchema, class: &Class) -> BTreeSet<Label> {
    schema.labels_of(class)
}

fn jaccard(a: &BTreeSet<Label>, b: &BTreeSet<Label>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

/// Proposes synonym pairs across two schemas: named classes with
/// *different* names whose outgoing label signatures overlap with Jaccard
/// similarity at least `min_similarity` (strictly positive). Pairs whose
/// names already co-occur in both schemas are skipped — the merge will
/// unify those by itself. Sorted by descending similarity, then name.
pub fn synonym_candidates(
    left: &WeakSchema,
    right: &WeakSchema,
    min_similarity: f64,
) -> Vec<SynonymCandidate> {
    let left_names: BTreeSet<&Name> = left.classes().filter_map(Class::name).collect();
    let right_names: BTreeSet<&Name> = right.classes().filter_map(Class::name).collect();
    let mut out = Vec::new();
    for l in &left_names {
        if right_names.contains(*l) {
            continue;
        }
        let sig_l = signature(left, &Class::Named((*l).clone()));
        if sig_l.is_empty() {
            continue;
        }
        for r in &right_names {
            if left_names.contains(*r) {
                continue;
            }
            let sig_r = signature(right, &Class::Named((*r).clone()));
            let similarity = jaccard(&sig_l, &sig_r);
            if similarity >= min_similarity && similarity > 0.0 {
                out.push(SynonymCandidate {
                    left: (*l).clone(),
                    right: (*r).clone(),
                    similarity,
                    shared_labels: sig_l.intersection(&sig_r).cloned().collect(),
                });
            }
        }
    }
    out.sort_by(|a, b| {
        b.similarity
            .partial_cmp(&a.similarity)
            .expect("similarities are finite")
            .then_with(|| (&a.left, &a.right).cmp(&(&b.left, &b.right)))
    });
    out
}

/// Flags names shared by the two schemas whose label signatures overlap
/// with Jaccard similarity at most `max_similarity` (and which have at
/// least one arrow on each side, so there is evidence of a clash).
/// Sorted by ascending similarity — most suspicious first.
pub fn homonym_candidates(
    left: &WeakSchema,
    right: &WeakSchema,
    max_similarity: f64,
) -> Vec<HomonymCandidate> {
    let mut out = Vec::new();
    for class in left.classes() {
        let Class::Named(name) = class else { continue };
        if !right.contains_class(class) {
            continue;
        }
        let sig_l = signature(left, class);
        let sig_r = signature(right, class);
        if sig_l.is_empty() || sig_r.is_empty() {
            continue;
        }
        let similarity = jaccard(&sig_l, &sig_r);
        if similarity <= max_similarity {
            out.push(HomonymCandidate {
                name: name.clone(),
                left_only: sig_l.difference(&sig_r).cloned().collect(),
                right_only: sig_r.difference(&sig_l).cloned().collect(),
                similarity,
            });
        }
    }
    out.sort_by(|a, b| {
        a.similarity
            .partial_cmp(&b.similarity)
            .expect("similarities are finite")
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::weak_join;

    fn merge<'a>(
        schemas: impl IntoIterator<Item = &'a WeakSchema>,
    ) -> Result<crate::merge::MergeOutcome, crate::error::MergeError> {
        crate::merger::Merger::new()
            .schemas(schemas)
            .execute()
            .map(crate::merger::MergeReport::into_outcome)
    }

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn dogs_by_license() -> WeakSchema {
        WeakSchema::builder()
            .arrow("Dog", "license", "int")
            .arrow("Dog", "owner", "Person")
            .build()
            .expect("valid schema")
    }

    fn hounds_by_name() -> WeakSchema {
        WeakSchema::builder()
            .arrow("Hound", "name", "string")
            .arrow("Hound", "owner", "Person")
            .specialize("Guide-hound", "Hound")
            .build()
            .expect("valid schema")
    }

    #[test]
    fn identity_renaming_is_noop() {
        let g = dogs_by_license();
        let (renamed, report) = Renaming::new().apply(&g).expect("identity applies");
        assert_eq!(renamed, g);
        assert!(report.is_noop());
        assert!(Renaming::new().is_identity());
    }

    #[test]
    fn renames_classes_and_labels() {
        let g = hounds_by_name();
        let renaming = Renaming::new()
            .class("Hound", "Dog")
            .label("name", "called");
        let (renamed, report) = renaming.apply(&g).expect("applies");
        let dog = c("Dog");
        assert!(renamed.contains_class(&dog));
        assert!(!renamed.contains_class(&c("Hound")));
        assert!(renamed.labels_of(&dog).contains(&Label::new("called")));
        assert!(renamed.specializes(&c("Guide-hound"), &dog));
        assert_eq!(report.classes_renamed, 1);
        assert!(report.arrows_relabelled >= 1);
        assert!(report.unified_classes.is_empty());
    }

    #[test]
    fn synonym_unification_collapses_classes() {
        let g = WeakSchema::builder()
            .arrow("GS", "advisor", "Faculty")
            .arrow("Student", "name", "string")
            .build()
            .expect("valid schema");
        let renaming = Renaming::new().class("GS", "Student");
        let (renamed, report) = renaming.apply(&g).expect("applies");
        let student = c("Student");
        assert!(!renamed.contains_class(&c("GS")));
        // The collapsed class carries both arrow sets.
        let labels = renamed.labels_of(&student);
        assert!(labels.contains(&Label::new("advisor")));
        assert!(labels.contains(&Label::new("name")));
        assert_eq!(report.unified_classes.len(), 1);
        assert!(report.unified_classes[0].contains(&Name::new("GS")));
        assert!(report.unified_classes[0].contains(&Name::new("Student")));
    }

    #[test]
    fn unification_creating_isa_cycle_is_rejected() {
        let g = WeakSchema::builder()
            .specialize("A", "B")
            .specialize("B", "C")
            .build()
            .expect("valid schema");
        let renaming = Renaming::new().class("C", "A");
        assert!(
            renaming.apply(&g).is_err(),
            "A ⇒ B ⇒ A is not a partial order"
        );
    }

    #[test]
    fn renaming_acts_inside_implicit_origins() {
        let g1 = WeakSchema::builder()
            .specialize("C", "A1")
            .specialize("C", "A2")
            .build()
            .expect("valid");
        let g2 = WeakSchema::builder()
            .arrow("A1", "a", "B1")
            .arrow("A2", "a", "B2")
            .build()
            .expect("valid");
        let merged = merge([&g1, &g2]).expect("merges").proper;
        let implicit = Class::implicit([c("B1"), c("B2")]);
        assert!(merged.as_weak().contains_class(&implicit));

        let renaming = Renaming::new().class("B1", "Kennel").class("B2", "House");
        let (renamed, _) = renaming.apply(merged.as_weak()).expect("applies");
        let expected = Class::implicit([c("Kennel"), c("House")]);
        assert!(renamed.contains_class(&expected));
        assert!(!renamed.contains_class(&implicit));
    }

    #[test]
    fn unifying_origins_collapses_implicit_class_to_named() {
        let renaming = Renaming::new().class("B2", "B1");
        let implicit = Class::implicit([c("B1"), c("B2")]);
        assert_eq!(renaming.map_class(&implicit), c("B1"));
    }

    #[test]
    fn composition_agrees_with_sequential_application() {
        let g = hounds_by_name();
        let first = Renaming::new().class("Hound", "Dog");
        let second = Renaming::new()
            .class("Dog", "Canine")
            .label("owner", "keeper");
        let composed = first.then(&second);

        let (step1, _) = first.apply(&g).expect("first applies");
        let (sequential, _) = second.apply(&step1).expect("second applies");
        let (at_once, _) = composed.apply(&g).expect("composed applies");
        assert_eq!(sequential, at_once);
    }

    #[test]
    fn rename_then_merge_matches_merge_of_renamed() {
        // Renaming is a schema homomorphism: applying it to both inputs
        // and joining equals joining and then applying it (when both
        // sides are defined).
        let g1 = dogs_by_license();
        let g2 = WeakSchema::builder()
            .arrow("Dog", "kind", "breed")
            .specialize("Guide-dog", "Dog")
            .build()
            .expect("valid");
        let renaming = Renaming::new()
            .class("Dog", "Canine")
            .label("kind", "breed-of");

        let joined = weak_join(&g1, &g2).expect("compatible");
        let (renamed_join, _) = renaming.apply(&joined).expect("applies");

        let (r1, _) = renaming.apply(&g1).expect("applies");
        let (r2, _) = renaming.apply(&g2).expect("applies");
        let join_renamed = weak_join(&r1, &r2).expect("compatible");
        assert_eq!(renamed_join, join_renamed);
    }

    #[test]
    fn injectivity_check() {
        let g = WeakSchema::builder()
            .class("A")
            .class("B")
            .build()
            .expect("valid");
        assert!(Renaming::new().class("A", "X").is_injective_on(&g));
        assert!(!Renaming::new().class("A", "B").is_injective_on(&g));
    }

    #[test]
    fn synonym_candidates_rank_by_signature_overlap() {
        let left = WeakSchema::builder()
            .arrow("Dog", "owner", "Person")
            .arrow("Dog", "kind", "breed")
            .arrow("Cat", "lives", "Place")
            .build()
            .expect("valid");
        let right = WeakSchema::builder()
            .arrow("Hound", "owner", "Person")
            .arrow("Hound", "kind", "breed")
            .arrow("Hound", "license", "int")
            .build()
            .expect("valid");
        let candidates = synonym_candidates(&left, &right, 0.3);
        assert!(!candidates.is_empty());
        let top = &candidates[0];
        assert_eq!(top.left, Name::new("Dog"));
        assert_eq!(top.right, Name::new("Hound"));
        assert!(top.shared_labels.contains(&Label::new("owner")));
        // Unifying renaming points right → left.
        let (unified, _) = top.unifying_renaming().apply(&right).expect("applies");
        assert!(unified.contains_class(&c("Dog")));
    }

    #[test]
    fn shared_names_are_not_synonym_candidates() {
        let left = WeakSchema::builder()
            .arrow("Dog", "owner", "Person")
            .build()
            .expect("ok");
        let right = WeakSchema::builder()
            .arrow("Dog", "owner", "Person")
            .build()
            .expect("ok");
        assert!(synonym_candidates(&left, &right, 0.1).is_empty());
    }

    #[test]
    fn homonym_candidates_flag_disjoint_signatures() {
        // "Chip" is a dog-microchip in one database and a fried potato in
        // the other.
        let left = WeakSchema::builder()
            .arrow("Chip", "implanted-in", "Dog")
            .build()
            .expect("valid");
        let right = WeakSchema::builder()
            .arrow("Chip", "fried-at", "Temperature")
            .build()
            .expect("valid");
        let flags = homonym_candidates(&left, &right, 0.0);
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].name, Name::new("Chip"));
        assert_eq!(flags[0].similarity, 0.0);

        // Separating the homonym makes the merge keep both meanings.
        let separate = flags[0].separating_renaming("-food");
        let (renamed_right, _) = separate.apply(&right).expect("applies");
        let joined = weak_join(&left, &renamed_right).expect("compatible");
        assert!(joined.contains_class(&c("Chip")));
        assert!(joined.contains_class(&c("Chip-food")));
        assert_eq!(joined.labels_of(&c("Chip")).len(), 1);
    }

    #[test]
    fn similar_signatures_are_not_homonym_flagged() {
        let left = WeakSchema::builder()
            .arrow("Dog", "owner", "Person")
            .arrow("Dog", "kind", "breed")
            .build()
            .expect("valid");
        let right = WeakSchema::builder()
            .arrow("Dog", "owner", "Person")
            .arrow("Dog", "kind", "breed")
            .arrow("Dog", "age", "int")
            .build()
            .expect("valid");
        assert!(homonym_candidates(&left, &right, 0.5).is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Renaming::new().to_string(), "(identity)");
        let r = Renaming::new()
            .class("GS", "Student")
            .label("victim", "student");
        assert_eq!(r.to_string(), "GS→Student, .victim→.student");
    }
}
