//! Thread plumbing for the parallel merge engine.
//!
//! The paper proves the merge is a least upper bound, so n-ary joins are
//! associative and commutative: the reduction order of `weak_join` is
//! semantically free, and so is *who* computes each piece. The parallel
//! engine ([`crate::merger::PlannedEngine::Parallel`]) exploits that
//! freedom with `std::thread::scope` workers, but every parallel pass is
//! written so the result is **bit-identical to the sequential compiled
//! engine regardless of thread count**:
//!
//! * work is split into *contiguous, deterministic* chunks
//!   (`chunk_ranges`) — never work-stealing, so the assignment of item
//!   to chunk depends only on the input;
//! * workers only ever *produce* (partial dense parts, candidate
//!   fixpoint states, CSR segments); all *merging* of worker output
//!   happens on the calling thread, in chunk order, through the same
//!   dedup/ordering logic the sequential path uses.
//!
//! Thread counts are a cost choice, never a semantics choice — exactly
//! like the engine choice itself.

/// The number of worker threads to actually use for `requested` threads
/// over `items` units of splittable work: at least one, at most one per
/// item.
pub(crate) fn effective_threads(requested: usize, items: usize) -> usize {
    requested.clamp(1, items.max(1))
}

/// [`effective_threads`], additionally requiring at least
/// `min_per_thread` items per worker: spawning a scoped thread costs
/// tens of microseconds, so small work lists run inline no matter the
/// requested budget. Deterministic in its inputs (and thread counts
/// never change results anyway).
pub(crate) fn throttled_threads(requested: usize, items: usize, min_per_thread: usize) -> usize {
    let saturation = items / min_per_thread.max(1);
    effective_threads(requested.min(saturation.max(1)), items)
}

/// The thread count a [`crate::Merger`] resolves when the caller did not
/// fix one: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Splits `0..len` into up to `threads` contiguous near-even ranges (the
/// first `len % threads` ranges are one longer). Deterministic in
/// `(len, threads)`; empty ranges are never produced.
pub(crate) fn chunk_ranges(len: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = effective_threads(threads, len);
    if len == 0 {
        return Vec::new();
    }
    let base = len / threads;
    let extra = len % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    for i in 0..threads {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// Maps `f` over the chunks of `0..len` on up to `threads` scoped
/// workers, returning the per-chunk results **in chunk order**. With one
/// chunk the closure runs inline — no thread is spawned, so the
/// single-thread path has zero scheduling overhead (and borrows no
/// `Send` bound it does not need anyway, since `f` crosses threads only
/// when chunks > 1).
pub(crate) fn map_chunks<R: Send>(
    len: usize,
    threads: usize,
    f: impl Fn(std::ops::Range<usize>) -> R + Sync,
) -> Vec<R> {
    let ranges = chunk_ranges(len, threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(move || f(range)))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("parallel engine worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_without_empties() {
        for len in 0..40 {
            for threads in 1..10 {
                let ranges = chunk_ranges(len, threads);
                let mut next = 0;
                for range in &ranges {
                    assert_eq!(range.start, next);
                    assert!(!range.is_empty());
                    next = range.end;
                }
                assert_eq!(next, len);
                assert!(ranges.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn effective_threads_clamps_both_ends() {
        assert_eq!(effective_threads(0, 10), 1);
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(4, 0), 1);
        assert_eq!(effective_threads(2, 100), 2);
    }

    #[test]
    fn map_chunks_is_order_preserving_at_any_thread_count() {
        let len = 23;
        let expected: Vec<usize> = chunk_ranges(len, 1).into_iter().map(|r| r.sum()).collect();
        let expected_sum: usize = expected.iter().sum();
        for threads in [1, 2, 4, 8] {
            let sums = map_chunks(len, threads, |range| range.sum::<usize>());
            assert_eq!(sums.iter().sum::<usize>(), expected_sum);
            // Chunk results arrive in chunk order: concatenating the
            // chunk ranges re-yields 0..len.
            let ranges = chunk_ranges(len, threads);
            assert!(ranges.windows(2).all(|w| w[0].end == w[1].start));
        }
    }
}
