//! Reference (symbolic) implementations of the merge pipeline.
//!
//! The public entry points in [`mod@crate::merge`] and
//! [`mod@crate::complete`] run on the compiled engine of
//! [`crate::compile`] — dense ids, bitset closures, CSR arrows. This module
//! keeps the original pure-symbolic algorithms (`BTreeMap`/`BTreeSet` over
//! [`Class`]/[`crate::Label`] keys) callable for two purposes:
//!
//! * **differential testing** — property tests assert that both engines
//!   produce identical schemas and reports on every workload family;
//! * **the benchmark trajectory** — the `bench --json` runner (see
//!   `crates/bench`) measures both paths and records the speedup in
//!   `BENCH_*.json`, so perf claims are reproducible per-PR rather than
//!   anecdotal.
//!
//! Results are *equal* (not just isomorphic) to the compiled path's: both
//! compute the same canonical closed forms, the same `Imp` fixpoint states
//! and the same first-discovery witnesses.

use crate::class::Class;
use crate::complete::{complete_impl, CompletionReport, Engine};
use crate::error::{MergeError, SchemaError};
use crate::merge::MergeOutcome;
use crate::name::Label;
use crate::proper::ProperSchema;
use crate::weak::WeakSchema;
use std::collections::{BTreeMap, BTreeSet};

/// The least upper bound of a collection of weak schemas, computed with
/// the symbolic closure. Equal to the façade's compiled join.
pub fn weak_join_all<'a>(
    schemas: impl IntoIterator<Item = &'a WeakSchema>,
) -> Result<WeakSchema, MergeError> {
    let mut classes: BTreeSet<Class> = BTreeSet::new();
    let mut spec: BTreeMap<Class, BTreeSet<Class>> = BTreeMap::new();
    let mut arrows: Vec<(Class, Label, Class)> = Vec::new();
    for schema in schemas {
        classes.extend(schema.classes().cloned());
        for (sub, sup) in schema.specialization_pairs() {
            spec.entry(sub.clone()).or_default().insert(sup.clone());
        }
        arrows.extend(
            schema
                .arrow_triples()
                .map(|(p, a, q)| (p.clone(), a.clone(), q.clone())),
        );
    }
    WeakSchema::close_symbolic(classes, spec, arrows).map_err(|err| match err {
        SchemaError::SpecializationCycle(witness) => MergeError::Incompatible(witness),
        other => MergeError::Schema(other),
    })
}

/// Completion with the symbolic `Imp` fixpoint and closure. Equal to
/// [`crate::complete_with_report`].
pub fn complete_with_report(
    weak: &WeakSchema,
) -> Result<(ProperSchema, CompletionReport), SchemaError> {
    complete_impl(weak, None, Engine::Symbolic)
}

/// [`complete_with_report`] without the report.
pub fn complete(weak: &WeakSchema) -> Result<ProperSchema, SchemaError> {
    complete_with_report(weak).map(|(schema, _)| schema)
}

/// The paper's merge on the symbolic engine end to end: symbolic weak
/// join, then symbolic completion. Equal to a compiled-engine
/// [`crate::Merger::execute`] over the same inputs.
pub fn merge<'a>(
    schemas: impl IntoIterator<Item = &'a WeakSchema>,
) -> Result<MergeOutcome, MergeError> {
    let weak = weak_join_all(schemas)?;
    let (proper, report) = complete_with_report(&weak)?;
    Ok(MergeOutcome {
        weak,
        proper,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merger::{EnginePreference, Joined, Merger};

    /// The façade's compiled-engine join, for differential comparison.
    fn facade_join(schemas: &[&WeakSchema]) -> Result<WeakSchema, MergeError> {
        Merger::new()
            .schemas(schemas.iter().copied())
            .engine(EnginePreference::Compiled)
            .join()
            .map(Joined::into_weak)
    }

    /// The façade's compiled-engine merge, as the historical triple.
    fn facade_merge(schemas: &[&WeakSchema]) -> Result<MergeOutcome, MergeError> {
        Merger::new()
            .schemas(schemas.iter().copied())
            .engine(EnginePreference::Compiled)
            .execute()
            .map(crate::merger::MergeReport::into_outcome)
    }

    fn sample_pair() -> (WeakSchema, WeakSchema) {
        let g1 = WeakSchema::builder()
            .specialize("C", "A1")
            .specialize("C", "A2")
            .arrow("C", "home", "Kennel")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .arrow("A1", "a", "B1")
            .arrow("A2", "a", "B2")
            .build()
            .unwrap();
        (g1, g2)
    }

    #[test]
    fn symbolic_join_equals_compiled_join() {
        let (g1, g2) = sample_pair();
        assert_eq!(
            weak_join_all([&g1, &g2]).unwrap(),
            facade_join(&[&g1, &g2]).unwrap()
        );
    }

    #[test]
    fn symbolic_completion_equals_compiled_completion() {
        let (g1, g2) = sample_pair();
        let joined = facade_join(&[&g1, &g2]).unwrap();
        let (sym, sym_report) = complete_with_report(&joined).unwrap();
        let (compiled, compiled_report) = crate::complete::complete_with_report(&joined).unwrap();
        assert_eq!(sym, compiled);
        assert_eq!(sym_report, compiled_report, "witnesses agree too");
    }

    #[test]
    fn symbolic_merge_equals_public_merge() {
        let (g1, g2) = sample_pair();
        let sym = merge([&g1, &g2]).unwrap();
        let public = facade_merge(&[&g1, &g2]).unwrap();
        assert_eq!(sym, public);
    }

    #[test]
    fn symbolic_join_rejects_cycles_with_witness() {
        let g1 = WeakSchema::builder().specialize("A", "B").build().unwrap();
        let g2 = WeakSchema::builder().specialize("B", "A").build().unwrap();
        match weak_join_all([&g1, &g2]).unwrap_err() {
            MergeError::Incompatible(witness) => {
                assert_eq!(witness.path.first(), witness.path.last());
            }
            other => panic!("expected incompatibility, got {other}"),
        }
    }
}
